"""CLI surface of the batch-inference runtime: --workers/--shards, recommend,
dir-format export, and the persisted evaluation profile."""

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.runtime import BulkRecommendations
from repro.serving import EmbeddingIndex


def run_cli(args, capsys):
    code = main(args)
    out = capsys.readouterr().out
    return code, out


TRAIN_ARGS = [
    "train", "--model", "pup", "--dataset", "yelp", "--scale", "0.2",
    "--epochs", "2", "--lr-milestones", "1", "--ks", "5,10", "--quiet",
    "--hparam", "global_dim=8", "--hparam", "category_dim=4",
]


@pytest.fixture(scope="module")
def trained_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("cli-runtime") / "pup_yelp")
    code = main([*TRAIN_ARGS, "--out", directory])
    assert code == 0
    return directory


def test_metrics_json_records_eval_profile(trained_dir):
    stored = json.load(open(os.path.join(trained_dir, "metrics.json")))
    profile = stored["eval_profile"]
    assert {"score", "topk", "metrics"} <= set(profile["phases"])
    assert profile["counters"]["evaluated_users"] > 0
    assert profile["users_per_sec"] > 0


def test_evaluate_parallel_matches_serial_and_prints_throughput(trained_dir, capsys):
    code, serial_out = run_cli(["evaluate", trained_dir], capsys)
    assert code == 0
    code, parallel_out = run_cli(
        ["evaluate", trained_dir, "--workers", "2", "--shards", "2"], capsys
    )
    assert code == 0
    assert "users/s" in parallel_out and "2 workers" in parallel_out

    def metric_lines(text):
        return [line for line in text.splitlines() if "@" in line]

    assert metric_lines(serial_out) == metric_lines(parallel_out)
    assert "reproduced to within 0.00e+00" in parallel_out


def test_export_dir_format_loads_with_mmap(trained_dir, tmp_path, capsys):
    out_path = str(tmp_path / "index-dir")
    code, out = run_cli(["export", trained_dir, "--out", out_path, "--format", "dir"], capsys)
    assert code == 0
    assert "(dir)" in out
    index = EmbeddingIndex.load(out_path, mmap=True)
    assert index.source_mmap
    npz_index = EmbeddingIndex.load(os.path.join(trained_dir, "index.npz"))
    users = np.arange(index.n_users)
    np.testing.assert_array_equal(index.score(users), npz_index.score(users))


def test_recommend_bulk_export(trained_dir, tmp_path, capsys):
    out_path = str(tmp_path / "recs.npz")
    code, out = run_cli(
        ["recommend", trained_dir, "--k", "5", "--workers", "2", "--out", out_path],
        capsys,
    )
    assert code == 0
    assert "users/s" in out
    recommendations = BulkRecommendations.load(out_path)
    assert recommendations.k == 5
    assert len(recommendations.users) > 0
    serial_path = str(tmp_path / "recs-serial.npz")
    code, _ = run_cli(["recommend", trained_dir, "--k", "5", "--out", serial_path], capsys)
    assert code == 0
    serial = BulkRecommendations.load(serial_path)
    np.testing.assert_array_equal(serial.items, recommendations.items)
    np.testing.assert_array_equal(serial.scores, recommendations.scores)


def test_recommend_explicit_users(trained_dir, tmp_path, capsys):
    out_path = str(tmp_path / "recs-users.npz")
    code, _ = run_cli(
        ["recommend", trained_dir, "--users", "3,1,2", "--out", out_path], capsys
    )
    assert code == 0
    recommendations = BulkRecommendations.load(out_path)
    np.testing.assert_array_equal(recommendations.users, [3, 1, 2])
