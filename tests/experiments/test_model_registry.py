"""Model registry: lookup, aliases, building, ModelSpec round-trips."""

import numpy as np
import pytest

from repro.core.base import Recommender
from repro.core.pup import PUP
from repro.data import SyntheticConfig, generate
from repro.experiments import (
    PAPER_HPARAMS,
    ModelSpec,
    available_models,
    build_model,
    model_display_name,
    resolve_model_name,
)


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(
        n_users=30, n_items=40, n_categories=4, n_price_levels=4,
        interactions_per_user=6, seed=3,
    )
    return generate(config)[0]


EXPECTED = {
    "pup", "pup-p", "pup-c", "pup-mf", "pup-minus",
    "itempop", "bpr-mf", "fm", "deepfm", "padq", "gcmc", "ngcf", "lightgcn",
}


def test_every_expected_model_is_registered():
    assert EXPECTED <= set(available_models())


def test_every_benchmark_model_is_registered_and_buildable(dataset):
    """Each method the benchmarks train resolves and builds via the registry."""
    from benchmarks._harness import model_builders

    for display, builder in model_builders(seed=0).items():
        canonical = resolve_model_name(display)  # display names are aliases
        assert model_display_name(canonical) == display
        model = builder(dataset)
        assert isinstance(model, Recommender)
        assert model.name == display
        assert model.model_spec is not None
        assert model.model_spec.name == canonical


def test_paper_hparams_cover_the_table2_methods():
    assert set(PAPER_HPARAMS) == {
        "itempop", "bpr-mf", "padq", "fm", "deepfm", "gcmc", "ngcf", "pup",
    }


def test_lookup_is_case_and_separator_insensitive():
    assert resolve_model_name("BPR_MF") == "bpr-mf"
    assert resolve_model_name("GC-MC") == "gcmc"
    assert resolve_model_name("PUP w/ p") == "pup-p"
    assert resolve_model_name("PUP-") == "pup-minus"


def test_unknown_model_raises():
    with pytest.raises(KeyError, match="unknown model"):
        build_model("transformer4rec", None)


def test_unknown_hparam_raises(dataset):
    with pytest.raises(TypeError, match="hyper-parameter"):
        build_model("bpr-mf", dataset, dim=8, flux_capacitance=1.21)


def test_build_is_deterministic_under_seed(dataset):
    a = build_model("pup", dataset, seed=7, global_dim=6, category_dim=4)
    b = build_model("pup", dataset, seed=7, global_dim=6, category_dim=4)
    for name, array in a.state_dict().items():
        np.testing.assert_array_equal(array, b.state_dict()[name])
    c = build_model("pup", dataset, seed=8, global_dim=6, category_dim=4)
    assert any(
        not np.array_equal(array, c.state_dict()[name])
        for name, array in a.state_dict().items()
    )


def test_build_attaches_rebuildable_spec(dataset):
    model = build_model("fm", dataset, seed=1, dim=6)
    rebuilt = model.model_spec.build(dataset)
    for name, array in model.state_dict().items():
        np.testing.assert_array_equal(array, rebuilt.state_dict()[name])


def test_explicit_rng_disables_spec_capture(dataset):
    model = build_model("bpr-mf", dataset, dim=6, rng=np.random.default_rng(0))
    assert model.model_spec is None


def test_model_spec_roundtrip():
    spec = ModelSpec("PUP", hparams={"global_dim": 6, "hidden": (4, 2)}, seed=3)
    assert spec.name == "pup"
    assert spec.hparams["hidden"] == [4, 2]  # canonicalized for JSON
    assert ModelSpec.from_dict(spec.to_dict()) == spec


def test_model_spec_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown ModelSpec"):
        ModelSpec.from_dict({"name": "pup", "lr": 0.1})


def test_recommender_from_config(dataset):
    config = {"name": "pup", "hparams": {"global_dim": 6, "category_dim": 4}, "seed": 0}
    model = Recommender.from_config(dataset, config)
    assert isinstance(model, PUP)
    np.testing.assert_array_equal(
        model.state_dict()["global_encoder.embedding.weight"],
        PUP.from_config(dataset, config).state_dict()["global_encoder.embedding.weight"],
    )
