"""ExperimentSpec and friends: lossless JSON round-trips + validation."""

import json

import pytest

from repro.experiments import ModelSpec
from repro.experiments.spec import DatasetSpec, EvalSpec, ExperimentSpec
from repro.train import TrainConfig


def make_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        model="pup",
        dataset="yelp",
        scale=0.25,
        hparams={"global_dim": 8, "category_dim": 4},
        seed=5,
        epochs=3,
        lr_milestones=[2],
        ks=(10, 20),
    )
    defaults.update(overrides)
    return ExperimentSpec.create(**defaults)


def test_dict_roundtrip_is_lossless():
    spec = make_spec()
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec


def test_json_roundtrip_is_lossless():
    spec = make_spec()
    through_json = ExperimentSpec.from_json(spec.to_json())
    assert through_json == spec
    # and the serialized form itself is stable
    assert through_json.to_json() == spec.to_json()


def test_spec_file_roundtrip(tmp_path):
    spec = make_spec()
    path = spec.save(str(tmp_path / "spec.json"))
    assert ExperimentSpec.load(path) == spec


def test_spec_load_unwraps_artifact_envelope(tmp_path):
    """An artifact dir's spec.json (versioned envelope) loads directly."""
    spec = make_spec()
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({
        "format_version": 1, "repro_version": "0", "experiment": spec.to_dict(),
    }))
    assert ExperimentSpec.load(str(path)) == spec


def test_default_name_combines_model_and_dataset():
    assert make_spec().name == "pup_yelp"
    assert make_spec(name="custom").name == "custom"


def test_string_shorthand_for_dataset_and_model():
    spec = ExperimentSpec(dataset="yelp", model="bpr-mf")
    assert spec.dataset == DatasetSpec("yelp")
    assert spec.model == ModelSpec("bpr-mf")


def test_create_rejects_train_config_and_kwargs_together():
    with pytest.raises(ValueError, match="not both"):
        ExperimentSpec.create("pup", "yelp", train=TrainConfig(), epochs=3)


def test_create_seed_reaches_model_and_train():
    spec = make_spec(seed=9)
    assert spec.model.seed == 9
    assert spec.train.seed == 9


def test_unknown_fields_raise():
    payload = make_spec().to_dict()
    payload["optimizer"] = "sgd"
    with pytest.raises(ValueError, match="unknown ExperimentSpec"):
        ExperimentSpec.from_dict(payload)

    with pytest.raises(ValueError, match="unknown DatasetSpec"):
        DatasetSpec.from_dict({"name": "yelp", "subsample": 0.5})
    with pytest.raises(ValueError, match="unknown EvalSpec"):
        EvalSpec.from_dict({"split": "test", "metric": "auc"})
    with pytest.raises(ValueError, match="unknown TrainConfig"):
        TrainConfig.from_dict({"epochs": 2, "optimizer": "sgd"})


def test_dataset_spec_rejects_unknown_dataset():
    with pytest.raises(KeyError, match="unknown dataset"):
        DatasetSpec("movielens")


def test_eval_spec_validates_protocol():
    with pytest.raises(ValueError, match="split"):
        EvalSpec(split="holdout")
    with pytest.raises(ValueError, match="ks"):
        EvalSpec(ks=())
    with pytest.raises(ValueError, match="ks"):
        EvalSpec(ks=(0,))
    # cutoffs are sorted + deduplicated
    assert EvalSpec(ks=[20, 10, 20]).ks == (10, 20)


def test_train_config_roundtrip():
    config = TrainConfig(epochs=7, lr_milestones=[3, 5], eval_every=0)
    payload = json.loads(json.dumps(config.to_dict()))
    assert TrainConfig.from_dict(payload) == config
    assert config.lr_milestones == (3, 5)  # canonicalized to a tuple
