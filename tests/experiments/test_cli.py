"""CLI smoke tests: every subcommand drives the experiment API."""

import os

import pytest

from repro.cli import main
from repro.experiments import ExperimentSpec


def run_cli(args, capsys):
    code = main(args)
    out = capsys.readouterr().out
    return code, out


TRAIN_ARGS = [
    "train", "--model", "pup", "--dataset", "yelp", "--scale", "0.2",
    "--epochs", "2", "--lr-milestones", "1", "--ks", "5,10", "--quiet",
    "--hparam", "global_dim=8", "--hparam", "category_dim=4",
]


@pytest.fixture(scope="module")
def trained_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("cli") / "pup_yelp")
    code = main([*TRAIN_ARGS, "--out", directory])
    assert code == 0
    return directory


def test_list(capsys):
    code, out = run_cli(["list"], capsys)
    assert code == 0
    for token in ("yelp", "beibei", "amazon", "pup", "bpr-mf", "lightgcn"):
        assert token in out


def test_train_writes_artifacts_and_prints_metrics(trained_dir, capsys):
    assert {"spec.json", "checkpoint.npz", "index.npz", "metrics.json"} <= set(
        os.listdir(trained_dir)
    )


def test_evaluate(trained_dir, capsys):
    code, out = run_cli(["evaluate", trained_dir], capsys)
    assert code == 0
    assert "Recall@10" in out
    assert "reproduced to within 0.00e+00" in out


def test_evaluate_with_override_ks(trained_dir, capsys):
    code, out = run_cli(["evaluate", trained_dir, "--ks", "3"], capsys)
    assert code == 0
    assert "Recall@3" in out


def test_export(trained_dir, tmp_path, capsys):
    out_path = str(tmp_path / "replica_index.npz")
    code, out = run_cli(["export", trained_dir, "--out", out_path], capsys)
    assert code == 0
    assert os.path.exists(out_path)
    assert "exported PUP index" in out


def test_serve_dry_run(trained_dir, capsys):
    code, out = run_cli(["serve", trained_dir, "--dry-run", "--k", "3"], capsys)
    assert code == 0
    assert "[warm]" in out
    assert "[cold_fallback]" in out
    assert "served 4 requests" in out


def test_serve_explicit_users(trained_dir, capsys):
    code, out = run_cli(["serve", trained_dir, "--users", "0,1", "--k", "2"], capsys)
    assert code == 0
    assert out.count("[warm]") == 2


def test_serve_through_gateway(trained_dir, capsys):
    code, out = run_cli(
        [
            "serve", trained_dir, "--dry-run", "--k", "3", "--gateway",
            "--queue-depth", "64", "--max-wait-ms", "1.5", "--rate-limit", "10000",
        ],
        capsys,
    )
    assert code == 0
    assert "gateway: queue depth 64, max wait 1.5 ms, 10000 req/s per tenant" in out
    assert "[warm]" in out
    assert "[cold_fallback]" in out
    assert "served 4 requests" in out


def test_train_from_spec_file(tmp_path, capsys):
    spec = ExperimentSpec.create(
        "bpr-mf", "yelp", scale=0.2, hparams={"dim": 8}, epochs=1,
        lr_milestones=[], ks=(5,), name="from_spec", verbose=False,
    )
    spec_path = spec.save(str(tmp_path / "spec.json"))
    out_dir = str(tmp_path / "artifacts")
    code, out = run_cli(
        ["train", "--spec", spec_path, "--out", out_dir, "--quiet"], capsys
    )
    assert code == 0
    assert "from_spec" in out
    assert os.path.exists(os.path.join(out_dir, "spec.json"))


def test_compare(capsys):
    code, out = run_cli(
        [
            "compare", "--models", "itempop,bpr-mf", "--dataset", "yelp",
            "--scale", "0.2", "--epochs", "1", "--ks", "5", "--quiet",
        ],
        capsys,
    )
    assert code == 0
    assert "ItemPop" in out and "BPR-MF" in out
    assert "Recall@5" in out


def test_train_spec_file_rejects_conflicting_flags(tmp_path):
    spec = ExperimentSpec.create(
        "bpr-mf", "yelp", scale=0.2, hparams={"dim": 8}, epochs=1, ks=(5,),
    )
    spec_path = spec.save(str(tmp_path / "spec.json"))
    with pytest.raises(SystemExit, match="--epochs"):
        main(["train", "--spec", spec_path, "--epochs", "2"])


def test_compare_resolves_aliases_to_paper_hparams(capsys, monkeypatch):
    """`--models gc-mc` must train with PAPER_HPARAMS['gcmc'], not defaults."""
    import repro.cli as cli

    captured = {}
    real_create = cli.ExperimentSpec.create.__func__

    def spy(cls, model, dataset, **kwargs):
        captured[model] = kwargs.get("hparams")
        return real_create(cls, model, dataset, **kwargs)

    monkeypatch.setattr(cli.ExperimentSpec, "create", classmethod(spy))
    code, _ = run_cli(
        [
            "compare", "--models", "gc-mc", "--dataset", "yelp",
            "--scale", "0.2", "--epochs", "1", "--ks", "5", "--quiet",
        ],
        capsys,
    )
    assert code == 0
    assert captured["gc-mc"] == {"dim": 64}


def test_serve_dry_run_overrides_users(trained_dir, capsys):
    code, out = run_cli(
        ["serve", trained_dir, "--users", "0", "--dry-run", "--k", "2"], capsys
    )
    assert code == 0
    assert "served 4 requests" in out  # sample mode, not the single user


def test_bad_lr_milestones_error_names_the_flag(capsys):
    with pytest.raises(SystemExit, match="--lr-milestones"):
        main(
            ["train", "--model", "pup", "--dataset", "yelp", "--lr-milestones", "5,x"]
        )


def test_train_requires_model_and_dataset():
    with pytest.raises(SystemExit):
        main(["train", "--model", "pup"])


def test_unknown_subcommand_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
