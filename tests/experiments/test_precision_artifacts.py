"""Precision is part of the experiment spec and survives artifact rehydration."""

import json

import numpy as np
import pytest

from repro.experiments import Experiment, ExperimentSpec
from repro.experiments.runner import run


class TestSpecPrecision:
    def test_default_and_roundtrip(self):
        spec = ExperimentSpec.create("pup", "yelp", scale=0.25, epochs=2)
        assert spec.precision == "float64"
        spec32 = ExperimentSpec.create("pup", "yelp", scale=0.25, epochs=2, precision="float32")
        restored = ExperimentSpec.from_dict(json.loads(spec32.to_json()))
        assert restored.precision == "float32"

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            ExperimentSpec.create("pup", "yelp", precision="float16")

    def test_pre_policy_specs_default_to_float64(self):
        spec = ExperimentSpec.create("pup", "yelp", scale=0.25, epochs=2)
        payload = spec.to_dict()
        del payload["precision"]  # a spec.json written before the field existed
        assert ExperimentSpec.from_dict(payload).precision == "float64"


class TestArtifactPrecision:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        spec = ExperimentSpec.create(
            "pup", "yelp", scale=0.25, epochs=2, ks=(10,), precision="float32"
        )
        out = str(tmp_path_factory.mktemp("runs") / "pup_f32")
        experiment = run(spec, artifacts_dir=out)
        return out, experiment

    def test_run_builds_float32_model(self, artifacts):
        _, experiment = artifacts
        assert all(p.dtype == np.float32 for p in experiment.model.parameters())
        assert experiment.index.branches[0].user.dtype == np.float32

    def test_load_rebuilds_in_recorded_precision(self, artifacts):
        """Regression: without the recorded precision the model came back
        float64 while the saved index stayed float32, so live scores drifted
        from the index by round-off — enough to flip near-tied top-K."""
        out, experiment = artifacts
        reloaded = Experiment.load(out)
        assert reloaded.spec.precision == "float32"
        assert all(p.dtype == np.float32 for p in reloaded.model.parameters())
        users = np.arange(reloaded.dataset.n_users)
        np.testing.assert_array_equal(
            reloaded.model.predict_scores(users), reloaded.index.score(users)
        )
        np.testing.assert_array_equal(
            reloaded.index.score(users), experiment.index.score(users)
        )
