"""The run() pipeline and artifact-directory rehydration guarantees."""

import json
import os

import numpy as np
import pytest

from repro.experiments import Experiment, ExperimentSpec, run
from repro.experiments.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    CHECKPOINT_FILENAME,
    INDEX_FILENAME,
    LOSS_CURVE_FILENAME,
    METRICS_FILENAME,
    SPEC_FILENAME,
)
from repro.serving import ExportError


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """One tiny PUP experiment, run once and shared by every test here."""
    directory = str(tmp_path_factory.mktemp("experiment"))
    spec = ExperimentSpec.create(
        "pup",
        "yelp",
        scale=0.2,
        hparams={"global_dim": 8, "category_dim": 4},
        epochs=2,
        lr_milestones=[],
        ks=(5, 10),
    )
    experiment = run(spec, artifacts_dir=directory)
    return directory, experiment


def test_run_writes_every_artifact(artifacts):
    directory, _ = artifacts
    expected = {
        SPEC_FILENAME, CHECKPOINT_FILENAME, INDEX_FILENAME,
        METRICS_FILENAME, LOSS_CURVE_FILENAME,
    }
    assert expected <= set(os.listdir(directory))


def test_spec_json_is_versioned_and_faithful(artifacts):
    directory, experiment = artifacts
    with open(os.path.join(directory, SPEC_FILENAME)) as handle:
        payload = json.load(handle)
    assert payload["format_version"] == ARTIFACT_FORMAT_VERSION
    assert ExperimentSpec.from_dict(payload["experiment"]) == experiment.spec


def test_metrics_json_nulls_untracked_validation_sentinels(artifacts):
    directory, _ = artifacts
    with open(os.path.join(directory, METRICS_FILENAME)) as handle:
        stored = json.load(handle)  # also proves it is strictly valid JSON
    assert stored["train"]["best_metric"] is None
    assert stored["train"]["best_epoch"] is None
    assert stored["train"]["epochs_run"] == 2
    assert stored["index"] == INDEX_FILENAME
    assert set(stored["metrics"]) == {"Recall@5", "NDCG@5", "Recall@10", "NDCG@10"}


def test_loss_curve_has_one_point_per_epoch(artifacts):
    directory, experiment = artifacts
    with open(os.path.join(directory, LOSS_CURVE_FILENAME)) as handle:
        curves = json.load(handle)
    assert curves["epoch_losses"] == [float(x) for x in experiment.train_result.epoch_losses]
    assert len(curves["epoch_losses"]) == 2


def test_rehydrated_experiment_matches_in_process_run(artifacts):
    directory, experiment = artifacts
    reloaded = Experiment.load(directory)
    assert reloaded.spec == experiment.spec
    assert reloaded.metrics == pytest.approx(experiment.metrics)
    assert reloaded.train_result.epochs_run == experiment.train_result.epochs_run
    for name, array in experiment.model.state_dict().items():
        np.testing.assert_array_equal(array, reloaded.model.state_dict()[name])


def test_rehydrated_serving_topk_is_bit_identical(artifacts):
    """The acceptance-criterion identity: load() -> served top-K == topk_rankings."""
    directory, experiment = artifacts
    users = list(range(10))
    expected = experiment.topk(users, k=10)

    reloaded = Experiment.load(directory)
    service = reloaded.service(default_k=10)
    for user, recommendation in zip(users, service.recommend_many(users)):
        np.testing.assert_array_equal(recommendation.items, expected[user])


def test_rehydrated_evaluate_reproduces_stored_metrics(artifacts):
    directory, _ = artifacts
    reloaded = Experiment.load(directory)
    assert reloaded.evaluate() == pytest.approx(reloaded.metrics, abs=0)


def test_export_false_skips_index(tmp_path):
    spec = ExperimentSpec.create(
        "bpr-mf", "yelp", scale=0.2, hparams={"dim": 8}, epochs=1, lr_milestones=[],
        ks=(5,), export=False,
    )
    experiment = run(spec, artifacts_dir=str(tmp_path))
    assert not os.path.exists(tmp_path / INDEX_FILENAME)
    # the index is still reachable lazily from the live handle
    assert experiment.index.n_users == experiment.dataset.n_users


def test_non_factorizable_model_warns_and_still_reloads(tmp_path):
    spec = ExperimentSpec.create(
        "deepfm", "yelp", scale=0.2, hparams={"dim": 4, "hidden": [8]},
        epochs=1, lr_milestones=[], ks=(5,),
    )
    with pytest.warns(UserWarning, match="serving index skipped"):
        experiment = run(spec, artifacts_dir=str(tmp_path))
    assert not os.path.exists(tmp_path / INDEX_FILENAME)

    reloaded = Experiment.load(str(tmp_path))
    assert reloaded.metrics == pytest.approx(experiment.metrics)
    with pytest.raises(ExportError):
        reloaded.service()


def test_load_rejects_newer_format(artifacts, tmp_path):
    directory, _ = artifacts
    spec_path = os.path.join(directory, SPEC_FILENAME)
    with open(spec_path) as handle:
        payload = json.load(handle)
    payload["format_version"] = ARTIFACT_FORMAT_VERSION + 1
    clone = tmp_path / "newer"
    clone.mkdir()
    with open(clone / SPEC_FILENAME, "w") as handle:
        json.dump(payload, handle)
    with pytest.raises(ValueError, match="newer than this reader"):
        Experiment.load(str(clone))


def test_load_requires_spec_json(tmp_path):
    with pytest.raises(FileNotFoundError, match="artifact directory"):
        Experiment.load(str(tmp_path))
