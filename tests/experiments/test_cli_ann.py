"""CLI surfaces of the approximate-retrieval stack."""

import os

import pytest

from repro.cli import main
from repro.experiments.artifacts import ANN_FILENAME, Experiment


def run_cli(args, capsys):
    code = main(args)
    out = capsys.readouterr().out
    return code, out


TRAIN_ARGS = [
    "train", "--model", "pup", "--dataset", "yelp", "--scale", "0.2",
    "--epochs", "2", "--lr-milestones", "1", "--ks", "5,10", "--quiet",
    "--hparam", "global_dim=8", "--hparam", "category_dim=4",
]


@pytest.fixture(scope="module")
def trained_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("cli_ann") / "pup_yelp")
    code = main([*TRAIN_ARGS, "--out", directory])
    assert code == 0
    return directory


def test_export_ann_writes_the_archive(trained_dir, capsys):
    code, out = run_cli(["export", trained_dir, "--ann", "--ann-lists", "6"], capsys)
    assert code == 0
    assert "exported ANN index (ivf): 6 lists" in out
    assert os.path.exists(os.path.join(trained_dir, ANN_FILENAME))


def test_serve_ann_answers_queries(trained_dir, capsys):
    code, out = run_cli(["serve", trained_dir, "--ann", "--dry-run"], capsys)
    assert code == 0
    assert "approximate retrieval" in out
    assert "[warm]" in out and "[cold_fallback]" in out


def test_recommend_ann_bulk_export(trained_dir, capsys):
    out_path = os.path.join(trained_dir, "bulk_ann.npz")
    code, out = run_cli(
        ["recommend", trained_dir, "--k", "5", "--ann", "--out", out_path], capsys
    )
    assert code == 0
    assert "ann nprobe" in out
    assert os.path.exists(out_path)


def test_ann_check_passes_at_full_probe(trained_dir, capsys):
    code, out = run_cli(
        ["evaluate", trained_dir, "--ann-check", "--ann-nprobe", "100000",
         "--ann-recall-floor", "1.0"],
        capsys,
    )
    assert code == 0
    assert "recall@50=1.0000" in out


def test_ann_check_fails_below_floor(trained_dir, capsys):
    # an impossible floor guarantees the gate trips regardless of geometry
    code, out = run_cli(
        ["evaluate", trained_dir, "--ann-check", "--ann-nprobe", "1",
         "--ann-recall-floor", "1.01"],
        capsys,
    )
    assert code == 1
    assert "FAIL" in out


def test_saved_ann_reused_by_experiment_handle(trained_dir):
    experiment = Experiment.load(trained_dir)
    ann = experiment.ann_index()
    assert ann.n_lists == 6  # the archive written by test_export_ann, not a rebuild


def test_explicit_knobs_override_the_saved_archive(trained_dir):
    """Regression: --ann-nprobe/--ann-lists must not be silently ignored
    when ann.npz exists."""
    experiment = Experiment.load(trained_dir)
    assert experiment.ann_index(nprobe=4).nprobe == 4
    assert experiment.ann_index(nprobe=10_000).nprobe == 6  # clamped to n_lists
    rebuilt = experiment.ann_index(n_lists=3)
    assert rebuilt.n_lists == 3  # different layout: fresh build, not the archive
