"""Tests for uniform and rank-based price quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import quantize, rank_quantize, uniform_quantize


class TestUniform:
    def test_paper_example(self):
        # Mobile phone at 1000 in range [200, 3000] with 10 levels -> level 2.
        prices = np.array([200.0, 1000.0, 3000.0])
        categories = np.zeros(3, dtype=int)
        levels = uniform_quantize(prices, categories, 10)
        assert levels[1] == 2

    def test_max_price_clipped_to_top_level(self):
        levels = uniform_quantize(np.array([0.0, 100.0]), np.zeros(2, dtype=int), 10)
        assert levels[1] == 9

    def test_min_price_level_zero(self):
        levels = uniform_quantize(np.array([5.0, 10.0]), np.zeros(2, dtype=int), 4)
        assert levels[0] == 0

    def test_constant_price_category(self):
        levels = uniform_quantize(np.array([7.0, 7.0, 7.0]), np.zeros(3, dtype=int), 10)
        np.testing.assert_array_equal(levels, 0)

    def test_per_category_independent_ranges(self):
        prices = np.array([1.0, 2.0, 100.0, 200.0])
        categories = np.array([0, 0, 1, 1])
        levels = uniform_quantize(prices, categories, 2)
        np.testing.assert_array_equal(levels, [0, 1, 0, 1])

    def test_global_range(self):
        prices = np.array([1.0, 2.0, 100.0, 200.0])
        categories = np.array([0, 0, 1, 1])
        levels = uniform_quantize(prices, categories, 2, per_category=False)
        np.testing.assert_array_equal(levels, [0, 0, 0, 1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            uniform_quantize(np.array([1.0]), np.array([0, 1]), 4)

    def test_negative_prices_rejected(self):
        with pytest.raises(ValueError):
            uniform_quantize(np.array([-1.0]), np.array([0]), 4)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            uniform_quantize(np.array([1.0]), np.array([0]), 0)

    def test_empty(self):
        levels = uniform_quantize(np.array([]), np.array([]), 4)
        assert len(levels) == 0

    def test_skewed_distribution_crowds_low_levels(self):
        # Heavy tail: most items end up in the bottom levels — the weakness
        # rank quantization fixes (Table IV).
        rng = np.random.default_rng(0)
        prices = rng.lognormal(0.0, 1.5, size=2000)
        categories = np.zeros(2000, dtype=int)
        levels = uniform_quantize(prices, categories, 10)
        assert (levels == 0).mean() > 0.5


class TestRank:
    def test_balanced_levels(self):
        rng = np.random.default_rng(0)
        prices = rng.lognormal(0.0, 1.5, size=2000)
        categories = np.zeros(2000, dtype=int)
        levels = rank_quantize(prices, categories, 10)
        counts = np.bincount(levels, minlength=10)
        assert counts.min() > 150  # near-uniform occupancy

    def test_monotone_in_price(self):
        prices = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        categories = np.zeros(5, dtype=int)
        levels = rank_quantize(prices, categories, 5)
        order = np.argsort(prices)
        assert (np.diff(levels[order]) >= 0).all()

    def test_ties_share_level(self):
        prices = np.array([1.0, 1.0, 1.0, 9.0])
        categories = np.zeros(4, dtype=int)
        levels = rank_quantize(prices, categories, 4)
        assert levels[0] == levels[1] == levels[2]

    def test_single_item_category(self):
        levels = rank_quantize(np.array([42.0]), np.array([0]), 10)
        assert levels[0] == 0

    def test_per_category(self):
        prices = np.array([1.0, 2.0, 3.0, 100.0])
        categories = np.array([0, 0, 1, 1])
        levels = rank_quantize(prices, categories, 2)
        np.testing.assert_array_equal(levels, [0, 1, 0, 1])


class TestDispatch:
    def test_uniform_dispatch(self):
        prices = np.array([1.0, 2.0])
        categories = np.zeros(2, dtype=int)
        np.testing.assert_array_equal(
            quantize(prices, categories, 2, "uniform"),
            uniform_quantize(prices, categories, 2),
        )

    def test_rank_dispatch(self):
        prices = np.array([1.0, 2.0])
        categories = np.zeros(2, dtype=int)
        np.testing.assert_array_equal(
            quantize(prices, categories, 2, "rank"),
            rank_quantize(prices, categories, 2),
        )

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            quantize(np.array([1.0]), np.array([0]), 2, "quantile")


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=20),
)
def test_levels_always_in_range(prices, n_levels):
    prices = np.array(prices)
    categories = np.zeros(len(prices), dtype=int)
    for method in ("uniform", "rank"):
        levels = quantize(prices, categories, n_levels, method)
        assert levels.min() >= 0
        assert levels.max() < n_levels


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=2, max_size=30))
def test_uniform_monotone_property(prices):
    prices = np.array(prices)
    categories = np.zeros(len(prices), dtype=int)
    levels = uniform_quantize(prices, categories, 7)
    order = np.argsort(prices, kind="stable")
    assert (np.diff(levels[order]) >= 0).all()
