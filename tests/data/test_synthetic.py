"""Tests for the synthetic dataset generators and their planted price signal."""

import numpy as np
import pytest

from repro.data import (
    SyntheticConfig,
    clear_cache,
    generate,
    load_dataset,
    make_amazon_like,
    make_beibei_like,
    make_yelp_like,
)


class TestConfigValidation:
    def test_too_few_users(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_users=1)

    def test_too_few_interactions(self):
        with pytest.raises(ValueError):
            SyntheticConfig(interactions_per_user=2)

    def test_unknown_price_distribution(self):
        with pytest.raises(ValueError):
            SyntheticConfig(price_distribution="exotic")


class TestGenerate:
    @pytest.fixture(scope="class")
    def small(self):
        config = SyntheticConfig(
            n_users=60, n_items=80, n_categories=6, n_price_levels=5,
            interactions_per_user=12, seed=42,
        )
        return generate(config)

    def test_shapes(self, small):
        dataset, truth = small
        assert dataset.n_users == 60
        assert dataset.n_items == 80
        assert truth.user_wtp.shape == (60, 6)
        assert truth.item_price_percentile.shape == (80,)

    def test_split_sizes(self, small):
        dataset, __ = small
        total = 60 * 12
        assert len(dataset.train) == int(total * 0.6)
        assert len(dataset.train) + len(dataset.validation) + len(dataset.test) == total

    def test_every_category_has_items(self, small):
        dataset, __ = small
        assert set(dataset.item_categories) == set(range(6))

    def test_price_levels_in_range(self, small):
        dataset, __ = small
        assert dataset.item_price_levels.min() >= 0
        assert dataset.item_price_levels.max() < 5

    def test_deterministic(self):
        config = SyntheticConfig(n_users=20, n_items=30, interactions_per_user=5, seed=7)
        d1, t1 = generate(config)
        d2, t2 = generate(config)
        np.testing.assert_array_equal(d1.train.users, d2.train.users)
        np.testing.assert_array_equal(d1.train.items, d2.train.items)
        np.testing.assert_allclose(t1.user_wtp, t2.user_wtp)

    def test_different_seeds_differ(self):
        base = dict(n_users=20, n_items=30, interactions_per_user=5)
        d1, __ = generate(SyntheticConfig(seed=1, **base))
        d2, __ = generate(SyntheticConfig(seed=2, **base))
        assert not np.array_equal(d1.train.items, d2.train.items)

    def test_wtp_in_unit_interval(self, small):
        __, truth = small
        assert truth.user_wtp.min() > 0.0
        assert truth.user_wtp.max() < 1.0

    def test_no_duplicate_items_per_user(self, small):
        dataset, __ = small
        users = np.concatenate([dataset.train.users, dataset.validation.users, dataset.test.users])
        items = np.concatenate([dataset.train.items, dataset.validation.items, dataset.test.items])
        for user in range(dataset.n_users):
            chosen = items[users == user]
            assert len(chosen) == len(set(chosen.tolist()))


class TestPlantedPriceSignal:
    """The behavioural model must actually encode price awareness."""

    def test_purchases_concentrate_near_wtp(self):
        config = SyntheticConfig(
            n_users=100, n_items=200, n_categories=5, n_price_levels=10,
            interactions_per_user=20, price_sensitivity=4.0, seed=3,
        )
        dataset, truth = generate(config)
        users = dataset.train.users
        items = dataset.train.items
        cats = dataset.item_categories[items]
        gap = np.abs(truth.item_price_percentile[items] - truth.user_wtp[users, cats])
        # Purchased items sit close to the user's category WTP...
        rng = np.random.default_rng(0)
        random_items = rng.integers(0, config.n_items, size=len(items))
        random_cats = dataset.item_categories[random_items]
        random_gap = np.abs(
            truth.item_price_percentile[random_items] - truth.user_wtp[users, random_cats]
        )
        assert gap.mean() < 0.7 * random_gap.mean()

    def test_inconsistency_knob_raises_wtp_spread(self):
        base = dict(n_users=80, n_items=100, n_categories=8, interactions_per_user=10)
        __, low = generate(SyntheticConfig(inconsistency=0.05, seed=5, **base))
        __, high = generate(SyntheticConfig(inconsistency=0.6, seed=5, **base))
        assert high.user_wtp.std(axis=1).mean() > low.user_wtp.std(axis=1).mean()


class TestNamedDatasets:
    def test_yelp_like_shape(self):
        dataset, __ = make_yelp_like(scale=0.25)
        assert dataset.name == "yelp-like"
        assert dataset.n_price_levels == 4

    def test_beibei_like_shape(self):
        dataset, __ = make_beibei_like(scale=0.25)
        assert dataset.n_price_levels == 10
        assert dataset.n_categories == 16

    def test_amazon_like_lognormal_prices(self):
        dataset, __ = make_amazon_like(scale=0.25)
        assert dataset.n_categories == 5
        prices = dataset.catalog.raw_prices
        # Lognormal: mean well above median (heavy right tail).
        assert prices.mean() > 1.2 * np.median(prices)

    def test_amazon_price_levels_param(self):
        dataset, __ = make_amazon_like(scale=0.25, n_price_levels=3)
        assert dataset.n_price_levels == 3


class TestRegistry:
    def test_load_and_cache(self):
        clear_cache()
        d1, __ = load_dataset("yelp", scale=0.25)
        d2, __ = load_dataset("yelp", scale=0.25)
        assert d1 is d2

    def test_distinct_keys_not_shared(self):
        clear_cache()
        d1, __ = load_dataset("yelp", scale=0.25)
        d2, __ = load_dataset("yelp", scale=0.25, seed=9)
        assert d1 is not d2

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("netflix")

    def test_available(self):
        from repro.data import available_datasets

        assert available_datasets() == ["amazon", "beibei", "yelp"]
