"""Tests for InteractionTable / ItemCatalog / Dataset containers."""

import numpy as np
import pytest

from repro.data import Dataset, InteractionTable, ItemCatalog


def tiny_catalog():
    return ItemCatalog(
        raw_prices=[10.0, 20.0, 30.0, 40.0],
        categories=[0, 0, 1, 1],
        price_levels=[0, 1, 0, 1],
        n_categories=2,
        n_price_levels=2,
    )


def tiny_dataset():
    catalog = tiny_catalog()
    train = InteractionTable([0, 0, 1, 2], [0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0])
    valid = InteractionTable([1], [0], [4.0])
    test = InteractionTable([2], [1], [5.0])
    return Dataset("tiny", 3, 4, catalog, train, valid, test)


class TestInteractionTable:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            InteractionTable([0, 1], [0], [0.0, 1.0])

    def test_sorted_by_time(self):
        table = InteractionTable([0, 1, 2], [2, 1, 0], [3.0, 1.0, 2.0])
        ordered = table.sorted_by_time()
        np.testing.assert_array_equal(ordered.users, [1, 2, 0])
        np.testing.assert_array_equal(ordered.timestamps, [1.0, 2.0, 3.0])

    def test_select_mask(self):
        table = InteractionTable([0, 1, 2], [0, 1, 2], [0.0, 1.0, 2.0])
        subset = table.select(np.array([True, False, True]))
        np.testing.assert_array_equal(subset.users, [0, 2])

    def test_deduplicate_keeps_earliest(self):
        table = InteractionTable([0, 0, 0], [5, 5, 6], [2.0, 1.0, 3.0])
        deduped = table.deduplicate()
        assert len(deduped) == 2
        pair_times = dict(zip(deduped.items, deduped.timestamps))
        assert pair_times[5] == 1.0

    def test_len(self):
        assert len(InteractionTable([0], [0], [0.0])) == 1


class TestItemCatalog:
    def test_valid_construction(self):
        assert len(tiny_catalog()) == 4

    def test_category_out_of_range(self):
        with pytest.raises(ValueError):
            ItemCatalog([1.0], [5], [0], n_categories=2, n_price_levels=2)

    def test_price_level_out_of_range(self):
        with pytest.raises(ValueError):
            ItemCatalog([1.0], [0], [9], n_categories=2, n_price_levels=2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ItemCatalog([1.0, 2.0], [0], [0], n_categories=1, n_price_levels=1)

    def test_with_levels(self):
        catalog = tiny_catalog()
        new = catalog.with_levels(np.array([0, 1, 2, 3]), 4)
        assert new.n_price_levels == 4
        np.testing.assert_array_equal(new.price_levels, [0, 1, 2, 3])
        # original untouched
        assert catalog.n_price_levels == 2


class TestDataset:
    def test_summary(self):
        stats = tiny_dataset().summary()
        assert stats == {
            "users": 3,
            "items": 4,
            "categories": 2,
            "price_levels": 2,
            "interactions": 6,
        }

    def test_catalog_size_mismatch(self):
        with pytest.raises(ValueError):
            Dataset(
                "bad",
                3,
                5,
                tiny_catalog(),
                InteractionTable([], [], []),
                InteractionTable([], [], []),
                InteractionTable([], [], []),
            )

    def test_out_of_range_interaction(self):
        with pytest.raises(ValueError):
            Dataset(
                "bad",
                1,
                4,
                tiny_catalog(),
                InteractionTable([5], [0], [0.0]),
                InteractionTable([], [], []),
                InteractionTable([], [], []),
            )

    def test_train_positive_sets(self):
        pos = tiny_dataset().train_positive_sets()
        assert pos[0] == {0, 1}
        assert pos[1] == {2}
        assert pos[2] == {3}

    def test_train_positive_sets_cached(self):
        ds = tiny_dataset()
        assert ds.train_positive_sets() is ds.train_positive_sets()

    def test_split_positive_sets(self):
        ds = tiny_dataset()
        assert ds.split_positive_sets("test") == {2: {1}}
        assert ds.split_positive_sets("validation") == {1: {0}}

    def test_train_matrix_binary(self):
        matrix = tiny_dataset().train_matrix()
        assert matrix.shape == (3, 4)
        assert matrix.sum() == 4
        assert matrix[0, 1] == 1.0

    def test_train_matrix_duplicates_collapse(self):
        catalog = tiny_catalog()
        train = InteractionTable([0, 0], [1, 1], [0.0, 1.0])
        ds = Dataset("dup", 1, 4, catalog, train, InteractionTable([], [], []), InteractionTable([], [], []))
        assert ds.train_matrix()[0, 1] == 1.0

    def test_item_popularity(self):
        pop = tiny_dataset().item_popularity()
        np.testing.assert_array_equal(pop, [1, 1, 1, 1])

    def test_requantize(self):
        ds = tiny_dataset()
        new = ds.requantize(np.array([0, 0, 0, 0]), 1)
        assert new.n_price_levels == 1
        assert ds.n_price_levels == 2
        assert new.train is ds.train

    def test_attribute_properties(self):
        ds = tiny_dataset()
        np.testing.assert_array_equal(ds.item_categories, [0, 0, 1, 1])
        np.testing.assert_array_equal(ds.item_price_levels, [0, 1, 0, 1])
