"""Tests for catalog turnover (item release times) in the generator."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate


def make(turnover, seed=5):
    config = SyntheticConfig(
        n_users=60,
        n_items=120,
        n_categories=5,
        n_price_levels=4,
        interactions_per_user=10,
        item_turnover=turnover,
        seed=seed,
    )
    return generate(config)[0]


class TestTurnover:
    def test_invalid_turnover(self):
        with pytest.raises(ValueError):
            SyntheticConfig(item_turnover=1.0)
        with pytest.raises(ValueError):
            SyntheticConfig(item_turnover=-0.1)

    def test_zero_turnover_is_static_catalog(self):
        dataset = make(0.0)
        # With a static catalog nearly every item appears in training.
        train_items = set(dataset.train.items.tolist())
        all_items = set(
            np.concatenate(
                [dataset.train.items, dataset.validation.items, dataset.test.items]
            ).tolist()
        )
        assert len(train_items) / len(all_items) > 0.9

    def test_turnover_creates_cold_test_items(self):
        dataset = make(0.9)
        train_items = set(dataset.train.items.tolist())
        test_items = set(dataset.test.items.tolist())
        cold = test_items - train_items
        # A meaningful share of test items never appeared in training.
        assert len(cold) / len(test_items) > 0.1

    def test_higher_turnover_more_cold_items(self):
        def cold_share(turnover):
            dataset = make(turnover)
            train_items = set(dataset.train.items.tolist())
            test_items = set(dataset.test.items.tolist())
            return len(test_items - train_items) / len(test_items)

        assert cold_share(0.9) > cold_share(0.0)

    def test_item_never_purchased_before_release(self):
        """Timestamps must respect release times: an item's earliest purchase
        cannot precede the general position of its release window."""
        config = SyntheticConfig(
            n_users=50,
            n_items=100,
            interactions_per_user=8,
            item_turnover=0.9,
            seed=3,
        )
        dataset, __ = generate(config)
        # Reconstruct per-item first purchase times across all splits.
        users = np.concatenate([dataset.train.users, dataset.validation.users, dataset.test.users])
        items = np.concatenate([dataset.train.items, dataset.validation.items, dataset.test.items])
        times = np.concatenate(
            [dataset.train.timestamps, dataset.validation.timestamps, dataset.test.timestamps]
        )
        del users
        first_purchase = {}
        for item, time in zip(items, times):
            item = int(item)
            if item not in first_purchase or time < first_purchase[item]:
                first_purchase[item] = time
        # With turnover 0.9, some items release late; their first purchases
        # must also be late (no purchase can precede release).
        # We can't read releases directly, but the distribution of first
        # purchases must spread far beyond 0 — impossible without turnover.
        values = np.array(list(first_purchase.values()))
        assert values.max() > 0.5
        assert np.median(values) > 0.05

    def test_split_fractions_unchanged(self):
        dataset = make(0.6)
        total = 60 * 10
        assert len(dataset.train) == int(total * 0.6)
