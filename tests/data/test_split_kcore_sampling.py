"""Tests for temporal splitting, k-core filtering and negative sampling."""

import numpy as np
import pytest

from repro.data import (
    InteractionTable,
    NegativeSampler,
    k_core_filter,
    temporal_split,
)
from repro.data import Dataset, ItemCatalog


class TestTemporalSplit:
    def make_table(self, n=100):
        rng = np.random.default_rng(0)
        return InteractionTable(
            rng.integers(0, 10, n), rng.integers(0, 20, n), rng.permutation(n).astype(float)
        )

    def test_fractions(self):
        train, valid, test = temporal_split(self.make_table(100))
        assert len(train) == 60
        assert len(valid) == 20
        assert len(test) == 20

    def test_chronological_order(self):
        train, valid, test = temporal_split(self.make_table(100))
        assert train.timestamps.max() <= valid.timestamps.min()
        assert valid.timestamps.max() <= test.timestamps.min()

    def test_custom_fractions(self):
        train, valid, test = temporal_split(self.make_table(100), 0.8, 0.1)
        assert len(train) == 80
        assert len(valid) == 10
        assert len(test) == 10

    def test_invalid_fractions(self):
        table = self.make_table(10)
        with pytest.raises(ValueError):
            temporal_split(table, 0.0, 0.2)
        with pytest.raises(ValueError):
            temporal_split(table, 0.6, 0.0)
        with pytest.raises(ValueError):
            temporal_split(table, 0.8, 0.2)

    def test_no_events_lost(self):
        table = self.make_table(97)
        train, valid, test = temporal_split(table)
        assert len(train) + len(valid) + len(test) == 97


class TestKCore:
    def test_removes_sparse_users_and_items(self):
        # user 0 interacts with items 0,1; user 1 with 0,1; user 2 with item 2 once.
        table = InteractionTable(
            [0, 0, 1, 1, 2], [0, 1, 0, 1, 2], [0.0, 1.0, 2.0, 3.0, 4.0]
        )
        filtered, kept_users, kept_items = k_core_filter(table, k=2)
        assert len(filtered) == 4
        np.testing.assert_array_equal(kept_users, [0, 1])
        np.testing.assert_array_equal(kept_items, [0, 1])

    def test_reindexes_contiguously(self):
        table = InteractionTable(
            [5, 5, 9, 9], [3, 7, 3, 7], [0.0, 1.0, 2.0, 3.0]
        )
        filtered, kept_users, kept_items = k_core_filter(table, k=2)
        assert set(filtered.users) == {0, 1}
        assert set(filtered.items) == {0, 1}
        np.testing.assert_array_equal(kept_users, [5, 9])
        np.testing.assert_array_equal(kept_items, [3, 7])

    def test_cascading_removal(self):
        # Removing user 2 drops item 2 below threshold, which drops user 1's count.
        table = InteractionTable(
            [0, 0, 1, 1, 2], [0, 1, 0, 2, 2], [0.0] * 5
        )
        filtered, __, __ = k_core_filter(table, k=2)
        # Fixed point: users 0,1 on items 0... user1 then has only item0 -> dropped,
        # then item1 has only user0 -> dropped, user0 left with item0 only -> dropped.
        assert len(filtered) == 0

    def test_k1_keeps_everything(self):
        table = InteractionTable([0, 1], [0, 1], [0.0, 1.0])
        filtered, __, __ = k_core_filter(table, k=1)
        assert len(filtered) == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_core_filter(InteractionTable([0], [0], [0.0]), k=0)


def make_sampler_dataset():
    n_users, n_items = 6, 10
    rng = np.random.default_rng(1)
    users = np.repeat(np.arange(n_users), 4)
    items = np.concatenate([rng.choice(n_items, 4, replace=False) for _ in range(n_users)])
    catalog = ItemCatalog(
        raw_prices=np.linspace(1, 10, n_items),
        categories=np.zeros(n_items, dtype=int),
        price_levels=np.zeros(n_items, dtype=int),
        n_categories=1,
        n_price_levels=1,
    )
    table = InteractionTable(users, items, np.arange(len(users), dtype=float))
    empty = InteractionTable([], [], [])
    return Dataset("s", n_users, n_items, catalog, table, empty, empty)


class TestNegativeSampler:
    def test_negatives_never_positive(self):
        ds = make_sampler_dataset()
        sampler = NegativeSampler(ds, np.random.default_rng(0))
        pos = ds.train_positive_sets()
        for __ in range(20):
            users = np.random.default_rng(2).integers(0, ds.n_users, 50)
            negs = sampler.sample_negatives(users)
            for user, neg in zip(users, negs):
                assert neg not in pos[int(user)]

    def test_epoch_covers_all_positives(self):
        ds = make_sampler_dataset()
        sampler = NegativeSampler(ds, np.random.default_rng(0))
        seen = set()
        total = 0
        for users, pos, neg in sampler.epoch_batches(batch_size=7):
            assert len(users) == len(pos) == len(neg)
            total += len(users)
            seen.update(zip(users.tolist(), pos.tolist()))
        assert total == len(ds.train)
        expected = set(zip(ds.train.users.tolist(), ds.train.items.tolist()))
        assert seen == expected

    def test_rate_repeats_positives(self):
        ds = make_sampler_dataset()
        sampler = NegativeSampler(ds, np.random.default_rng(0), rate=3)
        total = sum(len(u) for u, __, __ in sampler.epoch_batches(batch_size=64))
        assert total == 3 * len(ds.train)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            NegativeSampler(make_sampler_dataset(), np.random.default_rng(0), rate=0)

    def test_invalid_batch_size(self):
        sampler = NegativeSampler(make_sampler_dataset(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            next(sampler.epoch_batches(batch_size=0))

    def test_user_with_all_items_rejected(self):
        catalog = ItemCatalog(
            raw_prices=[1.0, 2.0],
            categories=[0, 0],
            price_levels=[0, 0],
            n_categories=1,
            n_price_levels=1,
        )
        table = InteractionTable([0, 0], [0, 1], [0.0, 1.0])
        empty = InteractionTable([], [], [])
        ds = Dataset("full", 1, 2, catalog, table, empty, empty)
        with pytest.raises(ValueError):
            NegativeSampler(ds, np.random.default_rng(0))

    def test_deterministic_given_seed(self):
        ds = make_sampler_dataset()
        s1 = NegativeSampler(ds, np.random.default_rng(7))
        s2 = NegativeSampler(ds, np.random.default_rng(7))
        b1 = list(s1.epoch_batches(batch_size=8))
        b2 = list(s2.epoch_batches(batch_size=8))
        for (u1, p1, n1), (u2, p2, n2) in zip(b1, b2):
            np.testing.assert_array_equal(u1, u2)
            np.testing.assert_array_equal(n1, n2)
