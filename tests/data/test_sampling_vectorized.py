"""The vectorized (packed-key/searchsorted) negative-sampler membership test."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate
from repro.data.sampling import NegativeSampler


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(
        n_users=60, n_items=80, n_categories=5, n_price_levels=4,
        interactions_per_user=15, seed=11,
    )
    return generate(config)[0]


class TestVectorizedMembership:
    def test_matches_python_set_semantics(self, dataset):
        """Property: _is_positive agrees with the naive set lookup on every
        (user, item) pair of a random probe batch."""
        sampler = NegativeSampler(dataset, np.random.default_rng(0))
        positives = dataset.train_positive_sets()
        rng = np.random.default_rng(1)
        users = rng.integers(0, dataset.n_users, size=500)
        items = rng.integers(0, dataset.n_items, size=500)
        expected = np.array(
            [int(item) in positives.get(int(user), set()) for user, item in zip(users, items)]
        )
        np.testing.assert_array_equal(sampler._is_positive(users, items), expected)

    def test_membership_covers_boundary_keys(self, dataset):
        """First/last packed keys (searchsorted edge cases) classify correctly."""
        sampler = NegativeSampler(dataset, np.random.default_rng(0))
        n_items = dataset.n_items
        first, last = sampler._pos_keys[0], sampler._pos_keys[-1]
        users = np.array([first // n_items, last // n_items])
        items = np.array([first % n_items, last % n_items])
        assert sampler._is_positive(users, items).all()

    def test_membership_past_last_key_is_negative(self, dataset):
        """A candidate key beyond every stored key must classify as negative
        (searchsorted returns len(keys); the clipped lookup must not match)."""
        sampler = NegativeSampler(dataset, np.random.default_rng(0))
        n_items = dataset.n_items
        last = int(sampler._pos_keys[-1])
        user, item = last // n_items, last % n_items
        probe_item = item + 1 if item + 1 < n_items else item - 1
        if user * n_items + probe_item > last:
            assert not sampler._is_positive(np.array([user]), np.array([probe_item])).any()
        probe_user = dataset.n_users - 1
        probe = np.array([probe_user * n_items + n_items - 1])
        if probe[0] > last:
            assert not sampler._is_positive(
                np.array([probe_user]), np.array([n_items - 1])
            ).any()

    def test_negatives_never_positive_large_batch(self, dataset):
        sampler = NegativeSampler(dataset, np.random.default_rng(5))
        positives = dataset.train_positive_sets()
        users = np.repeat(np.arange(dataset.n_users), 20)
        negatives = sampler.sample_negatives(users)
        for user, item in zip(users, negatives):
            assert int(item) not in positives.get(int(user), set())

    def test_seed_determinism_preserved(self, dataset):
        draws = []
        for _ in range(2):
            sampler = NegativeSampler(dataset, np.random.default_rng(42))
            batches = list(sampler.epoch_batches(64))
            draws.append(np.concatenate([neg for _, _, neg in batches]))
        np.testing.assert_array_equal(draws[0], draws[1])

    def test_empty_train_split_samples_without_error(self):
        """Regression: an empty positive-key array must classify everything
        as negative, not index out of bounds."""
        from repro.data.dataset import Dataset, InteractionTable, ItemCatalog

        empty = InteractionTable(
            np.array([], dtype=int), np.array([], dtype=int), np.array([], dtype=float)
        )
        catalog = ItemCatalog(
            raw_prices=np.ones(3),
            categories=np.zeros(3, dtype=int),
            price_levels=np.zeros(3, dtype=int),
            n_categories=1,
            n_price_levels=1,
        )
        dataset = Dataset(
            name="empty", n_users=2, n_items=3, catalog=catalog,
            train=empty, validation=empty, test=empty,
        )
        sampler = NegativeSampler(dataset, np.random.default_rng(0))
        negatives = sampler.sample_negatives(np.array([0, 1, 0]))
        assert negatives.shape == (3,)
        assert ((0 <= negatives) & (negatives < 3)).all()

    def test_duplicate_interactions_deduplicated(self):
        """Packed keys collapse repeat purchases; sampling still works."""
        from repro.data.dataset import Dataset, InteractionTable, ItemCatalog

        users = np.array([0, 0, 0, 1, 1, 1])
        items = np.array([0, 0, 1, 2, 2, 0])
        table = InteractionTable(users, items, np.arange(6, dtype=float))
        catalog = ItemCatalog(
            raw_prices=np.ones(4),
            categories=np.zeros(4, dtype=int),
            price_levels=np.zeros(4, dtype=int),
            n_categories=1,
            n_price_levels=1,
        )
        dataset = Dataset(
            name="dup", n_users=2, n_items=4, catalog=catalog,
            train=table, validation=table.select(np.array([], dtype=int)),
            test=table.select(np.array([], dtype=int)),
        )
        sampler = NegativeSampler(dataset, np.random.default_rng(0))
        assert len(sampler._pos_keys) == 4  # (0,0) (0,1) (1,0) (1,2)
        negatives = sampler.sample_negatives(np.array([0, 0, 1, 1]))
        assert set(negatives[:2]).issubset({2, 3})
        assert set(negatives[2:]).issubset({1, 3})
