"""Dataset registry: cache-key canonicalization regression tests."""

import numpy as np
import pytest

from repro.data import available_datasets, clear_cache, load_dataset
from repro.data import registry


def test_available_datasets_is_a_sorted_list_of_str():
    names = available_datasets()
    assert isinstance(names, list)
    assert all(isinstance(name, str) for name in names)
    assert names == sorted(names)
    assert {"yelp", "beibei", "amazon"} <= set(names)


def test_unknown_dataset_raises():
    with pytest.raises(KeyError, match="unknown dataset"):
        load_dataset("netflix")


def test_cache_key_hashes_list_and_array_kwargs():
    """Regression: list/array kwarg values used to make the key unhashable."""
    key = registry.cache_key("yelp", 0, 1.0, {"levels": [1, 2], "table": np.arange(3)})
    assert hash(key) is not None
    same = registry.cache_key("yelp", 0, 1.0, {"table": np.arange(3), "levels": [1, 2]})
    assert key == same  # kwarg order must not matter


def test_cache_key_distinguishes_values_and_container_types():
    base = registry.cache_key("yelp", 0, 1.0, {"levels": [1, 2]})
    assert base != registry.cache_key("yelp", 0, 1.0, {"levels": [1, 3]})
    assert base != registry.cache_key("yelp", 0, 1.0, {"levels": (1, 2)})
    assert base != registry.cache_key("yelp", 0, 1.0, {"levels": [[1], [2]]})
    arrays = registry.cache_key("yelp", 0, 1.0, {"t": np.array([1, 2])})
    assert arrays != registry.cache_key("yelp", 0, 1.0, {"t": np.array([1, 2], dtype=np.float64)})


def test_cache_key_distinguishes_int_and_str_dict_keys():
    int_keyed = registry.cache_key("yelp", 0, 1.0, {"table": {1: 0.5}})
    str_keyed = registry.cache_key("yelp", 0, 1.0, {"table": {"1": 0.5}})
    assert int_keyed != str_keyed


def test_cache_key_handles_nested_dicts_and_scalars():
    key = registry.cache_key(
        "yelp", 0, 1.0, {"cfg": {"b": np.int64(2), "a": [1.5, True]}}
    )
    same = registry.cache_key("yelp", 0, 1.0, {"cfg": {"a": [1.5, True], "b": 2}})
    assert key == same


def test_load_dataset_caches_calls_with_container_kwargs():
    """End to end: a builder taking a list kwarg is cached, not rebuilt."""
    calls = []

    def toy_builder(seed=0, scale=1.0, levels=None):
        calls.append((seed, scale, tuple(levels or ())))
        return ("dataset", tuple(levels or ())), ("truth",)

    registry._BUILDERS["_toy"] = toy_builder
    try:
        clear_cache()
        first = load_dataset("_toy", levels=[1, 2])
        second = load_dataset("_toy", levels=[1, 2])
        assert first is second
        assert len(calls) == 1
        load_dataset("_toy", levels=[1, 3])
        assert len(calls) == 2
    finally:
        del registry._BUILDERS["_toy"]
        clear_cache()


def test_load_dataset_cache_still_keys_on_seed_and_scale():
    clear_cache()
    a, _ = load_dataset("yelp", scale=0.2)
    b, _ = load_dataset("yelp", scale=0.2)
    c, _ = load_dataset("yelp", scale=0.2, seed=1)
    assert a is b
    assert a is not c
