"""Tests for CWTP entropy analysis and price-category heatmaps."""

import numpy as np
import pytest

from repro.analysis import (
    cwtp_entropy,
    cwtp_per_user,
    entropy_histogram,
    entropy_of_values,
    render_ascii,
    row_concentration,
    split_users_by_consistency,
    user_price_category_heatmap,
)
from repro.data import Dataset, InteractionTable, ItemCatalog, SyntheticConfig, generate


def make_dataset():
    """2 users; items span 2 categories x 3 price levels."""
    catalog = ItemCatalog(
        raw_prices=[1, 2, 3, 4, 5, 6],
        categories=[0, 0, 0, 1, 1, 1],
        price_levels=[0, 1, 2, 0, 1, 2],
        n_categories=2,
        n_price_levels=3,
    )
    # user 0: cat0 up to level 2, cat1 up to level 2 (same CWTP -> entropy 0)
    # user 1: cat0 level 0, cat1 level 2 (different CWTPs -> entropy ln 2)
    train = InteractionTable(
        [0, 0, 0, 1, 1],
        [1, 2, 5, 0, 5],
        np.arange(5, dtype=float),
    )
    empty = InteractionTable([], [], [])
    return Dataset("cwtp", 2, 6, catalog, train, empty, empty)


class TestCWTP:
    def test_per_user_max_levels(self):
        cwtp = cwtp_per_user(make_dataset())
        assert cwtp[0] == {0: 2, 1: 2}
        assert cwtp[1] == {0: 0, 1: 2}

    def test_entropy_consistent_user_zero(self):
        entropy = cwtp_entropy(make_dataset())
        assert entropy[0] == pytest.approx(0.0)

    def test_entropy_inconsistent_user(self):
        entropy = cwtp_entropy(make_dataset())
        assert entropy[1] == pytest.approx(np.log(2.0))

    def test_entropy_of_values_uniform(self):
        assert entropy_of_values(np.array([1, 2, 3])) == pytest.approx(np.log(3.0))

    def test_entropy_of_values_constant(self):
        assert entropy_of_values(np.array([5, 5, 5])) == 0.0

    def test_entropy_empty_rejected(self):
        with pytest.raises(ValueError):
            entropy_of_values(np.array([]))

    def test_entropy_bounded_by_log_categories(self):
        """Paper footnote: entropy in [0, log C_u]."""
        config = SyntheticConfig(n_users=80, n_items=120, n_categories=10, interactions_per_user=12, seed=9)
        ds, __ = generate(config)
        cwtp = cwtp_per_user(ds)
        entropies = cwtp_entropy(ds)
        for user, entropy in entropies.items():
            assert 0.0 <= entropy <= np.log(len(cwtp[user])) + 1e-12

    def test_histogram_density(self):
        config = SyntheticConfig(n_users=80, n_items=120, n_categories=10, interactions_per_user=12, seed=9)
        ds, __ = generate(config)
        edges, density = entropy_histogram(ds, bins=10)
        assert len(edges) == 11
        assert len(density) == 10
        widths = np.diff(edges)
        assert (density * widths).sum() == pytest.approx(1.0)

    def test_split_users_partition(self):
        consistent, inconsistent = split_users_by_consistency(make_dataset())
        assert set(consistent) | set(inconsistent) == {0, 1}
        assert not set(consistent) & set(inconsistent)
        assert 0 in consistent
        assert 1 in inconsistent


class TestHeatmap:
    def test_counts(self):
        heatmap = user_price_category_heatmap(make_dataset(), 0, normalize=False)
        assert heatmap.shape == (2, 3)
        assert heatmap[0, 1] == 1.0  # item 1 (cat0 level1)
        assert heatmap[0, 2] == 1.0  # item 2
        assert heatmap[1, 2] == 1.0  # item 5

    def test_normalized_max_is_one(self):
        heatmap = user_price_category_heatmap(make_dataset(), 0)
        assert heatmap.max() == 1.0

    def test_out_of_range_user(self):
        with pytest.raises(IndexError):
            user_price_category_heatmap(make_dataset(), 99)

    def test_row_concentration_single_peak(self):
        heatmap = np.array([[0.0, 3.0, 0.0], [2.0, 0.0, 0.0]])
        assert row_concentration(heatmap) == 1.0

    def test_row_concentration_spread(self):
        heatmap = np.array([[1.0, 1.0, 0.0]])
        assert row_concentration(heatmap) == pytest.approx(0.5)

    def test_row_concentration_empty_rejected(self):
        with pytest.raises(ValueError):
            row_concentration(np.zeros((2, 3)))

    def test_render_ascii(self):
        art = render_ascii(np.array([[0.0, 1.0], [0.5, 0.0]]))
        lines = art.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("|") and lines[0].endswith("|")

    def test_synthetic_heatmaps_concentrate(self):
        """The planted signal should produce Fig-2-style concentration."""
        config = SyntheticConfig(
            n_users=50, n_items=150, n_categories=6, n_price_levels=8,
            interactions_per_user=15, price_sensitivity=4.0, price_match_width=0.08, seed=13,
        )
        ds, __ = generate(config)
        concentrations = []
        for user in range(20):
            heatmap = user_price_category_heatmap(ds, user, normalize=False)
            if heatmap.sum() > 0:
                concentrations.append(row_concentration(heatmap))
        assert np.mean(concentrations) > 0.55
