"""Chaos runs: outcome classification, accounting audit, determinism."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.faults import FLUSHER_CRASH, SCORER_ERROR, FaultPlan, FaultSpec, chaos_plan
from repro.loadgen import (
    WorkloadConfig,
    build_workload,
    run_chaos,
    run_closed_loop,
    verify_accounting,
)
from repro.serving import (
    GatewayConfig,
    RecommenderService,
    ResilienceConfig,
    ServingGateway,
    export_index,
)


@pytest.fixture(scope="module")
def index():
    config = SyntheticConfig(
        n_users=40, n_items=60, n_categories=4, n_price_levels=4,
        interactions_per_user=7, seed=13,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(5))
    model.eval()
    return export_index(model, dataset)


@pytest.fixture(scope="module")
def workload(index):
    return build_workload(
        WorkloadConfig(n_requests=150, n_users=index.n_users), seed=11
    )


def make_gateway(index, plan, **service_kwargs):
    service_kwargs.setdefault("cache_capacity", 16)
    service = RecommenderService(
        index, default_k=8, fault_plan=plan, **service_kwargs
    )
    return ServingGateway(
        service,
        GatewayConfig(max_wait_ms=1.0, max_queue_depth=256),
        fault_plan=plan,
    )


class TestRunChaos:
    def test_books_balance_under_faults(self, index, workload):
        plan = FaultPlan(
            [
                FaultSpec(SCORER_ERROR, times=(2, 3, 9)),
                FaultSpec(FLUSHER_CRASH, times=(4,)),
            ]
        )
        gateway = make_gateway(
            index, plan, resilience=ResilienceConfig(retries=1, backoff_s=0.0)
        )
        try:
            report = run_chaos(gateway, workload, threads=4, result_timeout_s=20.0)
        finally:
            gateway.close()
        assert report.ok, report.violations
        load = report.load
        assert load.n_timeout == 0
        assert load.n_degraded >= 1  # the (2, 3) pair burns attempt + retry
        server_resolved = (
            report.accounting["ok"]
            + report.accounting["degraded"]
            + report.accounting["failed"]
        )
        assert server_resolved == report.accounting["admitted"] == len(workload)
        assert report.fault_fires[SCORER_ERROR]["fires"] == 3
        assert "load" in report.to_dict() and report.to_dict()["ok"] is True

    def test_fault_free_chaos_run_is_all_ok(self, index, workload):
        gateway = make_gateway(index, None, resilience=ResilienceConfig())
        try:
            report = run_chaos(gateway, workload, threads=4, result_timeout_s=20.0)
        finally:
            gateway.close()
        assert report.ok
        assert report.load.n_ok == len(workload)
        assert report.load.n_degraded == 0 and report.load.failed_total == 0
        assert report.fault_fires == {}

    def test_chaos_plan_drives_the_run_deterministically(self, index, workload):
        # Scorer points are consulted once per flush, so with one client
        # thread the schedule is reproducible.  Flusher points are left
        # out: the flusher consults the plan on every wakeup, and wakeups
        # per request vary with scheduler timing.
        def run_once():
            plan = chaos_plan(
                seed=5, worker_crashes=0, scorer_errors=2,
                ann_failures=0, flusher_crashes=0, scorer_delays=1,
                scorer_delay_s=0.001,
            )
            gateway = make_gateway(
                index, plan,
                resilience=ResilienceConfig(retries=1, backoff_s=0.0),
            )
            try:
                # single-threaded: consultation order (and thus the fault
                # schedule) is identical between runs
                report = run_chaos(gateway, workload, threads=1,
                                   result_timeout_s=20.0)
            finally:
                gateway.close()
            return report

        first, second = run_once(), run_once()
        assert first.ok and second.ok
        assert first.fault_fires == second.fault_fires
        assert first.load.n_ok == second.load.n_ok
        assert first.load.n_degraded == second.load.n_degraded
        assert first.load.n_failed == second.load.n_failed


class TestVerifyAccounting:
    def test_detects_cooked_books(self, index, workload):
        gateway = make_gateway(index, None)
        try:
            report = run_closed_loop(gateway, workload, threads=4,
                                     result_timeout_s=20.0)
            clean_accounting, clean_violations = verify_accounting(gateway, report)
            assert clean_violations == []
            assert clean_accounting["admitted"] == len(workload)
            # Cook the books: a phantom resolution with no admission.
            gateway.service.stats.record_outcome("ok")
            _, violations = verify_accounting(gateway, report)
            assert violations and "balance" in violations[0]
        finally:
            gateway.close()

    def test_runner_shed_tallies_must_match_counters(self, index, workload):
        gateway = make_gateway(index, None)
        try:
            report = run_closed_loop(gateway, workload, threads=4,
                                     result_timeout_s=20.0)
            report.n_shed["queue_full"] = 7  # client lies about sheds
            _, violations = verify_accounting(gateway, report)
            assert any("shed" in v for v in violations)
        finally:
            gateway.close()


class TestLoadReportFields:
    def test_to_dict_carries_outcome_fields(self, index, workload):
        gateway = make_gateway(index, None)
        try:
            report = run_closed_loop(gateway, workload, threads=2,
                                     result_timeout_s=20.0)
        finally:
            gateway.close()
        payload = report.to_dict()
        assert payload["n_degraded"] == 0
        assert payload["n_failed"] == {}
        assert payload["failed_total"] == 0
        assert payload["n_ok"] == len(workload)
