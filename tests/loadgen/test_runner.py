"""Load runners: reports add up, sheds are counted, depth stays bounded."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.loadgen import (
    ArrivalSchedule,
    WorkloadConfig,
    build_workload,
    run_closed_loop,
    run_open_loop,
)
from repro.serving import GatewayConfig, RecommenderService, ServingGateway, export_index


@pytest.fixture(scope="module")
def index():
    config = SyntheticConfig(
        n_users=40, n_items=60, n_categories=4, n_price_levels=4,
        interactions_per_user=7, seed=13,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(5))
    model.eval()
    return export_index(model, dataset)


def make_gateway(index, **config_kwargs):
    config_kwargs.setdefault("max_queue_depth", 256)
    config_kwargs.setdefault("max_wait_ms", 2.0)
    service = RecommenderService(index, default_k=8, max_batch_size=16, cache_capacity=0)
    return ServingGateway(service, GatewayConfig(**config_kwargs))


@pytest.fixture(scope="module")
def workload(index):
    config = WorkloadConfig(
        n_requests=200, n_users=index.n_users, zipf_s=1.1, cold_fraction=0.1,
        k_mix=((5, 0.5), (10, 0.5)),
    )
    return build_workload(config, seed=11)


class TestClosedLoop:
    def test_report_accounts_for_every_request(self, index, workload):
        with make_gateway(index) as gateway:
            report = run_closed_loop(gateway, workload, threads=4, result_timeout_s=10.0)
        assert report.mode == "closed"
        assert report.n_requests == len(workload)
        assert report.n_ok + report.shed_total + report.n_timeout == len(workload)
        assert report.n_ok == len(workload)  # ample queue: nothing shed
        assert report.qps > 0
        assert report.p99_ms >= report.p50_ms > 0
        assert report.client_p99_ms >= report.client_p50_ms > 0
        # client-side e2e can never beat the serving-side view
        assert report.client_p50_ms >= report.p50_ms * 0.5
        assert report.max_queue_depth <= 256
        d = report.to_dict()
        assert d["serving"]["requests"] == len(workload)

    def test_single_thread_equals_sequential(self, index, workload):
        with make_gateway(index) as gateway:
            report = run_closed_loop(gateway, workload[:50], threads=1, result_timeout_s=10.0)
        assert report.n_ok == 50


class TestOpenLoop:
    def test_paced_arrivals_all_complete(self, index, workload):
        with make_gateway(index) as gateway:
            schedule = ArrivalSchedule(mode="uniform", rate=5000.0)
            report = run_open_loop(gateway, workload, schedule, result_timeout_s=10.0)
        assert report.mode == "open"
        assert report.n_ok == len(workload)
        assert report.offered_qps >= report.qps

    def test_burst_overload_sheds_but_bounds_depth(self, index, workload):
        """The backpressure acceptance criterion: a burst far above
        capacity is shed, never buffered beyond max_queue_depth, and
        every shed shows up in the gateway's ledger."""
        depth = 16
        # size trigger (64) sits above the depth bound (16): the inline
        # flush cannot rescue the burst, so backpressure must do the work
        with make_gateway(
            index, max_queue_depth=depth, max_wait_ms=20.0, max_batch_size=64
        ) as gateway:
            schedule = ArrivalSchedule(mode="onoff", rate=200_000.0, on_s=0.05, off_s=0.01)
            report = run_open_loop(gateway, workload, schedule, result_timeout_s=10.0)
            assert report.max_queue_depth <= depth
            assert report.n_shed.get("queue_full", 0) > 0
            # the runner's ledger and the gateway's metrics agree exactly
            assert report.n_shed["queue_full"] == gateway.shed_count("queue_full")
        assert report.n_ok + report.shed_total + report.n_timeout == len(workload)

    def test_rate_limited_sheds_counted_separately(self, index, workload):
        with make_gateway(
            index, max_wait_ms=5.0, rate_limit=500.0, rate_burst=10.0
        ) as gateway:
            schedule = ArrivalSchedule(mode="uniform", rate=50_000.0)
            report = run_open_loop(gateway, workload, schedule, result_timeout_s=10.0)
        assert report.n_shed.get("rate_limited", 0) > 0
        assert report.n_ok + report.shed_total + report.n_timeout == len(workload)
