"""Workload synthesis: determinism, skew shape, cold mix, arrival math."""

import numpy as np
import pytest

from repro.loadgen import (
    ArrivalSchedule,
    WorkloadConfig,
    arrival_times,
    build_workload,
    zipf_users,
)
from repro.serving import PriceBandFilter


class TestZipfUsers:
    def test_skew_orders_users_by_rank(self):
        rng = np.random.default_rng(0)
        users = zipf_users(50_000, 100, s=1.1, rng=rng)
        counts = np.bincount(users, minlength=100)
        # rank 0 is the hottest; the head dominates, the tail is thin
        assert counts[0] == counts.max()
        assert counts[0] > 5 * counts[50]
        assert users.min() >= 0 and users.max() < 100

    def test_s_zero_is_uniform(self):
        rng = np.random.default_rng(1)
        users = zipf_users(100_000, 10, s=0.0, rng=rng)
        counts = np.bincount(users, minlength=10)
        assert counts.min() > 0.8 * counts.max()


class TestBuildWorkload:
    def test_same_seed_same_workload(self):
        config = WorkloadConfig(
            n_requests=500, n_users=50, cold_fraction=0.2,
            k_mix=((5, 0.5), (20, 0.5)),
        )
        a = build_workload(config, seed=3)
        b = build_workload(config, seed=3)
        assert [(r.user, r.k, r.cold) for r in a] == [(r.user, r.k, r.cold) for r in b]
        c = build_workload(config, seed=4)
        assert [r.user for r in a] != [r.user for r in c]

    def test_cold_users_live_outside_warm_id_space(self):
        config = WorkloadConfig(n_requests=2000, n_users=50, cold_fraction=0.25)
        workload = build_workload(config, seed=0)
        cold = [r for r in workload if r.cold]
        warm = [r for r in workload if not r.cold]
        assert 0.15 < len(cold) / len(workload) < 0.35
        assert all(r.user >= 50 for r in cold)
        assert all(0 <= r.user < 50 for r in warm)

    def test_k_and_filter_mix_sampled_per_request(self):
        band = (PriceBandFilter(0, 1),)
        config = WorkloadConfig(
            n_requests=1000, n_users=20,
            k_mix=((5, 0.5), (10, 0.5)),
            filter_mix=(((), 0.7), (band, 0.3)),
        )
        workload = build_workload(config, seed=9)
        ks = {r.k for r in workload}
        assert ks == {5, 10}
        filtered = sum(1 for r in workload if r.filters)
        assert 200 < filtered < 400

    def test_cold_price_profile_attached_to_cold_only(self):
        profile = np.array([1.0, 0.0, 0.0])
        config = WorkloadConfig(
            n_requests=300, n_users=10, cold_fraction=0.3, cold_price_profile=profile
        )
        for request in build_workload(config, seed=2):
            if request.cold:
                assert request.price_profile is profile
            else:
                assert request.price_profile is None

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_requests=0)
        with pytest.raises(ValueError):
            WorkloadConfig(cold_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(k_mix=())
        with pytest.raises(ValueError):
            WorkloadConfig(zipf_s=-0.1)


class TestArrivalSchedules:
    def test_uniform_rate_spacing(self):
        times = arrival_times(ArrivalSchedule(mode="uniform", rate=100.0), 11)
        np.testing.assert_allclose(np.diff(times), 0.01)
        assert times[0] == 0.0

    def test_onoff_bursts_leave_silent_gaps(self):
        schedule = ArrivalSchedule(mode="onoff", rate=1000.0, on_s=0.01, off_s=0.09)
        times = arrival_times(schedule, 50)
        gaps = np.diff(times)
        # inside a burst: 1ms spacing; across the off window: ~90ms jump
        assert gaps.min() < 0.002
        assert gaps.max() > 0.05
        # arrivals only land in on windows (float modulo can wrap a cycle
        # boundary to just under the full period — both edges are "start")
        phase = times % 0.1
        assert ((phase <= 0.01 + 1e-6) | (phase >= 0.1 - 1e-6)).all()

    def test_sine_rate_oscillates(self):
        schedule = ArrivalSchedule(mode="sine", rate=100.0, period_s=1.0, amplitude=0.5)
        assert schedule.rate_at(0.25) == pytest.approx(150.0)
        assert schedule.rate_at(0.75) == pytest.approx(50.0)
        times = arrival_times(schedule, 200)
        assert (np.diff(times) > 0).all()

    def test_deterministic(self):
        schedule = ArrivalSchedule(mode="onoff", rate=500.0, on_s=0.02, off_s=0.03)
        np.testing.assert_array_equal(
            arrival_times(schedule, 40), arrival_times(schedule, 40)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalSchedule(mode="poisson")
        with pytest.raises(ValueError):
            ArrivalSchedule(rate=0.0)
        with pytest.raises(ValueError):
            ArrivalSchedule(mode="sine", amplitude=1.0)
        with pytest.raises(ValueError):
            ArrivalSchedule(mode="onoff", on_s=0.0)
