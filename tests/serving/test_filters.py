"""Filter composition and signatures."""

import numpy as np
import pytest

from repro.baselines import BPRMF
from repro.data import SyntheticConfig, generate
from repro.serving import (
    AllOf,
    AllowListFilter,
    CategoryFilter,
    DenyListFilter,
    PriceBandFilter,
    combine_mask,
    combine_signature,
    export_index,
)


@pytest.fixture(scope="module")
def index():
    config = SyntheticConfig(
        n_users=20, n_items=30, n_categories=3, n_price_levels=4,
        interactions_per_user=5, seed=77,
    )
    dataset = generate(config)[0]
    model = BPRMF(dataset, dim=4, rng=np.random.default_rng(0))
    return export_index(model, dataset)


class TestIndividualFilters:
    def test_price_band(self, index):
        mask = PriceBandFilter(1, 2).mask(index)
        levels = index.item_price_levels
        np.testing.assert_array_equal(mask, (levels >= 1) & (levels <= 2))

    def test_price_band_open_ends(self, index):
        np.testing.assert_array_equal(
            PriceBandFilter(max_level=1).mask(index), index.item_price_levels <= 1
        )
        np.testing.assert_array_equal(
            PriceBandFilter(min_level=2).mask(index), index.item_price_levels >= 2
        )
        with pytest.raises(ValueError):
            PriceBandFilter()

    def test_price_band_raw_prices(self, index):
        threshold = float(np.median(index.item_raw_prices))
        mask = PriceBandFilter(max_level=threshold, use_raw_prices=True).mask(index)
        np.testing.assert_array_equal(mask, index.item_raw_prices <= threshold)

    def test_category(self, index):
        mask = CategoryFilter([0, 2]).mask(index)
        np.testing.assert_array_equal(mask, np.isin(index.item_categories, [0, 2]))

    def test_allow_and_deny(self, index):
        allow = AllowListFilter([3, 5, 7]).mask(index)
        assert allow.sum() == 3 and allow[[3, 5, 7]].all()
        deny = DenyListFilter([3, 5]).mask(index)
        assert not deny[[3, 5]].any() and deny.sum() == index.n_items - 2


class TestComposition:
    def test_and_operator_intersects(self, index):
        combined = PriceBandFilter(0, 2) & CategoryFilter([1])
        assert isinstance(combined, AllOf)
        expected = PriceBandFilter(0, 2).mask(index) & CategoryFilter([1]).mask(index)
        np.testing.assert_array_equal(combined.mask(index), expected)

    def test_combine_mask_empty_is_none(self, index):
        assert combine_mask([], index) is None

    def test_signature_stable_under_reconstruction(self):
        a = [PriceBandFilter(0, 2), CategoryFilter([2, 1])]
        b = [PriceBandFilter(0, 2), CategoryFilter([1, 2])]
        assert combine_signature(a) == combine_signature(b)

    def test_signature_distinguishes_different_filters(self):
        assert combine_signature([PriceBandFilter(0, 2)]) != combine_signature(
            [PriceBandFilter(0, 3)]
        )
        assert combine_signature([AllowListFilter([1])]) != combine_signature(
            [DenyListFilter([1])]
        )

    def test_nested_all_of_flattens(self, index):
        nested = AllOf([AllOf([PriceBandFilter(0, 1)]), CategoryFilter([0])])
        assert all(not isinstance(f, AllOf) for f in nested.filters)
