"""Retrieval engine: parity with the offline evaluator, blocked == full."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.serving import (
    CategoryFilter,
    DenyListFilter,
    PriceBandFilter,
    RetrievalEngine,
    export_index,
)
from repro.eval import topk_rankings


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=50, n_items=90, n_categories=4, n_price_levels=4,
        interactions_per_user=8, seed=31,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=12, category_dim=6, rng=np.random.default_rng(2))
    model.eval()
    index = export_index(model, dataset)
    return dataset, model, index


class TestEvalParity:
    def test_topk_matches_offline_evaluator_bit_identically(self, setup):
        """Acceptance criterion: serving ids == eval ids for warm users."""
        dataset, model, index = setup
        users = list(range(dataset.n_users))
        engine = RetrievalEngine(index)
        expected = topk_rankings(model, dataset, users, k=10)
        results = engine.topk(users, k=10, exclude_train=True, drop_masked=False)
        for user, result in zip(users, results):
            np.testing.assert_array_equal(result.items, expected[user])

    def test_topk_without_exclusion_matches_evaluator(self, setup):
        dataset, model, index = setup
        users = [0, 3, 17]
        engine = RetrievalEngine(index)
        expected = topk_rankings(model, dataset, users, k=5, exclude_train=False)
        results = engine.topk(users, k=5, exclude_train=False)
        for user, result in zip(users, results):
            np.testing.assert_array_equal(result.items, expected[user])

    def test_scores_returned_are_model_scores(self, setup):
        dataset, model, index = setup
        engine = RetrievalEngine(index)
        [result] = engine.topk([4], k=5, exclude_train=False)
        full = model.predict_scores(np.array([4]))[0]
        np.testing.assert_array_equal(result.scores, full[result.items])


class TestBlockedPath:
    @pytest.mark.parametrize("block", [7, 32, 64])
    def test_blocked_equals_single_block(self, setup, block):
        dataset, _, index = setup
        users = list(range(0, dataset.n_users, 3))
        reference = RetrievalEngine(index, item_block_size=dataset.n_items)
        blocked = RetrievalEngine(index, item_block_size=block)
        expected = reference.topk(users, k=12)
        got = blocked.topk(users, k=12)
        for ours, theirs in zip(expected, got):
            np.testing.assert_array_equal(ours.items, theirs.items)
            np.testing.assert_array_equal(ours.scores, theirs.scores)

    def test_degenerate_block_size_one(self, setup):
        # BLAS takes a different kernel for (B, d) @ (d, 1) than for a full
        # gemm, so scores may drift by one ULP; rankings must still agree up
        # to that tolerance.
        dataset, _, index = setup
        users = list(range(0, dataset.n_users, 3))
        reference = RetrievalEngine(index, item_block_size=dataset.n_items)
        blocked = RetrievalEngine(index, item_block_size=1)
        expected = reference.topk(users, k=12)
        got = blocked.topk(users, k=12)
        for ours, theirs in zip(expected, got):
            np.testing.assert_array_equal(ours.items, theirs.items)
            np.testing.assert_allclose(ours.scores, theirs.scores, rtol=1e-12)

    @pytest.mark.parametrize("block", [9, 40])
    def test_blocked_with_filters_and_exclusion(self, setup, block):
        dataset, _, index = setup
        users = list(range(0, dataset.n_users, 5))
        filters = [PriceBandFilter(1, 3), CategoryFilter([0, 1, 2])]
        reference = RetrievalEngine(index, item_block_size=dataset.n_items)
        blocked = RetrievalEngine(index, item_block_size=block)
        expected = reference.topk(users, k=8, filters=filters)
        got = blocked.topk(users, k=8, filters=filters)
        for ours, theirs in zip(expected, got):
            np.testing.assert_array_equal(ours.items, theirs.items)


class TestMasksAndFilters:
    def test_exclusion_removes_train_items(self, setup):
        dataset, _, index = setup
        engine = RetrievalEngine(index)
        train_pos = dataset.train_positive_sets()
        users = [u for u in range(dataset.n_users) if train_pos.get(u)][:10]
        for user, result in zip(users, engine.topk(users, k=20)):
            assert not set(result.items.tolist()) & train_pos[user]

    def test_price_band_filter_restricts_levels(self, setup):
        dataset, _, index = setup
        engine = RetrievalEngine(index)
        [result] = engine.topk([2], k=10, filters=[PriceBandFilter(0, 1)])
        assert len(result.items) > 0
        assert (dataset.item_price_levels[result.items] <= 1).all()

    def test_deny_list_filter(self, setup):
        dataset, _, index = setup
        engine = RetrievalEngine(index)
        [unfiltered] = engine.topk([6], k=5)
        deny = unfiltered.items[:2].tolist()
        [result] = engine.topk([6], k=5, filters=[DenyListFilter(deny)])
        assert not set(deny) & set(result.items.tolist())

    def test_drop_masked_never_returns_excluded(self, setup):
        dataset, _, index = setup
        engine = RetrievalEngine(index)
        # k larger than the allowed pool: result shrinks instead of leaking.
        allowed = np.flatnonzero(dataset.item_price_levels == 0)
        [result] = engine.topk([1], k=dataset.n_items, filters=[PriceBandFilter(0, 0)])
        assert set(result.items.tolist()) <= set(allowed.tolist())

    def test_mask_cache_reused(self, setup):
        _, _, index = setup
        engine = RetrievalEngine(index)
        filters = [PriceBandFilter(0, 2)]
        first = engine.candidate_mask(filters)
        second = engine.candidate_mask([PriceBandFilter(0, 2)])
        assert first is second
        engine.invalidate_masks()
        assert engine.candidate_mask(filters) is not first

    def test_mask_cache_is_bounded(self, setup):
        _, _, index = setup
        engine = RetrievalEngine(index, mask_cache_capacity=3)
        for low in range(10):
            engine.candidate_mask([PriceBandFilter(0, low)])
        assert len(engine._mask_cache) == 3

    def test_out_of_range_user_rejected(self, setup):
        _, _, index = setup
        engine = RetrievalEngine(index)
        with pytest.raises(ValueError, match="cold-start"):
            engine.topk([index.n_users], k=5)
