"""Price-band filter correctness across lifecycle hot swaps.

The flash-sale scenario: items are re-priced across band boundaries, the
lifecycle publishes and promotes a new version, and the running service
is hot-swapped mid-stream.  Every response must be filtered by the price
levels of the index version that *served* it — an item that left a band
may never linger in that band's results (stale filter mask or stale LRU
entry), and one that entered must appear.  Never a mix of versions.
"""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.lifecycle import (
    Event,
    GateConfig,
    LifecycleConfig,
    LifecycleController,
)
from repro.lifecycle.foldin import requantize_price
from repro.serving import build_ivf, export_index
from repro.serving.filters import PriceBandFilter
from repro.serving.service import RecommenderService


@pytest.fixture(scope="module")
def base_index():
    dataset = generate(SyntheticConfig(n_users=70, n_items=260, n_categories=4, seed=3))[0]
    model = pup_full(dataset, global_dim=12, category_dim=6, rng=np.random.default_rng(0))
    model.eval()
    return export_index(model, dataset)


@pytest.fixture()
def controller(tmp_path, base_index):
    config = LifecycleConfig(
        gates=GateConfig(nprobe=7, recall_users=32, parity_users=8),
        segment_records=64,
    )
    ctl = LifecycleController(str(tmp_path / "store"), config=config)
    ctl.bootstrap(base_index, build_ivf(base_index, nprobe=7, seed=0))
    return ctl


def band_items(index, level):
    return set(np.flatnonzero(index.item_price_levels == level).tolist())


def band_results(service, level, k, users=(0, 5, 11, 23)):
    """Union of filtered results for a few users; asserts per-response purity."""
    seen = set()
    for user in users:
        rec = service.recommend(
            user, k=k, exclude_train=False,
            filters=[PriceBandFilter(level, level)],
        )
        levels = {int(service.index.item_price_levels[i]) for i in rec.items}
        assert levels <= {level}, (
            f"user {user} band-{level} response mixes levels {levels}"
        )
        seen.update(int(i) for i in rec.items)
    return seen


def test_flash_sale_across_consecutive_hot_swaps(controller, base_index):
    store = controller.store
    index, ann = store.load_version(store.current())
    service = RecommenderService(index, default_k=10, ann=ann, cache_capacity=64)

    levels = sorted(int(v) for v in np.unique(index.item_price_levels))
    lo, hi = levels[0], levels[-1]
    cheapest_price = float(index.item_raw_prices.min())
    dearest_price = float(index.item_raw_prices.max())

    # Three consecutive sale waves; each re-prices one top-band item to the
    # catalog floor and one bottom-band item to the ceiling, then promotes.
    seq = 0
    crossed_down, crossed_up = [], []
    for wave in range(3):
        serving = service.index
        sale = sorted(band_items(serving, hi) - set(crossed_up))[wave]
        markup = sorted(band_items(serving, lo) - set(crossed_down))[wave]
        assert requantize_price(
            cheapest_price, serving.item_raw_prices, serving.item_price_levels
        ) == lo
        assert requantize_price(
            dearest_price, serving.item_raw_prices, serving.item_price_levels
        ) == hi

        # Pre-swap: both items are served from their current bands.
        k_hi = len(band_items(serving, hi))
        k_lo = len(band_items(serving, lo))
        assert sale in band_results(service, hi, k_hi)
        assert markup in band_results(service, lo, k_lo)

        events = [
            Event(seq=seq, kind="reprice", item=sale, price=cheapest_price),
            Event(seq=seq + 1, kind="reprice", item=markup, price=dearest_price),
            Event(seq=seq + 2, kind="interaction", user=3 + wave, item=sale),
        ]
        seq += len(events)
        controller.ingest(events)
        candidate = controller.build()
        promoted, report = controller.promote(candidate, service=service)
        assert promoted == candidate, f"wave {wave} rejected: {report.failures}"

        # Post-swap: the same queries (same users, same filter signature —
        # a stale LRU entry would satisfy them) must answer from the new
        # version's bands.
        now = service.index
        assert int(now.item_price_levels[sale]) == lo
        assert int(now.item_price_levels[markup]) == hi
        hi_items = band_results(service, hi, len(band_items(now, hi)))
        lo_items = band_results(service, lo, len(band_items(now, lo)))
        assert sale not in hi_items and sale in lo_items
        assert markup not in lo_items and markup in hi_items
        crossed_down.append(sale)
        crossed_up.append(markup)

    # Three versions promoted on top of the bootstrap, all swaps observed.
    assert store.current() == "v000004"
    assert len(crossed_down) == len(crossed_up) == 3


def test_rollback_restores_previous_bands(controller, base_index):
    store = controller.store
    index, ann = store.load_version(store.current())
    service = RecommenderService(index, default_k=10, ann=ann, cache_capacity=64)
    levels = sorted(int(v) for v in np.unique(index.item_price_levels))
    lo, hi = levels[0], levels[-1]
    sale = sorted(band_items(index, hi))[0]

    controller.ingest([
        Event(seq=0, kind="reprice", item=sale,
              price=float(index.item_raw_prices.min())),
    ])
    controller.build()
    promoted, _ = controller.promote(service=service)
    assert promoted is not None
    assert int(service.index.item_price_levels[sale]) == lo

    # Roll the sale back: the service must again serve the item at `hi`.
    controller.rollback("sale ended", service=service)
    assert int(service.index.item_price_levels[sale]) == hi
    assert sale in band_results(service, hi, len(band_items(service.index, hi)))
    assert sale not in band_results(service, lo, len(band_items(service.index, lo)))
