"""RecommenderService: routing, micro-batching, caching, stats."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.eval import topk_rankings
from repro.serving import (
    COLD,
    WARM,
    PriceBandFilter,
    RecommenderService,
    export_index,
)


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=40, n_items=60, n_categories=4, n_price_levels=4,
        interactions_per_user=7, seed=13,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(5))
    model.eval()
    index = export_index(model, dataset)
    return dataset, model, index


def make_service(index, **kwargs):
    return RecommenderService(index, **kwargs)


class TestWarmPath:
    def test_warm_user_matches_offline_evaluator(self, setup):
        """Acceptance criterion: service ids == eval ids, bit-identical."""
        dataset, model, index = setup
        service = make_service(index, default_k=10)
        expected = topk_rankings(model, dataset, list(range(dataset.n_users)), k=10)
        for user in range(dataset.n_users):
            rec = service.recommend(user)
            assert rec.source == WARM
            np.testing.assert_array_equal(rec.items, expected[user])

    def test_batched_flush_matches_individual_answers(self, setup):
        dataset, _, index = setup
        users = list(range(0, dataset.n_users, 2))
        batched = make_service(index, default_k=8, cache_capacity=0)
        single = make_service(index, default_k=8, cache_capacity=0)
        batch_answers = batched.recommend_many(users)
        for user, answer in zip(users, batch_answers):
            np.testing.assert_array_equal(answer.items, single.recommend(user).items)

    def test_filters_apply(self, setup):
        dataset, _, index = setup
        service = make_service(index)
        rec = service.recommend(1, k=5, filters=[PriceBandFilter(0, 1)])
        assert len(rec.items) > 0
        assert (dataset.item_price_levels[rec.items] <= 1).all()


class TestColdPath:
    def test_unseen_user_gets_nonempty_fallback(self, setup):
        """Acceptance criterion: cold users get non-empty recommendations."""
        _, _, index = setup
        service = make_service(index, default_k=10)
        rec = service.recommend(index.n_users + 1234)
        assert rec.source == COLD
        assert len(rec.items) == 10
        assert len(set(rec.items.tolist())) == 10

    def test_price_profile_steers_fallback(self, setup):
        dataset, _, index = setup
        service = make_service(index, default_k=5)
        cheap = np.zeros(dataset.n_price_levels)
        cheap[0] = 1.0
        rec = service.recommend(10**9, price_profile=cheap)
        # Every recommended item sits in the only level with probability mass.
        assert (dataset.item_price_levels[rec.items] == 0).all()

    def test_cold_with_filters(self, setup):
        dataset, _, index = setup
        service = make_service(index, default_k=5)
        rec = service.recommend(10**9, filters=[PriceBandFilter(2, 3)])
        assert rec.source == COLD
        assert len(rec.items) > 0
        assert (dataset.item_price_levels[rec.items] >= 2).all()

    def test_warm_user_profile_is_dropped_and_cache_deduped(self, setup):
        dataset, _, index = setup
        service = make_service(index)
        plain = service.recommend(8, k=5)
        profile = np.ones(dataset.n_price_levels)
        steered = service.recommend(8, k=5, price_profile=profile)
        # Warm users are answered by the full model; the profile is ignored
        # and the request shares the unprofiled cache entry.
        assert steered.cached
        np.testing.assert_array_equal(steered.items, plain.items)

    def test_invalid_profile_rejected(self, setup):
        dataset, _, index = setup
        service = make_service(index)
        with pytest.raises(ValueError, match="shape"):
            service.recommend(10**9, price_profile=np.ones(dataset.n_price_levels + 1))


class TestMicroBatching:
    def test_submit_defers_until_flush(self, setup):
        _, _, index = setup
        service = make_service(index, max_batch_size=100)
        pending = [service.submit(user) for user in range(5)]
        assert service.queue_depth == 5
        assert not any(p.done for p in pending)
        resolved = service.flush()
        assert resolved == 5
        assert all(p.done for p in pending)
        assert service.queue_depth == 0

    def test_queue_auto_flushes_at_capacity(self, setup):
        _, _, index = setup
        service = make_service(index, max_batch_size=3, cache_capacity=0)
        pending = [service.submit(user) for user in range(3)]
        assert all(p.done for p in pending)
        assert service.queue_depth == 0

    def test_result_forces_flush(self, setup):
        _, _, index = setup
        service = make_service(index, max_batch_size=100)
        pending = service.submit(2)
        assert not pending.done
        rec = pending.result()
        assert pending.done and len(rec.items) > 0

    def test_mixed_batch_routes_each_request(self, setup):
        _, _, index = setup
        service = make_service(index, max_batch_size=100)
        warm = service.submit(0)
        cold = service.submit(index.n_users + 7)
        service.flush()
        assert warm.result().source == WARM
        assert cold.result().source == COLD

    def test_one_matmul_batch_for_identical_params(self, setup):
        _, _, index = setup
        service = make_service(index, max_batch_size=100, cache_capacity=0)
        for user in range(6):
            service.submit(user, k=4)
        service.flush()
        assert service.stats.batches == 1

    def test_cold_requests_share_one_scoring_pass(self, setup):
        _, _, index = setup
        service = make_service(index, max_batch_size=100, cache_capacity=0)
        for offset in range(5):
            service.submit(index.n_users + offset, k=4)
        service.flush()
        assert service.stats.batches == 1
        assert service.stats.cold_requests == 5

    def test_invalid_request_fails_at_submit_not_at_flush(self, setup):
        dataset, _, index = setup
        service = make_service(index, max_batch_size=100)
        good = service.submit(0)
        with pytest.raises(ValueError, match="shape"):
            service.submit(10**9, price_profile=np.ones(dataset.n_price_levels + 1))
        # The well-formed request is unaffected by the rejected one.
        assert len(good.result().items) > 0

    def test_group_failure_does_not_orphan_other_groups(self, setup, monkeypatch):
        _, _, index = setup
        service = make_service(index, max_batch_size=100, cache_capacity=0)
        poisoned = service.submit(0, k=3)
        healthy = service.submit(1, k=4)  # different k -> different batch group

        real_topk = service.engine.topk

        def exploding_topk(users, k, **kwargs):
            if k == 3:
                raise RuntimeError("index shard offline")
            return real_topk(users, k=k, **kwargs)

        monkeypatch.setattr(service.engine, "topk", exploding_topk)
        service.flush()
        assert len(healthy.result().items) == 4
        with pytest.raises(RuntimeError, match="shard offline"):
            poisoned.result()


class TestCache:
    def test_second_lookup_hits_cache(self, setup):
        _, _, index = setup
        service = make_service(index)
        first = service.recommend(3)
        again = service.recommend(3)
        assert not first.cached and again.cached
        np.testing.assert_array_equal(first.items, again.items)
        assert service.stats.cache_hits == 1

    def test_different_k_misses(self, setup):
        _, _, index = setup
        service = make_service(index)
        service.recommend(3, k=5)
        assert not service.recommend(3, k=6).cached

    def test_filters_partition_the_cache(self, setup):
        _, _, index = setup
        service = make_service(index)
        plain = service.recommend(3, k=5)
        banded = service.recommend(3, k=5, filters=[PriceBandFilter(0, 1)])
        assert not banded.cached
        hit = service.recommend(3, k=5, filters=[PriceBandFilter(0, 1)])
        assert hit.cached
        np.testing.assert_array_equal(hit.items, banded.items)
        assert plain.items.shape != banded.items.shape or (plain.items != banded.items).any()

    def test_invalidate_user(self, setup):
        _, _, index = setup
        service = make_service(index)
        service.recommend(4)
        service.recommend(5)
        evicted = service.invalidate(user=4)
        assert evicted == 1
        assert service.recommend(5).cached  # untouched user stays cached
        assert not service.recommend(4).cached

    def test_invalidate_all(self, setup):
        _, _, index = setup
        service = make_service(index)
        service.recommend(1)
        service.recommend(2)
        assert service.invalidate() == 2
        assert service.cache_size == 0
        assert not service.recommend(1).cached

    def test_lru_eviction(self, setup):
        _, _, index = setup
        service = make_service(index, cache_capacity=2)
        service.recommend(1)
        service.recommend(2)
        service.recommend(3)  # evicts user 1
        assert service.cache_size == 2
        assert not service.recommend(1).cached

    def test_caller_mutation_cannot_corrupt_cache(self, setup):
        _, _, index = setup
        service = make_service(index)
        first = service.recommend(9)
        expected = first.items.copy()
        first.items[:] = -1  # caller post-processes in place
        again = service.recommend(9)
        assert again.cached
        np.testing.assert_array_equal(again.items, expected)
        again.items[:] = -2  # mutating a hit must not poison later hits
        np.testing.assert_array_equal(service.recommend(9).items, expected)

    def test_cache_disabled(self, setup):
        _, _, index = setup
        service = make_service(index, cache_capacity=0)
        service.recommend(1)
        assert not service.recommend(1).cached
        assert service.cache_size == 0


class TestStats:
    def test_counters_track_requests(self, setup):
        _, _, index = setup
        service = make_service(index)
        service.recommend(0)
        service.recommend(0)  # cache hit
        service.recommend(index.n_users + 1)
        snap = service.stats.snapshot()
        assert snap["requests"] == 3
        assert snap["warm_requests"] == 2
        assert snap["cold_requests"] == 1
        assert snap["cache_hits"] == 1
        assert snap["qps"] > 0

    def test_latency_percentiles_with_fake_clock(self, setup):
        _, _, index = setup
        ticks = iter(np.arange(0, 1000, 0.5))
        service = make_service(index, clock=lambda: float(next(ticks)))
        service.recommend(0)
        snap = service.stats.snapshot()
        assert snap["latency_p50_ms"] > 0
        assert snap["latency_p99_ms"] >= snap["latency_p50_ms"]
