"""Satellite: cache correctness when a rebuilt index is hot-swapped in.

The failure mode being pinned: a service LRU holds top-K answers computed
from index A; index B (retrained / re-quantized) is swapped in; a request
that hits the stale cache would serve index-A items as if they were
index-B results.  ``swap_index`` must make that impossible.
"""

import numpy as np
import pytest

from repro.core import pup_full
from repro.core.base import ScoreBranch
from repro.data import SyntheticConfig, generate
from repro.serving import (
    PriceBandFilter,
    RecommenderService,
    build_ivf,
    export_index,
)
from repro.serving.index import EmbeddingIndex


@pytest.fixture()
def dataset():
    config = SyntheticConfig(
        n_users=50, n_items=130, n_categories=4, n_price_levels=4,
        interactions_per_user=7, seed=29,
    )
    return generate(config)[0]


@pytest.fixture()
def index(dataset):
    model = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(2))
    model.eval()
    return export_index(model, dataset)


def rebuilt_index(index: EmbeddingIndex) -> EmbeddingIndex:
    """A plausible "retrained" index over the same catalog: negated factors
    (rankings invert, so any stale answer is detectably wrong)."""
    branches = [
        ScoreBranch(
            user=-branch.user,
            item=branch.item.copy(),
            item_const=None if branch.item_const is None else branch.item_const.copy(),
            user_const=None if branch.user_const is None else branch.user_const.copy(),
            weight=branch.weight,
        )
        for branch in index.branches
    ]
    return EmbeddingIndex(
        branches,
        item_categories=index.item_categories,
        item_price_levels=index.item_price_levels,
        n_price_levels=index.n_price_levels,
        n_categories=index.n_categories,
        exclude_indptr=index.exclude_indptr,
        exclude_indices=index.exclude_indices,
        item_popularity=index.item_popularity,
        model_name="rebuilt",
    )


def warm_user(index):
    return next(u for u in range(index.n_users) if index.is_warm(u))


class TestSwapInvalidatesResultCache:
    def test_no_stale_topk_after_swap(self, index):
        service = RecommenderService(index, default_k=10)
        user = warm_user(index)
        before = service.recommend(user)
        assert service.recommend(user).cached  # primed

        new_index = rebuilt_index(index)
        evicted = service.swap_index(new_index)
        assert evicted >= 1
        assert service.cache_size == 0

        after = service.recommend(user)
        assert not after.cached
        # the swapped factors invert rankings; identical lists would mean
        # the old index answered
        assert not np.array_equal(after.items, before.items)
        # and the answer must match a fresh service over the new index
        fresh = RecommenderService(new_index, default_k=10).recommend(user)
        np.testing.assert_array_equal(after.items, fresh.items)
        np.testing.assert_array_equal(after.scores, fresh.scores)

    def test_swap_flushes_inflight_queue_against_old_index(self, index):
        service = RecommenderService(index, default_k=8, max_batch_size=64)
        user = warm_user(index)
        pending = service.submit(user)
        expected = RecommenderService(index, default_k=8).recommend(user)
        service.swap_index(rebuilt_index(index))
        # the queued request was answered by the index it was submitted to
        np.testing.assert_array_equal(pending.result().items, expected.items)

    def test_filter_mask_cache_rebuilt_for_new_catalog(self, index, dataset):
        service = RecommenderService(index, default_k=6)
        user = warm_user(index)
        band = PriceBandFilter(0, 1)
        service.recommend(user, filters=[band])  # primes the engine mask cache
        old_engine = service.engine
        service.swap_index(rebuilt_index(index))
        assert service.engine is not old_engine  # masks cannot leak across
        result = service.recommend(user, filters=[band])
        levels = index.item_price_levels[result.items]
        assert np.all(levels <= 1)

    def test_swap_installs_and_removes_ann(self, index):
        service = RecommenderService(index, default_k=10, cache_capacity=8)
        user = warm_user(index)
        service.recommend(user)
        new_index = rebuilt_index(index)
        ann = build_ivf(new_index, n_lists=6, nprobe=6, seed=0)
        service.swap_index(new_index, ann=ann)
        assert service.ann is ann
        swapped = service.recommend(user)
        exact = RecommenderService(new_index, default_k=10).recommend(user)
        np.testing.assert_array_equal(swapped.items, exact.items)  # full probe
        service.swap_index(index)
        assert service.ann is None

    def test_per_user_invalidate_untouched_by_design(self, index):
        """invalidate(user) remains the surgical API; swap_index is the
        whole-index one — both leave no stale entry for their scope."""
        service = RecommenderService(index, default_k=5)
        warm = [u for u in range(index.n_users) if index.is_warm(u)][:2]
        for u in warm:
            service.recommend(u)
        assert service.invalidate(warm[0]) == 1
        assert service.recommend(warm[1]).cached
