"""Index artifact: save → load → identical scores, and format safety."""

import numpy as np
import pytest

from repro.baselines import BPRMF, FM
from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.serving import EmbeddingIndex, export_index
from repro.train import read_archive_metadata, save_checkpoint


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(
        n_users=30, n_items=40, n_categories=3, n_price_levels=4,
        interactions_per_user=6, seed=23,
    )
    return generate(config)[0]


def build_index(dataset, factory, seed=0):
    model = factory(dataset, np.random.default_rng(seed))
    model.eval()
    return export_index(model, dataset)


FACTORIES = {
    "pup": lambda ds, rng: pup_full(ds, global_dim=10, category_dim=4, rng=rng),
    "bpr_mf": lambda ds, rng: BPRMF(ds, dim=8, rng=rng),
    "fm": lambda ds, rng: FM(ds, dim=8, rng=rng),
}


class TestRoundtrip:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_save_load_identical_scores(self, dataset, tmp_path, name):
        index = build_index(dataset, FACTORIES[name])
        path = index.save(str(tmp_path / name))
        assert path.endswith(".npz")
        loaded = EmbeddingIndex.load(path)

        users = np.arange(dataset.n_users)
        np.testing.assert_array_equal(loaded.score(users), index.score(users))
        assert loaded.model_name == index.model_name
        assert loaded.n_users == index.n_users and loaded.n_items == index.n_items
        np.testing.assert_array_equal(loaded.exclude_indptr, index.exclude_indptr)
        np.testing.assert_array_equal(loaded.exclude_indices, index.exclude_indices)
        np.testing.assert_array_equal(loaded.item_raw_prices, index.item_raw_prices)

    def test_roundtrip_preserves_branch_structure(self, dataset, tmp_path):
        index = build_index(dataset, FACTORIES["pup"])
        loaded = EmbeddingIndex.load(index.save(str(tmp_path / "pup2")))
        assert len(loaded.branches) == len(index.branches) == 2
        for ours, theirs in zip(index.branches, loaded.branches):
            assert ours.weight == theirs.weight
            np.testing.assert_array_equal(ours.user, theirs.user)
            np.testing.assert_array_equal(ours.item, theirs.item)
            np.testing.assert_array_equal(ours.item_const, theirs.item_const)

    def test_fm_user_const_survives(self, dataset, tmp_path):
        index = build_index(dataset, FACTORIES["fm"])
        index.branches[0].user_const[:] = np.arange(dataset.n_users, dtype=np.float64)
        loaded = EmbeddingIndex.load(index.save(str(tmp_path / "fm2")))
        np.testing.assert_array_equal(
            loaded.branches[0].user_const, np.arange(dataset.n_users, dtype=np.float64)
        )


class TestFormatSafety:
    def test_index_header_has_kind(self, dataset, tmp_path):
        index = build_index(dataset, FACTORIES["bpr_mf"])
        path = index.save(str(tmp_path / "idx"))
        metadata = read_archive_metadata(path)
        assert metadata["kind"] == "embedding_index"

    def test_loading_a_checkpoint_as_index_fails(self, dataset, tmp_path):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        path = save_checkpoint(model, str(tmp_path / "ckpt"))
        with pytest.raises(ValueError, match="not an embedding index"):
            EmbeddingIndex.load(path)

    def test_loading_an_index_as_checkpoint_fails(self, dataset, tmp_path):
        from repro.train import load_checkpoint

        index = build_index(dataset, FACTORIES["bpr_mf"])
        path = index.save(str(tmp_path / "idx2"))
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="not a model checkpoint"):
            load_checkpoint(model, path)

    def test_rejects_newer_format_version(self, dataset, tmp_path, monkeypatch):
        index = build_index(dataset, FACTORIES["bpr_mf"])
        import repro.serving.index as index_module

        monkeypatch.setattr(index_module, "FORMAT_VERSION", 99)
        path = index.save(str(tmp_path / "future"))
        monkeypatch.setattr(index_module, "FORMAT_VERSION", 1)
        with pytest.raises(ValueError, match="newer"):
            EmbeddingIndex.load(path)


class TestIndexInternals:
    def test_price_level_profile_sums_to_one(self, dataset):
        index = build_index(dataset, FACTORIES["bpr_mf"])
        profile = index.price_level_profile()
        assert profile.shape == (dataset.n_price_levels,)
        assert profile.min() >= 0
        np.testing.assert_allclose(profile.sum(), 1.0)

    def test_memory_bytes_positive(self, dataset):
        index = build_index(dataset, FACTORIES["pup"])
        assert index.memory_bytes() > 0

    def test_branches_are_frozen_copies(self, dataset):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        model.eval()
        index = export_index(model, dataset)
        before = index.score(np.arange(3)).copy()
        model.user_embedding.weight.data[:] = 0.0
        np.testing.assert_array_equal(index.score(np.arange(3)), before)
