"""ANN wired through RetrievalEngine / RecommenderService, + dtype fix."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.nn import precision
from repro.serving import (
    PriceBandFilter,
    RecommenderService,
    RetrievalEngine,
    build_ivf,
    export_index,
)


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=60, n_items=220, n_categories=5, n_price_levels=4,
        interactions_per_user=8, seed=17,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=12, category_dim=6, rng=np.random.default_rng(3))
    model.eval()
    index = export_index(model, dataset)
    ivf = build_ivf(index, n_lists=10, nprobe=10, seed=0)  # full probe: exact
    return dataset, index, ivf


class TestEngineRouting:
    def test_engine_with_full_probe_ann_matches_exact_engine(self, setup):
        _, index, ivf = setup
        users = list(range(40))
        exact = RetrievalEngine(index).topk(users, k=12)
        approx = RetrievalEngine(index, ann=ivf).topk(users, k=12)
        for a, b in zip(exact, approx):
            np.testing.assert_array_equal(a.items, b.items)

    def test_use_ann_false_forces_exact_path(self, setup):
        _, index, ivf = setup
        low = build_ivf(index, n_lists=10, nprobe=1, seed=0)
        engine = RetrievalEngine(index, ann=low)
        exact = RetrievalEngine(index).topk([0, 1, 2], k=10)
        forced = engine.topk([0, 1, 2], k=10, use_ann=False)
        for a, b in zip(exact, forced):
            np.testing.assert_array_equal(a.items, b.items)
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_use_ann_true_without_index_raises(self, setup):
        _, index, _ = setup
        with pytest.raises(ValueError, match="no ANN index"):
            RetrievalEngine(index).topk([0], k=5, use_ann=True)

    def test_mismatched_catalog_rejected(self, setup):
        dataset, index, _ = setup
        other_config = SyntheticConfig(
            n_users=30, n_items=80, n_categories=4, n_price_levels=4,
            interactions_per_user=5, seed=1,
        )
        other_dataset = generate(other_config)[0]
        other_model = pup_full(
            other_dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(0)
        )
        other_model.eval()
        other = build_ivf(export_index(other_model, other_dataset), n_lists=4, seed=0)
        with pytest.raises(ValueError, match="rebuild the ann index"):
            RetrievalEngine(index, ann=other)

    def test_filters_apply_at_rerank(self, setup):
        _, index, ivf = setup
        engine = RetrievalEngine(index, ann=ivf)
        band = PriceBandFilter(0, 1)
        exact = RetrievalEngine(index).topk(list(range(20)), k=8, filters=[band])
        approx = engine.topk(list(range(20)), k=8, filters=[band])
        for a, b in zip(exact, approx):
            np.testing.assert_array_equal(a.items, b.items)


class TestServiceRouting:
    def test_service_with_full_probe_ann_serves_exact_results(self, setup):
        _, index, ivf = setup
        exact = RecommenderService(index, default_k=10, cache_capacity=0)
        approx = RecommenderService(index, default_k=10, cache_capacity=0, ann=ivf)
        assert approx.ann is ivf
        for user in range(15):
            if not index.is_warm(user):
                continue
            np.testing.assert_array_equal(
                exact.recommend(user).items, approx.recommend(user).items
            )

    def test_cold_users_still_route_through_fallback(self, setup):
        _, index, ivf = setup
        service = RecommenderService(index, default_k=5, ann=ivf)
        result = service.recommend(index.n_users + 99)
        assert result.source == "cold_fallback"
        assert len(result.items) == 5


class TestDtypePreservation:
    """Satellite regression: f32 indexes never pay an f64 copy when serving."""

    @pytest.fixture(scope="class")
    def f32_index(self):
        config = SyntheticConfig(
            n_users=40, n_items=120, n_categories=4, n_price_levels=4,
            interactions_per_user=6, seed=23,
        )
        dataset = generate(config)[0]
        with precision("float32"):
            model = pup_full(
                dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(1)
            )
        model.eval()
        return export_index(model, dataset)

    def test_topk_from_scores_preserves_float32(self, f32_index):
        engine = RetrievalEngine(f32_index)
        scores = np.random.default_rng(0).normal(size=f32_index.n_items).astype(np.float32)
        result = engine.topk_from_scores(scores, k=10)
        assert result.scores.dtype == np.float32

    def test_topk_from_scores_coerces_non_float(self, f32_index):
        engine = RetrievalEngine(f32_index)
        result = engine.topk_from_scores(np.arange(f32_index.n_items), k=5)
        assert result.scores.dtype == np.float64

    def test_engine_topk_stays_float32(self, f32_index):
        engine = RetrievalEngine(f32_index)
        for result in engine.topk([0, 1, 2], k=8):
            assert result.scores.dtype == np.float32

    def test_ann_search_stays_float32(self, f32_index):
        ivf = build_ivf(f32_index, n_lists=6, nprobe=6, seed=0)
        for scorer in ("exact", "int8"):
            _, scores = ivf.search(np.arange(5), 8, scorer=scorer)
            assert scores.dtype == np.float32
        engine = RetrievalEngine(f32_index, ann=ivf)
        for result in engine.topk([0, 1], k=6):
            assert result.scores.dtype == np.float32
