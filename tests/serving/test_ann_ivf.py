"""IVF two-stage search: full-probe exactness, masking, persistence."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.core.base import ScoreBranch
from repro.data import SyntheticConfig, generate
from repro.eval import topk_rankings
from repro.serving import RetrievalEngine, export_index
from repro.serving.ann import IVFIndex, build_ivf, kmeans
from repro.serving.index import EmbeddingIndex


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=70, n_items=260, n_categories=5, n_price_levels=4,
        interactions_per_user=8, seed=13,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=12, category_dim=6, rng=np.random.default_rng(7))
    model.eval()
    index = export_index(model, dataset)
    ivf = build_ivf(index, n_lists=12, nprobe=3, seed=0)
    return dataset, model, index, ivf


def integer_index(n_users=24, n_items=60, dim=4, seed=0):
    """Integer-valued factors: every dot product is exact in float64, so
    score ties are real and full-probe parity must hold bitwise."""
    rng = np.random.default_rng(seed)
    user = rng.integers(-3, 4, size=(n_users, dim)).astype(np.float64)
    item = rng.integers(-3, 4, size=(n_items, dim)).astype(np.float64)
    branch = ScoreBranch(user=user, item=item)
    return EmbeddingIndex(
        [branch],
        item_categories=np.zeros(n_items, dtype=np.int64),
        item_price_levels=np.zeros(n_items, dtype=np.int64),
        n_price_levels=4,
        n_categories=1,
        exclude_indptr=np.zeros(n_users + 1, dtype=np.int64),
        exclude_indices=np.zeros(0, dtype=np.int64),
        item_popularity=np.ones(n_items),
    )


class TestKMeans:
    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(120, 6))
        c1, l1 = kmeans(points, 8, seed=4)
        c2, l2 = kmeans(points, 8, seed=4)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(l1, l2)

    def test_no_empty_clusters(self):
        rng = np.random.default_rng(5)
        points = rng.normal(size=(64, 3))
        _, labels = kmeans(points, 16, seed=0)
        assert len(np.unique(labels)) == 16

    def test_clusters_clipped_to_points(self):
        centroids, labels = kmeans(np.arange(6.0)[:, None], 40, seed=0)
        assert centroids.shape[0] == 6
        assert len(np.unique(labels)) == 6

    def test_duplicate_heavy_points_never_produce_nan_or_empty_clusters(self):
        """Regression: reseeding an empty cluster from a singleton donor used
        to zero that donor out, yielding 0/0 NaN centroid rows."""
        rng = np.random.default_rng(24)
        points = np.vstack(
            [np.zeros((18, 3)), np.full((1, 3), 50.0), 1e-9 * rng.normal(size=(5, 3))]
        )
        centroids, labels = kmeans(points, 7, seed=24, iters=3)
        assert np.isfinite(centroids).all()
        assert len(np.unique(labels)) == 7

    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(6)
        centers = np.array([[0.0, 0.0], [40.0, 0.0], [0.0, 40.0]])
        points = np.vstack(
            [center + 0.1 * rng.normal(size=(30, 2)) for center in centers]
        )
        _, labels = kmeans(points, 3, seed=1)
        for group in range(3):
            assert len(np.unique(labels[group * 30 : (group + 1) * 30])) == 1


class TestStructure:
    def test_lists_partition_the_catalog(self, setup):
        _, _, index, ivf = setup
        np.testing.assert_array_equal(
            np.sort(ivf.list_items), np.arange(index.n_items)
        )
        assert ivf.list_indptr[-1] == index.n_items
        assert (ivf.list_sizes() > 0).all()

    def test_items_ascend_within_each_list(self, setup):
        _, _, _, ivf = setup
        for lst in range(ivf.n_lists):
            members = ivf.list_items[ivf.list_indptr[lst] : ivf.list_indptr[lst + 1]]
            assert (np.diff(members) > 0).all()

    def test_build_is_deterministic(self, setup):
        _, _, index, _ = setup
        a = build_ivf(index, n_lists=12, nprobe=3, seed=9)
        b = build_ivf(index, n_lists=12, nprobe=3, seed=9)
        np.testing.assert_array_equal(a.list_items, b.list_items)
        np.testing.assert_array_equal(a.centroids, b.centroids)


class TestFullProbeExactness:
    def test_full_probe_ids_bit_identical_to_exact_search(self, setup):
        """Acceptance criterion: nprobe = n_lists reproduces exact rankings."""
        dataset, model, index, ivf = setup
        users = np.arange(dataset.n_users)
        expected = topk_rankings(model, dataset, users, k=20)
        csr = (index.exclude_indptr, index.exclude_indices)
        ids, _ = ivf.search(users, 20, nprobe=ivf.n_lists, exclude_csr=csr)
        for row, user in enumerate(users):
            np.testing.assert_array_equal(ids[row], expected[int(user)])

    def test_full_probe_scores_match_exact_engine_to_ulp(self, setup):
        _, _, index, ivf = setup
        users = np.arange(30)
        engine = RetrievalEngine(index)
        reference = engine.topk(users, k=15, exclude_train=True)
        ids, scores = ivf.search(
            users, 15, nprobe=ivf.n_lists,
            exclude_csr=(index.exclude_indptr, index.exclude_indices),
        )
        for row, result in enumerate(reference):
            np.testing.assert_array_equal(ids[row], result.items)
            np.testing.assert_allclose(scores[row], result.scores, rtol=1e-12)

    def test_full_probe_bitwise_with_integer_ties(self):
        """Crafted integer factors: ties are exact, scores must match bitwise
        and tie-breaking must pick ascending item ids across lists."""
        index = integer_index()
        ivf = build_ivf(index, n_lists=5, nprobe=5, seed=2)
        users = np.arange(index.n_users)
        engine = RetrievalEngine(index)
        reference = engine.topk(users, k=25, exclude_train=False, drop_masked=False)
        ids, scores = ivf.search(users, 25, nprobe=5)
        for row, result in enumerate(reference):
            np.testing.assert_array_equal(ids[row], result.items)
            np.testing.assert_array_equal(scores[row], result.scores)

    def test_oversized_nprobe_clips_to_all_lists(self, setup):
        _, _, _, ivf = setup
        a, _ = ivf.search(np.arange(10), 8, nprobe=ivf.n_lists)
        b, _ = ivf.search(np.arange(10), 8, nprobe=10_000)
        np.testing.assert_array_equal(a, b)


class TestOperatingPoints:
    def test_recall_is_monotone_in_nprobe_on_average(self, setup):
        dataset, model, _, ivf = setup
        users = np.arange(dataset.n_users)
        exact = topk_rankings(model, dataset, users, k=10, exclude_train=False)

        def recall(nprobe):
            ids, _ = ivf.search(users, 10, nprobe=nprobe)
            return np.mean(
                [
                    len(np.intersect1d(ids[row][ids[row] >= 0], exact[int(u)])) / 10
                    for row, u in enumerate(users)
                ]
            )

        r1, r6, rall = recall(1), recall(6), recall(ivf.n_lists)
        assert r1 <= r6 + 1e-9 <= rall + 2e-9
        assert rall == 1.0

    def test_int8_fine_stage_available_and_sane(self, setup):
        dataset, model, _, ivf = setup
        assert ivf.scorers == ("exact", "int8")
        users = np.arange(dataset.n_users)
        exact = topk_rankings(model, dataset, users, k=10, exclude_train=False)
        ids, _ = ivf.search(users, 10, nprobe=ivf.n_lists, scorer="int8")
        recall = np.mean(
            [
                len(np.intersect1d(ids[row], exact[int(u)])) / 10
                for row, u in enumerate(users)
            ]
        )
        assert recall > 0.5  # quantized, not exact — but far from random

    def test_int8_full_probe_bitwise_matches_quantized_full_scan(self, setup):
        """At full probe the int8 fine stage IS a full-scan quantized
        ranking — same scorer, same (score desc, id asc) order — so it
        must agree with QuantizedIndex.search element-for-element.
        (Regression: a double-applied list permutation on item constants
        slipped past a recall-threshold assertion.)"""
        from repro.serving import QuantizedIndex

        dataset, _, index, ivf = setup
        # rebuild the reference from the same codes the IVF carries
        reference = QuantizedIndex(index, ivf.quantized.quantized)
        users = np.arange(dataset.n_users)
        ivf_ids, ivf_scores = ivf.search(users, 15, nprobe=ivf.n_lists, scorer="int8")
        ref_ids, ref_scores = reference.search(users, 15)
        np.testing.assert_array_equal(ivf_ids, ref_ids)
        # quantized scoring is elementwise after the exact integer matmul,
        # so even the scores agree bitwise across the two layouts
        np.testing.assert_array_equal(ivf_scores, ref_scores)

    def test_int8_requires_quantized_companion(self, setup):
        _, _, index, _ = setup
        bare = build_ivf(index, n_lists=6, nprobe=2, seed=0, quantize=False)
        with pytest.raises(ValueError, match="quantized companion"):
            bare.search(np.arange(3), 5, scorer="int8")


class TestMasking:
    def test_exclusions_never_surface(self, setup):
        dataset, _, index, ivf = setup
        users = np.arange(dataset.n_users)
        csr = (index.exclude_indptr, index.exclude_indices)
        ids, _ = ivf.search(users, 15, exclude_csr=csr)
        for row, user in enumerate(users):
            kept = ids[row][ids[row] >= 0]
            assert len(np.intersect1d(kept, index.excluded_items(int(user)))) == 0

    def test_candidate_mask_applies_at_rerank(self, setup):
        _, _, index, ivf = setup
        mask = np.zeros(index.n_items, dtype=bool)
        mask[::3] = True
        ids, scores = ivf.search(np.arange(20), 10, nprobe=ivf.n_lists, candidate_mask=mask)
        kept = ids[ids >= 0]
        assert len(kept) and np.all(kept % 3 == 0)

    def test_mask_does_not_change_probe_geometry(self, setup):
        """Filters restrict the re-rank, not which lists are probed."""
        _, _, index, ivf = setup
        users = np.arange(12)
        probes = ivf.probe(users)
        mask = np.zeros(index.n_items, dtype=bool)
        mask[: index.n_items // 4] = True
        np.testing.assert_array_equal(probes, ivf.probe(users))
        # masked full-probe == exact search restricted to the mask
        engine = RetrievalEngine(index)
        from repro.serving import AllowListFilter

        allowed = np.flatnonzero(mask)
        reference = engine.topk(
            users, 10, exclude_train=False, filters=[AllowListFilter(allowed)]
        )
        ids, _ = ivf.search(users, 10, nprobe=ivf.n_lists, candidate_mask=mask)
        for row, result in enumerate(reference):
            kept = ids[row][ids[row] >= 0]
            np.testing.assert_array_equal(kept, result.items)

    def test_pool_smaller_than_k_pads_with_sentinels(self, setup):
        _, _, index, ivf = setup
        mask = np.zeros(index.n_items, dtype=bool)
        mask[:4] = True
        ids, scores = ivf.search(np.arange(5), 10, nprobe=ivf.n_lists, candidate_mask=mask)
        assert ids.shape == (5, 10)
        assert (ids[:, 4:] == -1).all() if ids.shape[1] > 4 else True
        assert np.isneginf(scores[ids == -1]).all()


class TestPersistence:
    @pytest.mark.parametrize("fmt", ["npz", "dir"])
    def test_roundtrip_reproduces_searches(self, setup, fmt, tmp_path):
        _, _, index, ivf = setup
        path = ivf.save(str(tmp_path / "ann"), format=fmt)
        loaded = IVFIndex.load(path, index)
        assert loaded.nprobe == ivf.nprobe and loaded.n_lists == ivf.n_lists
        users = np.arange(25)
        for scorer in ("exact", "int8"):
            a_ids, a_scores = ivf.search(users, 12, scorer=scorer)
            b_ids, b_scores = loaded.search(users, 12, scorer=scorer)
            np.testing.assert_array_equal(a_ids, b_ids)
            np.testing.assert_array_equal(a_scores, b_scores)

    def test_load_rejects_wrong_artifact(self, setup, tmp_path):
        _, _, index, _ = setup
        path = index.save(str(tmp_path / "index.npz"))
        with pytest.raises(ValueError, match="not an IVF index"):
            IVFIndex.load(path, index)

    def test_load_rejects_mismatched_catalog(self, setup, tmp_path):
        _, _, index, ivf = setup
        path = ivf.save(str(tmp_path / "ann.npz"))
        other = integer_index(n_users=index.n_users, n_items=index.n_items + 1)
        with pytest.raises(ValueError, match="built for"):
            IVFIndex.load(path, other)
