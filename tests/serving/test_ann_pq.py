"""Product quantization: codebooks, ADC scoring, re-rank, OPQ, persistence."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.core.base import ScoreBranch, score_branches
from repro.data import SyntheticConfig, generate
from repro.eval.topk import NEG_INF
from repro.serving import export_index
from repro.serving.ann import (
    PQBranch,
    PQIndex,
    build_ivf,
    build_pq,
    quantize_items,
    score_pq_block,
    subspace_splits,
)
from repro.serving.ann.pq import build_pq_branch, score_candidates_exact
from repro.serving.index import EmbeddingIndex


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=70, n_items=260, n_categories=5, n_price_levels=4,
        interactions_per_user=8, seed=13,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=12, category_dim=6, rng=np.random.default_rng(7))
    model.eval()
    index = export_index(model, dataset)
    return dataset, index


def hand_index(item_arrays, user_arrays, consts=None):
    """A minimal EmbeddingIndex from raw branch arrays."""
    branches = []
    consts = consts or [None] * len(item_arrays)
    for user, item, const in zip(user_arrays, item_arrays, consts):
        branches.append(ScoreBranch(user=user, item=item, item_const=const))
    n_items = item_arrays[0].shape[0]
    n_users = user_arrays[0].shape[0]
    return EmbeddingIndex(
        branches,
        item_categories=np.zeros(n_items, dtype=np.int64),
        item_price_levels=np.zeros(n_items, dtype=np.int64),
        n_price_levels=4,
        n_categories=1,
        exclude_indptr=np.zeros(n_users + 1, dtype=np.int64),
        exclude_indices=np.zeros(0, dtype=np.int64),
        item_popularity=np.ones(n_items),
    )


class TestSubspaceSplits:
    def test_even_split(self):
        assert subspace_splits(8, 4) == [(0, 4), (4, 8)]

    def test_uneven_split_covers_every_dim(self):
        splits = subspace_splits(10, 4)
        assert splits[0][0] == 0 and splits[-1][1] == 10
        assert all(a[1] == b[0] for a, b in zip(splits, splits[1:]))
        assert len(splits) == 3

    def test_dim_smaller_than_subspace(self):
        assert subspace_splits(3, 8) == [(0, 3)]

    def test_rejects_bad_subspace_dim(self):
        with pytest.raises(ValueError):
            subspace_splits(8, 0)


class TestBuildPQBranch:
    def test_codes_are_uint8_one_per_subspace(self):
        rng = np.random.default_rng(0)
        item = rng.normal(size=(300, 12))
        pb = build_pq_branch(item, subspace_dim=4, n_centroids=16, seed=0)
        assert pb.codes.dtype == np.uint8
        assert pb.codes.shape == (300, 3)
        assert pb.d == 12

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(1)
        item = rng.normal(size=(200, 8))
        a = build_pq_branch(item, subspace_dim=4, n_centroids=32, seed=5)
        b = build_pq_branch(item, subspace_dim=4, n_centroids=32, seed=5)
        np.testing.assert_array_equal(a.codes, b.codes)
        for cb_a, cb_b in zip(a.codebooks, b.codebooks):
            np.testing.assert_array_equal(cb_a, cb_b)

    def test_reconstruction_improves_with_more_centroids(self):
        rng = np.random.default_rng(2)
        item = rng.normal(size=(400, 8))
        coarse = build_pq_branch(item, subspace_dim=4, n_centroids=4, seed=0)
        fine = build_pq_branch(item, subspace_dim=4, n_centroids=128, seed=0)
        err = lambda pb: float(np.mean((pb.dequantized() - item) ** 2))
        assert err(fine) < err(coarse)

    def test_train_sample_still_codes_every_item(self):
        rng = np.random.default_rng(3)
        item = rng.normal(size=(500, 8))
        pb = build_pq_branch(item, subspace_dim=4, n_centroids=16, seed=0,
                             train_sample=64)
        assert pb.codes.shape[0] == 500
        # every code must point at an existing centroid
        for m, cb in enumerate(pb.codebooks):
            assert pb.codes[:, m].max() < cb.shape[0]

    def test_rejects_too_many_centroids(self):
        with pytest.raises(ValueError):
            build_pq_branch(np.zeros((10, 4)), n_centroids=257)

    def test_memory_accounting(self):
        rng = np.random.default_rng(4)
        item = rng.normal(size=(128, 8))
        pb = build_pq_branch(item, subspace_dim=4, n_centroids=16, seed=0)
        assert pb.code_bytes() == 128 * 2
        assert pb.table_bytes() == sum(cb.nbytes for cb in pb.codebooks)


class TestADCScoring:
    def test_adc_matches_scoring_dequantized_factors(self):
        """ADC with exact queries == exact scoring of the reconstructed
        items: the LUT decomposition must introduce no extra error."""
        rng = np.random.default_rng(5)
        item = rng.normal(size=(80, 8))
        user = rng.normal(size=(20, 8))
        const = rng.normal(size=80)
        index = hand_index([item], [user], consts=[const])
        pq = build_pq(index, subspace_dim=4, n_centroids=32, seed=0)
        scores = pq.score(np.arange(20))
        branch = ScoreBranch(user=user, item=pq.pq[0].dequantized(), item_const=const)
        expected = score_branches([branch], np.arange(20), 0, 80)
        np.testing.assert_allclose(scores, expected, rtol=1e-10, atol=1e-10)

    def test_branch_weights_and_user_consts_apply_exactly(self):
        rng = np.random.default_rng(6)
        item = rng.normal(size=(60, 4))
        user = rng.normal(size=(10, 4))
        user_const = rng.normal(size=10)
        branch = ScoreBranch(user=user, item=item, user_const=user_const, weight=0.5)
        pb = build_pq_branch(item, subspace_dim=2, n_centroids=16, seed=0)
        scores = score_pq_block(
            [branch], [pb], [pb.codes], [None], np.arange(10), np.dtype(np.float64)
        )
        ref = ScoreBranch(
            user=user, item=pb.dequantized(), user_const=user_const, weight=0.5
        )
        expected = score_branches([ref], np.arange(10), 0, 60)
        np.testing.assert_allclose(scores, expected, rtol=1e-10, atol=1e-10)


class TestPQIndexSearch:
    def test_returned_scores_are_exact(self, setup):
        """Every non-sentinel score must be the exact kernel's value for
        that (user, item) — ADC only chooses candidates.  (The re-rank
        gather-einsum and the dense matmul may differ in the last ulp, so
        the comparison is allclose at fp64 resolution, not bitwise.)"""
        _, index = setup
        pq = build_pq(index, seed=0)
        users = np.arange(0, 40)
        ids, scores = pq.search(users, 10)
        dense = score_branches(index.branches, users, 0, index.n_items)
        expected = np.take_along_axis(dense, np.maximum(ids, 0), axis=1)
        mask = ids >= 0
        np.testing.assert_allclose(
            scores[mask], expected[mask], rtol=1e-12, atol=1e-12
        )

    def test_full_rerank_reproduces_exact_topk(self, setup):
        """With the re-rank pool covering the whole catalog the search is
        exhaustive exact search — ids and scores must match it."""
        _, index = setup
        pq = build_pq(index, seed=0, rerank_factor=index.n_items)
        users = np.arange(25)
        ids, scores = pq.search(users, 10)
        dense = score_branches(index.branches, users, 0, index.n_items)
        order = np.argsort(-dense, axis=1, kind="stable")[:, :10]
        np.testing.assert_array_equal(ids, order)

    def test_excluded_items_never_resurface(self, setup):
        _, index = setup
        pq = build_pq(index, seed=0)
        users = np.arange(30)
        csr = (index.exclude_indptr, index.exclude_indices)
        ids, _ = pq.search(users, 15, exclude_csr=csr)
        for row, user in enumerate(users):
            banned = set(
                index.exclude_indices[
                    index.exclude_indptr[user]:index.exclude_indptr[user + 1]
                ]
            )
            assert not banned.intersection(ids[row][ids[row] >= 0])

    def test_candidate_mask_restricts_results(self, setup):
        _, index = setup
        pq = build_pq(index, seed=0)
        mask = np.zeros(index.n_items, dtype=bool)
        mask[:40] = True
        ids, _ = pq.search(np.arange(10), 8, candidate_mask=mask)
        valid = ids[ids >= 0]
        assert valid.size and (valid < 40).all()

    def test_memory_report_shape(self, setup):
        _, index = setup
        pq = build_pq(index, seed=0)
        report = pq.memory_report()
        assert report["kind"] == "pq"
        assert report["tiers"]["hot"] == report["bytes_total"]
        assert report["tiers"]["cold"] == 0
        assert report["bytes_per_item"] * index.n_items == pytest.approx(
            pq.memory_bytes()
        )


class TestOPQRotation:
    def test_rotation_is_orthogonal(self):
        rng = np.random.default_rng(7)
        item = rng.normal(size=(300, 8)) @ rng.normal(size=(8, 8))
        pb = build_pq_branch(item, subspace_dim=4, n_centroids=16, seed=0,
                             rotation=True)
        assert pb.rotation is not None
        np.testing.assert_allclose(
            pb.rotation @ pb.rotation.T, np.eye(8), atol=1e-10
        )

    def test_rotated_adc_matches_dequantized_scoring(self):
        """Orthogonal rotations preserve inner products, so rotated ADC
        must still equal exact scoring of the (unrotated) reconstruction."""
        rng = np.random.default_rng(8)
        item = rng.normal(size=(90, 8)) @ rng.normal(size=(8, 8))
        user = rng.normal(size=(15, 8))
        index = hand_index([item], [user])
        pq = build_pq(index, subspace_dim=4, n_centroids=32, seed=0, rotation=True)
        scores = pq.score(np.arange(15))
        branch = ScoreBranch(user=user, item=pq.pq[0].dequantized())
        expected = score_branches([branch], np.arange(15), 0, 90)
        np.testing.assert_allclose(scores, expected, rtol=1e-9, atol=1e-9)

    def test_rotation_helps_on_correlated_data(self):
        """On strongly cross-subspace-correlated factors the learned
        rotation must not hurt reconstruction (that is its whole job)."""
        rng = np.random.default_rng(9)
        latent = rng.normal(size=(500, 2))
        mix = rng.normal(size=(2, 8))
        item = latent @ mix + 0.05 * rng.normal(size=(500, 8))
        plain = build_pq_branch(item, subspace_dim=4, n_centroids=8, seed=0)
        opq = build_pq_branch(item, subspace_dim=4, n_centroids=8, seed=0,
                              rotation=True)
        err_plain = float(np.mean((plain.dequantized() - item) ** 2))
        err_opq = float(np.mean((opq.dequantized() - item) ** 2))
        assert err_opq <= err_plain * 1.05


class TestPQBeatsInt8:
    """The compression-ladder property: at equal-or-less item-side memory,
    PQ reconstruction error is no worse than scalar int8.

    At ``subspace_dim=1`` / 256 centroids the two spend exactly the same
    byte per dimension, but PQ's per-dimension Lloyd quantizer adapts its
    levels per dimension while int8 shares one global scale per branch —
    k-means optimality makes PQ's MSE <= the uniform grid's.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_pq_mse_at_most_int8_mse_at_equal_memory(self, seed):
        rng = np.random.default_rng(seed)
        # mixed per-dimension scales: the regime where a global scale hurts
        scales = 10.0 ** rng.uniform(-1, 1, size=6)
        item = rng.normal(size=(400, 6)) * scales
        pb = build_pq_branch(item, subspace_dim=1, n_centroids=256, seed=seed)
        qb = quantize_items(item)
        assert pb.code_bytes() <= qb.q_item.nbytes
        pq_mse = float(np.mean((pb.dequantized() - item) ** 2))
        int8_mse = float(np.mean((qb.dequantized() - item) ** 2))
        assert pq_mse <= int8_mse * (1 + 1e-9)


class TestExactRerankKernel:
    def test_matches_dense_scoring_on_gathered_columns(self, setup):
        _, index = setup
        rng = np.random.default_rng(10)
        users = np.arange(12)
        cand = rng.integers(0, index.n_items, size=(12, 9))
        got = score_candidates_exact(
            index.branches, users, cand, np.dtype(np.float64)
        )
        dense = score_branches(index.branches, users, 0, index.n_items)
        np.testing.assert_allclose(
            got, np.take_along_axis(dense, cand, axis=1), rtol=1e-12, atol=1e-12
        )


class TestIVFWithPQFineStage:
    def test_pq_becomes_default_scorer(self, setup):
        _, index = setup
        ivf = build_ivf(index, n_lists=12, nprobe=3, seed=0, pq=True)
        assert ivf.default_scorer == "pq"
        assert "pq" in ivf.scorers
        assert ivf.kind == "ivf-pq"

    def test_companion_codes_are_residual(self, setup):
        """The IVF companion encodes residuals against per-list means
        (IVFADC): means carry one row per (list, branch), and the residual
        container refuses standalone scoring — its codes only mean
        something next to the owning index's list means."""
        _, index = setup
        ivf = build_ivf(index, n_lists=12, nprobe=3, seed=0, pq=True)
        assert ivf.pq.residual
        assert ivf._pq_list_means is not None
        for branch, means in zip(index.branches, ivf._pq_list_means):
            assert means.shape == (ivf.n_lists, branch.item.shape[1])
        with pytest.raises(ValueError, match="residual"):
            ivf.pq.search(np.arange(4), 5)

    def test_residual_adc_orders_within_lists_better(self, setup):
        """Within one list, residual ADC scores must track exact scores at
        least as faithfully as raw-vector ADC — the whole point of the
        IVFADC construction (codebook precision goes to within-list
        differences, which decide the candidate ranks)."""
        _, index = setup
        ivf = build_ivf(index, n_lists=6, nprobe=6, seed=0, pq=True)
        raw = build_pq(index, seed=0)
        users = np.arange(40)
        raw_err = 0.0
        res_err = 0.0
        from repro.serving.ann.pq import score_pq_block

        for lst in range(ivf.n_lists):
            start, stop = int(ivf.list_indptr[lst]), int(ivf.list_indptr[lst + 1])
            if stop == start:
                continue
            exact = ivf._score_segment("exact", users, lst, start, stop)
            res = ivf._score_segment("pq", users, lst, start, stop)
            members = ivf.list_items[start:stop]
            raw_scores = score_pq_block(
                index.branches,
                raw.pq,
                [pb.codes[members] for pb in raw.pq],
                [
                    None if b.item_const is None else b.item_const[members]
                    for b in index.branches
                ],
                users,
                ivf.dtype,
            )
            res_err += float(((res - exact) ** 2).sum())
            raw_err += float(((raw_scores - exact) ** 2).sum())
        assert res_err <= raw_err

    def test_full_probe_full_rerank_is_exact(self, setup):
        """Full probe + a re-rank pool covering the catalog must reproduce
        exact rankings (same tie-breaking as exact search)."""
        _, index = setup
        ivf = build_ivf(index, n_lists=12, seed=0, pq=True,
                        rerank_factor=index.n_items)
        users = np.arange(30)
        ids, scores = ivf.search(users, 10, nprobe=ivf.n_lists, scorer="pq")
        exact_ids, exact_scores = ivf.search(
            users, 10, nprobe=ivf.n_lists, scorer="exact"
        )
        np.testing.assert_array_equal(ids, exact_ids)
        np.testing.assert_allclose(scores, exact_scores, rtol=1e-12, atol=1e-12)

    def test_pq_scorer_respects_exclusions(self, setup):
        _, index = setup
        ivf = build_ivf(index, n_lists=12, nprobe=6, seed=0, pq=True)
        users = np.arange(40)
        csr = (index.exclude_indptr, index.exclude_indices)
        ids, _ = ivf.search(users, 12, scorer="pq", exclude_csr=csr)
        for row, user in enumerate(users):
            banned = set(
                index.exclude_indices[
                    index.exclude_indptr[user]:index.exclude_indptr[user + 1]
                ]
            )
            assert not banned.intersection(ids[row][ids[row] >= 0])

    def test_pq_scores_are_exact_after_rerank(self, setup):
        _, index = setup
        ivf = build_ivf(index, n_lists=12, nprobe=6, seed=0, pq=True)
        users = np.arange(20)
        ids, scores = ivf.search(users, 8, scorer="pq")
        dense = score_branches(index.branches, users, 0, index.n_items)
        expected = np.take_along_axis(dense, np.maximum(ids, 0), axis=1)
        mask = ids >= 0
        np.testing.assert_allclose(
            scores[mask], expected[mask], rtol=1e-12, atol=1e-12
        )

    def test_memory_report_counts_pq_payload(self, setup):
        _, index = setup
        ivf = build_ivf(index, n_lists=12, seed=0, pq=True)
        report = ivf.memory_report()
        assert report["kind"] == "ivf-pq"
        # default scorer is pq, so the per-item payload is the code bytes
        assert report["bytes_per_item"] == pytest.approx(
            ivf.pq.memory_bytes() / index.n_items
        )


class TestPQPersistence:
    @pytest.mark.parametrize("format", ["npz", "dir"])
    def test_roundtrip_preserves_search(self, setup, tmp_path, format):
        _, index = setup
        pq = build_pq(index, seed=0, rotation=True)
        path = pq.save(str(tmp_path / "pq_archive"), format=format)
        loaded = PQIndex.load(path, index)
        users = np.arange(30)
        ids_a, scores_a = pq.search(users, 10)
        ids_b, scores_b = loaded.search(users, 10)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_array_equal(scores_a, scores_b)
        assert loaded.rerank_factor == pq.rerank_factor

    def test_load_rejects_wrong_kind(self, setup, tmp_path):
        _, index = setup
        ivf = build_ivf(index, n_lists=8, seed=0)
        path = ivf.save(str(tmp_path / "ivf.npz"))
        with pytest.raises(ValueError, match="not a PQ index"):
            PQIndex.load(path, index)
