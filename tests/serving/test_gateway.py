"""ServingGateway: admission control, dual-trigger batching, rate limits.

The acceptance criterion pinned throughout: the gateway changes *when*
work happens (batching, shedding, pacing), never *what* is computed —
results through the gateway are bit-identical to the synchronous
``recommend_many`` path for the same requests.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.obs import MetricsRegistry, Tracer
from repro.serving import (
    GatewayClosed,
    GatewayConfig,
    Overloaded,
    RateLimited,
    RecommenderService,
    ServingGateway,
    TokenBucket,
    export_index,
)


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=40, n_items=60, n_categories=4, n_price_levels=4,
        interactions_per_user=7, seed=13,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(5))
    model.eval()
    index = export_index(model, dataset)
    return dataset, model, index


def make_service(index, **kwargs):
    kwargs.setdefault("default_k", 8)
    kwargs.setdefault("cache_capacity", 0)
    return RecommenderService(index, **kwargs)


class TestAdmission:
    def test_overloaded_when_queue_full(self, setup):
        _, _, index = setup
        service = make_service(index, max_batch_size=4)
        with ServingGateway(
            service, GatewayConfig(max_queue_depth=3, max_wait_ms=10_000.0, max_batch_size=1000)
        ) as gateway:
            for user in range(3):
                gateway.submit(user)
            with pytest.raises(Overloaded):
                gateway.submit(3)
            assert gateway.queue_depth == 3  # bound held
            assert gateway.shed_count("queue_full") == 1
            # shedding freed nothing: draining answers exactly the admitted 3
            assert gateway.drain() == 3

    def test_rate_limit_per_tenant(self, setup):
        _, _, index = setup
        clock = [0.0]
        service = make_service(index, max_batch_size=1000, clock=lambda: clock[0])
        config = GatewayConfig(
            max_queue_depth=100, max_wait_ms=10_000.0, rate_limit=10.0, rate_burst=2.0
        )
        with ServingGateway(service, config) as gateway:
            gateway.submit(0, tenant="a")
            gateway.submit(1, tenant="a")
            with pytest.raises(RateLimited):
                gateway.submit(2, tenant="a")
            # tenants are isolated: "b" has its own bucket
            gateway.submit(2, tenant="b")
            # refill at 10/s: 0.1 simulated seconds buys one token back
            clock[0] += 0.1
            gateway.submit(3, tenant="a")
            assert gateway.shed_count("rate_limited") == 1

    def test_closed_gateway_sheds_and_restores_service(self, setup):
        _, _, index = setup
        service = make_service(index, max_batch_size=7)
        gateway = ServingGateway(service, GatewayConfig(max_queue_depth=10, max_wait_ms=10_000.0))
        pending = gateway.submit(0)
        assert gateway.close() == 1  # final drain answered the straggler
        assert pending.done
        with pytest.raises(GatewayClosed):
            gateway.submit(1)
        assert gateway.close() == 0  # idempotent
        assert service.max_batch_size == 7  # size trigger handed back


class TestDualTrigger:
    def test_size_trigger_flushes_inline(self, setup):
        _, _, index = setup
        service = make_service(index)
        config = GatewayConfig(max_queue_depth=100, max_wait_ms=10_000.0, max_batch_size=3)
        with ServingGateway(service, config) as gateway:
            first = [gateway.submit(u) for u in range(2)]
            assert not any(p.done for p in first)  # below both triggers
            third = gateway.submit(2)
            assert third.done and all(p.done for p in first)
            assert gateway.snapshot()["flushes_size"] == 1.0

    def test_deadline_trigger_flushes_in_background(self, setup):
        _, _, index = setup
        service = make_service(index)
        config = GatewayConfig(max_queue_depth=100, max_wait_ms=10.0, max_batch_size=1000)
        with ServingGateway(service, config) as gateway:
            pending = gateway.submit(0)
            # no explicit flush, no size trigger: the flusher thread must act
            rec = pending.result(timeout=5.0)
            assert rec.user == 0
            assert gateway.snapshot()["flushes_deadline"] >= 1.0

    def test_deadline_measured_from_oldest_request(self, setup):
        """A stream of new submits must not postpone the first request's
        deadline — the timer keys off the *oldest* enqueue time."""
        _, _, index = setup
        service = make_service(index)
        config = GatewayConfig(max_queue_depth=1000, max_wait_ms=50.0, max_batch_size=1000)
        with ServingGateway(service, config) as gateway:
            began = time.perf_counter()
            first = gateway.submit(0)
            stop = threading.Event()

            def trickle() -> None:
                user = 1
                while not stop.is_set() and not first.done:
                    gateway.submit(user % index.n_users)
                    user += 1
                    time.sleep(0.005)

            thread = threading.Thread(target=trickle)
            thread.start()
            try:
                first.result(timeout=5.0)
                waited = time.perf_counter() - began
            finally:
                stop.set()
                thread.join()
            assert waited < 2.0, f"deadline starved by later submits ({waited:.3f}s)"


class TestParity:
    def test_gateway_results_bit_identical_to_sync_path(self, setup):
        """Acceptance criterion: concurrency must not change answers."""
        _, _, index = setup
        users = [u % index.n_users for u in range(120)]
        sync = make_service(index).recommend_many(users, k=8)

        service = make_service(index)
        config = GatewayConfig(max_queue_depth=64, max_wait_ms=2.0, max_batch_size=16)
        answers = {}
        answers_lock = threading.Lock()
        with ServingGateway(service, config) as gateway:
            def worker(shard):
                for i, user in shard:
                    rec = gateway.submit(user, k=8).result(timeout=10.0)
                    with answers_lock:
                        answers[i] = rec

            shards = [list(enumerate(users))[t::4] for t in range(4)]
            threads = [threading.Thread(target=worker, args=(s,)) for s in shards]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i, expected in enumerate(sync):
            np.testing.assert_array_equal(answers[i].items, expected.items)
            np.testing.assert_array_equal(answers[i].scores, expected.scores)


class TestObservability:
    def test_metric_families_present_and_accounted(self, setup):
        _, _, index = setup
        registry = MetricsRegistry()
        tracer = Tracer()
        service = make_service(index, registry=registry, tracer=tracer)
        config = GatewayConfig(max_queue_depth=2, max_wait_ms=10_000.0, max_batch_size=1000)
        with ServingGateway(service, config) as gateway:
            gateway.submit(0)
            gateway.submit(1)
            with pytest.raises(Overloaded):
                gateway.submit(2)
            gateway.drain()
        text = registry.to_prometheus()
        for family in (
            "gateway_requests_total",
            "gateway_shed_total",
            "gateway_flushes_total",
            "gateway_batch_size",
            "gateway_queue_depth",
        ):
            assert family in text, f"missing {family}"
        # pre-seeded zero series make every shed reason scrapeable
        assert 'gateway_shed_total{reason="rate_limited"} 0' in text
        assert 'gateway_shed_total{reason="queue_full"} 1' in text
        names = [span["name"] for span in tracer.records()]
        assert "gateway.admit" in names
        assert "gateway.batch" in names

    def test_snapshot_accounts_every_outcome(self, setup):
        _, _, index = setup
        service = make_service(index)
        config = GatewayConfig(max_queue_depth=2, max_wait_ms=10_000.0, max_batch_size=1000)
        with ServingGateway(service, config) as gateway:
            gateway.submit(0)
            gateway.submit(1)
            with pytest.raises(Overloaded):
                gateway.submit(2)
            gateway.drain()
            snap = gateway.snapshot()
        assert snap["admitted"] == 2.0
        assert snap["shed_queue_full"] == 1.0
        assert snap["flushes_drain"] >= 1.0


class TestTokenBucket:
    def test_burst_then_sustained_rate(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: clock[0])
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
        clock[0] += 0.5  # one token refilled at 2/s
        assert bucket.try_acquire() is True
        assert bucket.try_acquire() is False
        clock[0] += 100.0  # refill caps at burst
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0, clock=time.perf_counter)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5, clock=time.perf_counter)
        with pytest.raises(ValueError):
            GatewayConfig(max_wait_ms=0.0)
        with pytest.raises(ValueError):
            GatewayConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            GatewayConfig(rate_limit=-1.0)
