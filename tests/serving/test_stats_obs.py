"""Registry-backed ServingStats: snapshot stability, queue wait, parity.

Pins the three satellite fixes: (1) ``record_batch`` accounts queue wait so
p50/p99 are end-to-end; (2) ``LatencyRecorder`` caching is bit-identical to
the historical rebuild-every-call path; (3) the snapshot keys the CLI and
dashboards read are byte-for-byte unchanged.
"""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, parse_prometheus
from repro.serving.stats import LatencyRecorder, ServingStats

SNAPSHOT_KEYS = [
    "requests",
    "warm_requests",
    "cold_requests",
    "cache_hits",
    "cache_misses",
    "cache_hit_rate",
    "batches",
    "items_scored",
    "qps",
    "latency_p50_ms",
    "latency_p99_ms",
    "latency_mean_ms",
    "elapsed_s",
    "ann_index_bytes_hot",
    "ann_index_bytes_cold",
    "ann_index_bytes_total",
]


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def advance(self, dt):
        self.t += dt

    def __call__(self):
        return self.t


class TestLatencyRecorderParity:
    """The cache must be invisible: identical results to the uncached path."""

    def _reference(self, samples, q):
        # the pre-cache implementation, verbatim
        return float(np.percentile(np.fromiter(samples, dtype=np.float64), q))

    def test_percentile_bit_parity_with_uncached_path(self):
        rng = np.random.default_rng(7)
        recorder = LatencyRecorder(window=512)
        samples = []
        for value in rng.lognormal(-6, 1, size=1500):
            recorder.record(value)
            samples.append(float(value))
            samples = samples[-512:]
        for q in (0, 25, 50, 90, 99, 100):
            assert recorder.percentile(q) == self._reference(samples, q)
            # second read hits the cache — must not drift
            assert recorder.percentile(q) == self._reference(samples, q)

    def test_mean_bit_parity_with_uncached_path(self):
        rng = np.random.default_rng(8)
        recorder = LatencyRecorder(window=256)
        samples = []
        for value in rng.lognormal(-6, 1, size=700):
            recorder.record(value)
            samples.append(float(value))
            samples = samples[-256:]
        expected = float(np.mean(np.fromiter(samples, dtype=np.float64)))
        assert recorder.mean() == expected
        assert recorder.mean() == expected

    def test_cache_invalidated_by_record(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        assert recorder.percentile(50) == 1.0
        recorder.record(3.0)
        assert recorder.percentile(50) == 2.0
        assert recorder.mean() == 2.0

    def test_cached_scrape_is_cheap(self):
        recorder = LatencyRecorder()
        recorder.record(0.5)
        recorder.percentile(50)
        assert recorder._array is not None  # built once...
        array = recorder._array
        recorder.percentile(50)
        assert recorder._array is array  # ...and reused, not rebuilt


class TestServingStats:
    def test_snapshot_keys_unchanged(self):
        stats = ServingStats(clock=FakeClock())
        assert list(stats.snapshot()) == SNAPSHOT_KEYS

    def test_record_batch_includes_queue_wait_in_latency(self):
        stats = ServingStats(clock=FakeClock())
        # 10ms compute, one request waited 90ms, one 0ms
        stats.record_batch(
            n_requests=2, n_items_scored=100, seconds=0.010, queue_waits=[0.090, 0.0]
        )
        snap = stats.snapshot()
        # end-to-end latencies are {100ms, 10ms}: p99 must see the waiter
        assert snap["latency_p99_ms"] == pytest.approx(100.0, rel=0.02)
        assert snap["latency_mean_ms"] == pytest.approx(55.0, rel=0.02)

    def test_queue_wait_histogram_keeps_compute_only_view(self):
        stats = ServingStats(clock=FakeClock())
        stats.record_batch(
            n_requests=2, n_items_scored=100, seconds=0.010, queue_waits=[0.090, 0.0]
        )
        extended = stats.extended_snapshot()
        assert extended["queue_wait_p99_ms"] == pytest.approx(90.0, rel=0.02)
        assert extended["batch_duration_mean_ms"] == pytest.approx(10.0, rel=0.02)
        # the plain snapshot is a strict prefix of the extended one
        assert set(SNAPSHOT_KEYS) < set(extended)

    def test_no_queue_waits_matches_historical_behavior(self):
        stats = ServingStats(clock=FakeClock())
        stats.record_batch(n_requests=3, n_items_scored=30, seconds=0.004)
        snap = stats.snapshot()
        assert snap["latency_p50_ms"] == pytest.approx(4.0)
        assert snap["requests"] == 0.0  # record_request is separate, as before

    def test_queue_waits_length_mismatch_rejected(self):
        stats = ServingStats(clock=FakeClock())
        with pytest.raises(ValueError, match="queue_waits"):
            stats.record_batch(n_requests=2, n_items_scored=1, seconds=0.1, queue_waits=[0.1])

    def test_counts_surface_in_shared_registry(self):
        registry = MetricsRegistry()
        stats = ServingStats(clock=FakeClock(), registry=registry)
        stats.record_request(warm=True)
        stats.record_request(warm=False)
        stats.record_cache(hit=True)
        stats.record_batch(n_requests=1, n_items_scored=50, seconds=0.002)
        samples = parse_prometheus(registry.to_prometheus())
        assert samples[("serving_requests_total", (("route", "warm"),))] == 1
        assert samples[("serving_requests_total", (("route", "cold"),))] == 1
        assert samples[("serving_cache_lookups_total", (("result", "hit"),))] == 1
        assert samples[("serving_batches_total", ())] == 1
        assert samples[("serving_items_scored_total", ())] == 50
        assert samples[("serving_request_latency_seconds_count", ())] == 1

    def test_attribute_api_preserved(self):
        stats = ServingStats(clock=FakeClock())
        stats.record_request(warm=True)
        stats.record_request(warm=True)
        stats.record_request(warm=False)
        stats.record_cache(hit=False)
        assert stats.requests == 3
        assert stats.warm_requests == 2
        assert stats.cold_requests == 1
        assert stats.cache_misses == 1
        assert stats.cache_hits == 0
