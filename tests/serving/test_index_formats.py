"""EmbeddingIndex container formats: npz vs dir, mmap loading, fallbacks."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.serving import EmbeddingIndex, export_index
from repro.train import persistence


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=40, n_items=70, n_categories=3, n_price_levels=4,
        interactions_per_user=7, seed=21,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(1))
    model.eval()
    return dataset, export_index(model, dataset, extra={"note": "fmt"})


def _assert_indexes_equal(a: EmbeddingIndex, b: EmbeddingIndex) -> None:
    assert a.n_users == b.n_users and a.n_items == b.n_items
    assert a.model_name == b.model_name and a.extra == b.extra
    assert len(a.branches) == len(b.branches)
    for left, right in zip(a.branches, b.branches):
        np.testing.assert_array_equal(left.user, right.user)
        np.testing.assert_array_equal(left.item, right.item)
        assert left.weight == right.weight
    np.testing.assert_array_equal(a.exclude_indptr, b.exclude_indptr)
    np.testing.assert_array_equal(a.exclude_indices, b.exclude_indices)
    users = np.arange(a.n_users)
    np.testing.assert_array_equal(a.score(users), b.score(users))


class TestDirFormat:
    def test_round_trip(self, setup, tmp_path):
        _, index = setup
        path = index.save(str(tmp_path / "index"), format="dir")
        _assert_indexes_equal(index, EmbeddingIndex.load(path))

    def test_mmap_load_is_memory_mapped_and_bit_identical(self, setup, tmp_path):
        _, index = setup
        path = index.save(str(tmp_path / "index"), format="dir")
        mapped = EmbeddingIndex.load(path, mmap=True)
        # branch factors must be zero-copy views over the on-disk mapping
        # (canonicalization strips the memmap subclass but keeps its memory)
        user = mapped.branches[0].user
        assert isinstance(user, np.memmap) or isinstance(user.base, np.memmap)
        assert not user.flags.writeable
        assert mapped.source_path == path and mapped.source_mmap
        _assert_indexes_equal(index, mapped)

    def test_npz_round_trip_still_works(self, setup, tmp_path):
        _, index = setup
        path = index.save(str(tmp_path / "index.npz"))
        loaded = EmbeddingIndex.load(path)
        assert loaded.source_path == path and not loaded.source_mmap
        _assert_indexes_equal(index, loaded)

    def test_mmap_flag_falls_back_for_legacy_npz(self, setup, tmp_path):
        # Transparent: a compressed archive cannot be mapped, but loading
        # with mmap=True must still succeed with identical contents.
        _, index = setup
        path = index.save(str(tmp_path / "legacy.npz"))
        loaded = EmbeddingIndex.load(path, mmap=True)
        assert not isinstance(loaded.branches[0].user, np.memmap)
        # not actually mapped, so it must not advertise path re-attach to the
        # batch runtime's worker transport
        assert not loaded.source_mmap
        _assert_indexes_equal(index, loaded)

    def test_rejects_unknown_format(self, setup, tmp_path):
        _, index = setup
        with pytest.raises(ValueError, match="format"):
            index.save(str(tmp_path / "x"), format="parquet")

    def test_dir_and_npz_kind_checks_match(self, setup, tmp_path):
        dataset, index = setup
        directory = index.save(str(tmp_path / "index"), format="dir")
        metadata = persistence.read_archive_metadata(directory)
        assert persistence.archive_kind(metadata) == "embedding_index"
        # a checkpoint directory is rejected by the index loader
        from repro.core import pup_full as build

        model = build(dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(1))
        arrays = model.state_dict()
        ckpt_dir = persistence.write_archive_dir(
            str(tmp_path / "ckpt"), arrays, {persistence.KIND_KEY: "checkpoint"}
        )
        with pytest.raises(ValueError, match="not an embedding index"):
            EmbeddingIndex.load(ckpt_dir)


class TestArchiveDirLayer:
    def test_rejects_path_separators_in_names(self, tmp_path):
        with pytest.raises(ValueError, match="filename"):
            persistence.write_archive_dir(
                str(tmp_path / "a"), {"bad/name": np.zeros(2)}, {}
            )

    def test_missing_metadata_is_a_clear_error(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="missing metadata"):
            persistence.read_archive_metadata(str(empty))

    def test_overwrite_removes_stale_arrays(self, tmp_path):
        target = str(tmp_path / "arch")
        persistence.write_archive_dir(
            target, {"a": np.zeros(2), "b": np.ones(3)}, {"kind": "test"}
        )
        persistence.write_archive_dir(target, {"a": np.zeros(2)}, {"kind": "test"})
        assert set(persistence.read_archive_arrays(target)) == {"a"}

    def test_mmap_arrays_are_read_only_views(self, tmp_path):
        path = persistence.write_archive_dir(
            str(tmp_path / "arch"), {"x": np.arange(6.0)}, {"kind": "test"}
        )
        arrays = persistence.read_archive_arrays(path, mmap=True)
        assert isinstance(arrays["x"], np.memmap)
        with pytest.raises((ValueError, OSError)):
            arrays["x"][0] = 5.0
