"""Int8 quantization: error bounds, integer accumulation, save/load."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.core.base import ScoreBranch
from repro.data import SyntheticConfig, generate
from repro.serving import QuantizedIndex, export_index
from repro.serving.ann import accumulate_codes, quantize_items, quantize_queries
from repro.serving.index import EmbeddingIndex


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=60, n_items=140, n_categories=4, n_price_levels=4,
        interactions_per_user=7, seed=11,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=12, category_dim=6, rng=np.random.default_rng(5))
    model.eval()
    index = export_index(model, dataset)
    return dataset, index


def hand_index(item_arrays, user_arrays, consts=None, n_users=None):
    """A minimal EmbeddingIndex from raw branch arrays."""
    branches = []
    consts = consts or [None] * len(item_arrays)
    for user, item, const in zip(user_arrays, item_arrays, consts):
        branches.append(ScoreBranch(user=user, item=item, item_const=const))
    n_items = item_arrays[0].shape[0]
    n_users = user_arrays[0].shape[0]
    return EmbeddingIndex(
        branches,
        item_categories=np.zeros(n_items, dtype=np.int64),
        item_price_levels=np.zeros(n_items, dtype=np.int64),
        n_price_levels=4,
        n_categories=1,
        exclude_indptr=np.zeros(n_users + 1, dtype=np.int64),
        exclude_indices=np.zeros(0, dtype=np.int64),
        item_popularity=np.ones(n_items),
    )


class TestQuantization:
    def test_reconstruction_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        item = rng.normal(size=(300, 16)) * 3.0 + 1.0
        qb = quantize_items(item)
        err = np.abs(qb.dequantized() - item).max()
        assert err <= qb.max_abs_error * (1 + 1e-12)

    def test_constant_branch_quantizes_exactly(self):
        item = np.full((50, 4), 2.5)
        qb = quantize_items(item)
        np.testing.assert_allclose(qb.dequantized(), item)

    def test_zero_branch_quantizes_exactly(self):
        qb = quantize_items(np.zeros((10, 3)))
        np.testing.assert_array_equal(qb.dequantized(), np.zeros((10, 3)))

    def test_per_branch_scales_track_each_branchs_range(self, setup):
        _, index = setup
        quantized = QuantizedIndex.build(index)
        for branch, qb in zip(index.branches, quantized.quantized):
            span = float(branch.item.max() - branch.item.min())
            assert qb.scale == pytest.approx(span / 254.0)

    def test_codes_are_int8_and_memory_shrinks(self, setup):
        _, index = setup
        quantized = QuantizedIndex.build(index)
        for qb in quantized.quantized:
            assert qb.q_item.dtype == np.int8
        item_bytes = sum(branch.item.nbytes for branch in index.branches)
        assert quantized.memory_bytes() * 7 < item_bytes  # float64 source: 8x


class TestIntegerAccumulation:
    def test_float32_accumulation_is_exact_integer_arithmetic(self):
        rng = np.random.default_rng(1)
        q_user = rng.integers(-127, 128, size=(20, 1024)).astype(np.float32)
        q_item = rng.integers(-128, 128, size=(64, 1024)).astype(np.int8)
        acc = accumulate_codes(q_user, q_item)
        reference = q_user.astype(np.int64) @ q_item.astype(np.int64).T
        np.testing.assert_array_equal(acc.astype(np.int64), reference)

    def test_wide_factorizations_fall_back_to_int64(self):
        rng = np.random.default_rng(2)
        q_user = rng.integers(-127, 128, size=(3, 1500)).astype(np.float32)
        q_item = rng.integers(-128, 128, size=(5, 1500)).astype(np.int8)
        acc = accumulate_codes(q_user, q_item)
        reference = q_user.astype(np.int64) @ q_item.astype(np.int64).T
        np.testing.assert_array_equal(acc.astype(np.int64), reference)

    def test_query_quantization_handles_zero_rows(self):
        codes, scales = quantize_queries(np.vstack([np.zeros(4), np.ones(4)]))
        assert scales[0] == 1.0
        np.testing.assert_array_equal(codes[0], 0)
        assert np.abs(codes).max() <= 127


class TestScoring:
    def test_approximate_scores_close_to_exact(self, setup):
        _, index = setup
        quantized = QuantizedIndex.build(index)
        users = np.arange(20)
        exact = index.score(users)
        approx = quantized.score(users)
        # Error budget: per-branch dot over d elements with half-step item
        # and query error; generous envelope, tight enough to catch a
        # broken dequantization.
        span = exact.max() - exact.min()
        assert np.abs(exact - approx).max() < 0.05 * span

    def test_scores_preserve_index_dtype(self, setup):
        _, index = setup
        quantized = QuantizedIndex.build(index)
        assert quantized.score(np.arange(3)).dtype == quantized.dtype

    def test_block_scoring_matches_full_scan(self, setup):
        _, index = setup
        quantized = QuantizedIndex.build(index)
        users = np.arange(7)
        full = quantized.score(users)
        parts = np.hstack(
            [quantized.score_block(users, s, min(s + 50, index.n_items))
             for s in range(0, index.n_items, 50)]
        )
        np.testing.assert_array_equal(full, parts)

    def test_search_is_full_scan_topk_of_quantized_scores(self, setup):
        _, index = setup
        quantized = QuantizedIndex.build(index)
        users = np.arange(10)
        ids, scores = quantized.search(users, k=12)
        full = quantized.score(users)
        for row in range(len(users)):
            order = np.argsort(-full[row], kind="stable")[:12]
            np.testing.assert_array_equal(ids[row], order)
            np.testing.assert_array_equal(scores[row], full[row][order])

    def test_search_respects_exclusions_and_mask(self, setup):
        dataset, index = setup
        quantized = QuantizedIndex.build(index)
        users = np.arange(15)
        mask = np.zeros(index.n_items, dtype=bool)
        mask[: index.n_items // 2] = True
        csr = (index.exclude_indptr, index.exclude_indices)
        ids, scores = quantized.search(users, k=10, exclude_csr=csr, candidate_mask=mask)
        for row, user in enumerate(users):
            kept = ids[row][ids[row] >= 0]
            assert np.all(kept < index.n_items // 2)
            excluded = index.excluded_items(int(user))
            assert len(np.intersect1d(kept, excluded)) == 0


class TestPersistence:
    @pytest.mark.parametrize("fmt", ["npz", "dir"])
    def test_roundtrip(self, setup, fmt, tmp_path):
        _, index = setup
        quantized = QuantizedIndex.build(index)
        path = quantized.save(str(tmp_path / "codes"), format=fmt)
        loaded = QuantizedIndex.load(path, index)
        users = np.arange(9)
        np.testing.assert_array_equal(quantized.score(users), loaded.score(users))

    def test_load_rejects_wrong_catalog(self, setup, tmp_path):
        _, index = setup
        quantized = QuantizedIndex.build(index)
        path = quantized.save(str(tmp_path / "codes.npz"))
        other = hand_index(
            [np.ones((index.n_items + 1, 3))], [np.ones((index.n_users, 3))]
        )
        with pytest.raises(ValueError, match="built for"):
            QuantizedIndex.load(path, other)

    def test_load_rejects_other_artifact_kinds(self, setup, tmp_path):
        _, index = setup
        path = index.save(str(tmp_path / "index.npz"))
        with pytest.raises(ValueError, match="not a quantized index"):
            QuantizedIndex.load(path, index)
