"""Hot/cold tiered IVF: ceiling enforcement, parity with resident search."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.serving import export_index
from repro.serving.ann import (
    IVFIndex,
    TieredIndexConfig,
    TieredIVFIndex,
    build_ivf,
)


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    config = SyntheticConfig(
        n_users=80, n_items=320, n_categories=5, n_price_levels=4,
        interactions_per_user=8, seed=21,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=12, category_dim=6, rng=np.random.default_rng(3))
    model.eval()
    index = export_index(model, dataset)
    ivf = build_ivf(index, n_lists=16, nprobe=4, seed=0, pq=True)
    path = ivf.save(
        str(tmp_path_factory.mktemp("tiered") / "ann"),
        format="dir", include_items=True,
    )
    return dataset, index, ivf, path


class TestConfig:
    def test_requires_exactly_one_budget(self):
        with pytest.raises(ValueError, match="exactly one"):
            TieredIndexConfig()
        with pytest.raises(ValueError, match="exactly one"):
            TieredIndexConfig(hot_fraction=0.5, memory_ceiling_bytes=1000)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            TieredIndexConfig(hot_fraction=1.5)

    def test_rejects_negative_ceiling(self):
        with pytest.raises(ValueError):
            TieredIndexConfig(memory_ceiling_bytes=-1)


class TestTierSelection:
    def test_ceiling_is_respected(self, setup):
        _, index, _, path = setup
        ceiling = 200_000
        tiered = TieredIVFIndex.load(
            path, index, TieredIndexConfig(memory_ceiling_bytes=ceiling)
        )
        report = tiered.memory_report()
        assert report["tiers"]["hot"] <= ceiling
        assert report["memory_ceiling_bytes"] == ceiling

    def test_selection_is_deterministic(self, setup):
        _, index, _, path = setup
        config = TieredIndexConfig(memory_ceiling_bytes=200_000)
        a = TieredIVFIndex.load(path, index, config)
        b = TieredIVFIndex.load(path, index, config)
        np.testing.assert_array_equal(a.hot_lists, b.hot_lists)

    def test_hot_fraction_zero_keeps_everything_cold(self, setup):
        _, index, _, path = setup
        tiered = TieredIVFIndex.load(
            path, index, TieredIndexConfig(hot_fraction=0.0)
        )
        assert tiered.hot_lists.size == 0
        report = tiered.memory_report()
        assert report["tiers"]["hot"] == tiered.fixed_resident_bytes()

    def test_hot_fraction_one_pins_every_list(self, setup):
        _, index, _, path = setup
        tiered = TieredIVFIndex.load(
            path, index, TieredIndexConfig(hot_fraction=1.0)
        )
        assert tiered.hot_lists.size == tiered.n_lists
        assert tiered.memory_report()["tiers"]["cold"] == 0

    def test_heaviest_lists_selected_first(self, setup):
        """Under a tight budget, every admitted list must carry at least
        as much access mass as any skipped list it could swap with under
        the byte budget (greedy by mass, deterministic on ties)."""
        _, index, _, path = setup
        tiered = TieredIVFIndex.load(
            path, index, TieredIndexConfig(hot_fraction=0.25)
        )
        mass = tiered.access_mass()
        if tiered.hot_lists.size and tiered.hot_lists.size < tiered.n_lists:
            cold = np.setdiff1d(np.arange(tiered.n_lists), tiered.hot_lists)
            assert mass[tiered.hot_lists].min() >= 0
            # the heaviest list overall is always admitted first (it fits
            # unless it alone exceeds the budget, which 0.25x payload won't)
            assert np.argmax(mass) in tiered.hot_lists or mass.max() == 0

    def test_memory_report_totals_are_consistent(self, setup):
        _, index, _, path = setup
        tiered = TieredIVFIndex.load(
            path, index, TieredIndexConfig(hot_fraction=0.5)
        )
        report = tiered.memory_report()
        assert report["kind"] == "tiered-ivf-pq"
        assert report["bytes_total"] == report["tiers"]["hot"] + report["tiers"]["cold"]
        assert 0 <= report["hot_lists"] <= report["n_lists"]


class TestSearchParity:
    """Tiering changes where bytes live, never their values: every search
    must be bit-identical to the non-tiered index loaded from the same
    archive."""

    @pytest.mark.parametrize("hot_fraction", [0.0, 0.5, 1.0])
    @pytest.mark.parametrize("scorer", ["exact", "int8", "pq"])
    def test_matches_resident_index(self, setup, hot_fraction, scorer):
        _, index, _, path = setup
        resident = IVFIndex.load(path, index)
        tiered = TieredIVFIndex.load(
            path, index, TieredIndexConfig(hot_fraction=hot_fraction)
        )
        users = np.arange(40)
        csr = (index.exclude_indptr, index.exclude_indices)
        ids_a, scores_a = resident.search(users, 10, scorer=scorer, exclude_csr=csr)
        ids_b, scores_b = tiered.search(users, 10, scorer=scorer, exclude_csr=csr)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_array_equal(scores_a, scores_b)

    def test_full_probe_exact_matches_in_memory_build(self, setup):
        """End to end: archive roundtrip + tiering + full probe must still
        reproduce the original in-memory index's exact rankings bitwise."""
        _, index, ivf, path = setup
        tiered = TieredIVFIndex.load(
            path, index, TieredIndexConfig(hot_fraction=0.5)
        )
        users = np.arange(50)
        ids_a, scores_a = ivf.search(
            users, 10, nprobe=ivf.n_lists, scorer="exact"
        )
        ids_b, scores_b = tiered.search(
            users, 10, nprobe=tiered.n_lists, scorer="exact"
        )
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_array_equal(scores_a, scores_b)


class TestLoading:
    def test_rejects_archive_without_items(self, setup, tmp_path):
        _, index, ivf, _ = setup
        bare = ivf.save(str(tmp_path / "bare"), format="dir", include_items=False)
        with pytest.raises(ValueError, match="include_items"):
            TieredIVFIndex.load(
                bare, index, TieredIndexConfig(hot_fraction=0.5)
            )

    def test_rejects_wrong_catalog_shape(self, setup):
        _, index, _, path = setup
        config = SyntheticConfig(
            n_users=30, n_items=90, n_categories=3, n_price_levels=4,
            interactions_per_user=5, seed=1,
        )
        other_dataset = generate(config)[0]
        other_model = pup_full(
            other_dataset, global_dim=12, category_dim=6,
            rng=np.random.default_rng(1),
        )
        other_model.eval()
        other = export_index(other_model, other_dataset)
        with pytest.raises(ValueError, match="users"):
            TieredIVFIndex.load(
                path, other, TieredIndexConfig(hot_fraction=0.5)
            )

    def test_mmap_false_also_works(self, setup):
        _, index, _, path = setup
        tiered = TieredIVFIndex.load(
            path, index, TieredIndexConfig(hot_fraction=0.5), mmap=False
        )
        users = np.arange(10)
        ids, _ = tiered.search(users, 5)
        assert ids.shape == (10, 5)
