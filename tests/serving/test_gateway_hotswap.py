"""Satellite: hot-swap while the gateway is concurrently admitting/flushing.

The two failure modes being pinned, per the issue:

* a *neither-index* result — a request answered partly by index A and
  partly by index B (e.g. A's scores ranked against B's catalog state);
  every result must match one of the two indexes exactly;
* a deadlock between ``swap_index()`` (which drains under the service's
  flush lock) and the gateway's flusher thread (which flushes under the
  same lock).

The swap is barrier-coordinated so it reliably lands in the middle of the
submit storm, not before or after it.
"""

import threading

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.serving import GatewayConfig, RecommenderService, ServingGateway, export_index

from test_service_hotswap import rebuilt_index


@pytest.fixture(scope="module")
def index():
    config = SyntheticConfig(
        n_users=40, n_items=60, n_categories=4, n_price_levels=4,
        interactions_per_user=7, seed=13,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(5))
    model.eval()
    return export_index(model, dataset)


@pytest.mark.parametrize("trial", range(3))
def test_swap_under_load_never_mixes_indexes_or_deadlocks(index, trial):
    new_index = rebuilt_index(index)
    k = 8
    expected_old = {
        u: RecommenderService(index, default_k=k).recommend(u).items
        for u in range(index.n_users)
    }
    expected_new = {
        u: RecommenderService(new_index, default_k=k).recommend(u).items
        for u in range(index.n_users)
    }

    service = RecommenderService(index, default_k=k, max_batch_size=8, cache_capacity=32)
    config = GatewayConfig(max_queue_depth=256, max_wait_ms=1.0, max_batch_size=8)
    n_workers = 4
    # workers + swapper rendezvous so the swap lands mid-storm
    barrier = threading.Barrier(n_workers + 1)
    failures = []
    failures_lock = threading.Lock()

    def record(entry) -> None:
        with failures_lock:
            failures.append(entry)

    with ServingGateway(service, config) as gateway:
        def worker(seed: int) -> None:
            rng = np.random.default_rng(1000 * trial + seed)
            barrier.wait()
            for _ in range(60):
                user = int(rng.integers(0, index.n_users))
                try:
                    rec = gateway.submit(user).result(timeout=15.0)
                except Exception as exc:  # noqa: BLE001 - recorded for the assert
                    record((user, repr(exc)))
                    continue
                from_old = np.array_equal(rec.items, expected_old[user])
                from_new = np.array_equal(rec.items, expected_new[user])
                if not (from_old or from_new):
                    record((user, "neither-index result"))

        def swapper() -> None:
            barrier.wait()
            gateway.swap_index(new_index)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_workers)]
        swap_thread = threading.Thread(target=swapper)
        for t in threads:
            t.start()
        swap_thread.start()
        deadline_join = 60.0
        for t in threads + [swap_thread]:
            t.join(timeout=deadline_join)
            assert not t.is_alive(), "deadlock: thread still running after join timeout"

        assert not failures, failures[:5]

        # steady state after the swap: everything comes from the new index
        for user in range(0, index.n_users, 5):
            rec = gateway.submit(user).result(timeout=15.0)
            np.testing.assert_array_equal(rec.items, expected_new[user])


def test_requests_admitted_during_swap_get_new_index(index):
    """swap_index drains the old queue first; anything admitted after the
    swap returns must be answered wholly by the new index."""
    new_index = rebuilt_index(index)
    service = RecommenderService(index, default_k=6, max_batch_size=4, cache_capacity=0)
    with ServingGateway(
        service, GatewayConfig(max_queue_depth=64, max_wait_ms=5.0)
    ) as gateway:
        before = gateway.submit(1)
        gateway.swap_index(new_index)
        after = gateway.submit(1)
        expected_old = RecommenderService(index, default_k=6).recommend(1).items
        expected_new = RecommenderService(new_index, default_k=6).recommend(1).items
        np.testing.assert_array_equal(before.result(timeout=10.0).items, expected_old)
        np.testing.assert_array_equal(after.result(timeout=10.0).items, expected_new)


class _MismatchedANN:
    """An ANN index built for a different catalog (engine must reject it)."""

    kind = "mismatched"

    def __init__(self, n_items):
        self.n_items = n_items

    def search(self, *args, **kwargs):  # pragma: no cover - never reached
        raise AssertionError("a rejected ANN index must never be searched")


def test_failed_swap_rolls_back_completely(index):
    """Satellite: swap_index under failure must complete or roll back.

    A swap whose engine construction fails (here: an ANN index covering
    the wrong catalog) must leave the service answering from the old
    index, with the old cache intact — never a torn state where
    ``service.index`` is new but the engine still scores the old catalog.
    """
    new_index = rebuilt_index(index)
    service = RecommenderService(index, default_k=6, cache_capacity=32)
    with ServingGateway(
        service, GatewayConfig(max_queue_depth=64, max_wait_ms=2.0)
    ) as gateway:
        before = gateway.submit(2).result(timeout=10.0)
        old_engine = service.engine
        with pytest.raises(ValueError, match="rebuild the ann index"):
            gateway.swap_index(new_index, ann=_MismatchedANN(index.n_items + 99))
        # Rolled back: same index object, same engine, cache not evicted.
        assert service.index is index
        assert service.engine is old_engine
        after = gateway.submit(2).result(timeout=10.0)
        np.testing.assert_array_equal(after.items, before.items)
        assert after.cached, "a failed swap must not have flushed the cache"


def test_swap_mid_chaos_completes_or_rolls_back(index):
    """Satellite: hot-swap racing a fault storm either lands completely
    (every later answer matches the new index) or fails leaving the old
    index fully in charge — no mixed answers either way."""
    from repro.faults import SCORER_ERROR, FaultPlan, FaultSpec
    from repro.serving import DegradedResponse, ResilienceConfig

    new_index = rebuilt_index(index)
    k = 6
    expected_old = {
        u: RecommenderService(index, default_k=k).recommend(u).items
        for u in range(index.n_users)
    }
    expected_new = {
        u: RecommenderService(new_index, default_k=k).recommend(u).items
        for u in range(index.n_users)
    }
    plan = FaultPlan([FaultSpec(SCORER_ERROR, probability=0.2)], seed=9)
    service = RecommenderService(
        index, default_k=k, max_batch_size=8, cache_capacity=0,
        resilience=ResilienceConfig(retries=1, backoff_s=0.0),
        fault_plan=plan,
    )
    barrier = threading.Barrier(2)
    failures = []

    with ServingGateway(
        service, GatewayConfig(max_queue_depth=256, max_wait_ms=1.0)
    ) as gateway:
        def storm():
            barrier.wait()
            rng = np.random.default_rng(4)
            for _ in range(80):
                user = int(rng.integers(0, index.n_users))
                answer = gateway.submit(user).result(timeout=15.0)
                if isinstance(answer, DegradedResponse):
                    continue  # ladder answers are price-profile, not top-K
                from_old = np.array_equal(answer.items, expected_old[user])
                from_new = np.array_equal(answer.items, expected_new[user])
                if not (from_old or from_new):
                    failures.append((user, answer.items))

        worker = threading.Thread(target=storm)
        worker.start()
        barrier.wait()
        gateway.swap_index(new_index)
        worker.join(timeout=60.0)
        assert not worker.is_alive(), "chaos swap deadlocked"
        assert not failures, failures[:3]
        # the swap completed: steady state is wholly the new index
        answer = gateway.submit(5).result(timeout=15.0)
        while isinstance(answer, DegradedResponse):
            answer = gateway.submit(5).result(timeout=15.0)
        np.testing.assert_array_equal(answer.items, expected_new[5])
