"""f32/f64 parity through the serving path: identical top-K, close metrics."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.eval import evaluate
from repro.eval.topk import masked_topk
from repro.nn import precision
from repro.serving import export_index
from repro.train import TrainConfig, train_model


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(
        n_users=50, n_items=70, n_categories=5, n_price_levels=4,
        interactions_per_user=12, seed=9,
    )
    return generate(config)[0]


@pytest.fixture(scope="module")
def trained_f64(dataset):
    model = pup_full(
        dataset, global_dim=12, category_dim=4, rng=np.random.default_rng(0), dropout=0.0
    )
    train_model(model, dataset, TrainConfig(epochs=5, seed=0, lr_milestones=(3,)))
    return model


@pytest.fixture(scope="module")
def model_pair(dataset, trained_f64):
    """The same trained weights hosted in an f64 and an f32 model."""
    with precision("float32"):
        model32 = pup_full(
            dataset, global_dim=12, category_dim=4, rng=np.random.default_rng(0), dropout=0.0
        )
    model32.load_state_dict(trained_f64.state_dict())  # cast to f32 on load
    model32.eval()
    return trained_f64, model32


class TestTopKParity:
    def test_index_topk_identical_across_precisions(self, dataset, model_pair):
        """Property: for every user, the f32 index ranks the same top-K items
        as the f64 index built from the same weights."""
        model64, model32 = model_pair
        index64 = export_index(model64, dataset)
        index32 = export_index(model32, dataset)
        assert index32.branches[0].user.dtype == np.float32
        assert index64.branches[0].user.dtype == np.float64

        users = np.arange(dataset.n_users)
        scores64 = index64.score(users)
        scores32 = index32.score(users)
        np.testing.assert_allclose(scores32, scores64, rtol=1e-4, atol=1e-5)
        for user in users:
            exclude = index64.excluded_items(int(user))
            top64 = masked_topk(scores64[user], 10, exclude_items=exclude)
            top32 = masked_topk(scores32[user].astype(np.float64), 10, exclude_items=exclude)
            np.testing.assert_array_equal(
                top32, top64, err_msg=f"top-K diverged for user {user}"
            )

    def test_f32_index_halves_memory(self, dataset, model_pair):
        model64, model32 = model_pair
        bytes64 = export_index(model64, dataset).memory_bytes()
        bytes32 = export_index(model32, dataset).memory_bytes()
        assert bytes32 < 0.6 * bytes64

    def test_f32_index_roundtrips_through_disk(self, dataset, model_pair, tmp_path):
        from repro.serving import EmbeddingIndex

        _, model32 = model_pair
        index = export_index(model32, dataset)
        path = index.save(str(tmp_path / "index32.npz"))
        loaded = EmbeddingIndex.load(path)
        assert loaded.branches[0].user.dtype == np.float32
        np.testing.assert_array_equal(loaded.score([0, 1]), index.score([0, 1]))


class TestMetricParity:
    def test_eval_metrics_close_across_precisions(self, dataset, model_pair):
        model64, model32 = model_pair
        metrics64 = evaluate(model64, dataset, ks=(10, 20))
        metrics32 = evaluate(model32, dataset, ks=(10, 20))
        for name, value in metrics64.items():
            assert metrics32[name] == pytest.approx(value, abs=1e-6), name

    def test_f32_training_reaches_comparable_loss(self, dataset):
        """End-to-end: training natively in f32 lands within a few percent of
        the f64 loss trajectory (documented parity for docs/performance.md)."""
        config = TrainConfig(epochs=4, seed=0, lr_milestones=(3,))
        model64 = pup_full(
            dataset, global_dim=12, category_dim=4, rng=np.random.default_rng(0), dropout=0.0
        )
        loss64 = train_model(model64, dataset, config).final_loss
        with precision("float32"):
            model32 = pup_full(
                dataset, global_dim=12, category_dim=4, rng=np.random.default_rng(0), dropout=0.0
            )
        loss32 = train_model(model32, dataset, config).final_loss
        assert loss32 == pytest.approx(loss64, rel=0.05)

    def test_live_scores_match_index_scores_in_f32(self, dataset, model_pair):
        """The shared kernel guarantee holds in float32 too: live predict and
        the frozen index produce bit-identical scores."""
        _, model32 = model_pair
        index = export_index(model32, dataset)
        users = np.arange(0, dataset.n_users, 7)
        np.testing.assert_array_equal(model32.predict_scores(users), index.score(users))


class TestFrozenIndexAliasing:
    def test_exported_index_does_not_alias_live_weights(self, dataset):
        """Regression: ScoreBranch no longer copies at construction (keeps
        transient predict_scores zero-copy), so export_index's frozen_copy is
        what protects the index from continued training — verify it."""
        from repro.baselines import BPRMF

        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        index = export_index(model, dataset)
        users = np.arange(dataset.n_users)
        before = index.score(users).copy()
        for param in model.parameters():
            param.data += 17.0  # keep training / corrupt the live weights
        np.testing.assert_array_equal(index.score(users), before)
        for branch in index.branches:
            for param in model.parameters():
                assert not np.shares_memory(branch.user, param.data)
                assert not np.shares_memory(branch.item, param.data)
