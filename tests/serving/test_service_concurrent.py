"""Thread-safety satellites: concurrent submit/flush, timeouts, isolation.

The gateway's whole premise is that ``RecommenderService`` can be driven
from many threads at once; these tests pin the service-level contracts it
relies on, without a gateway in the picture:

* concurrent ``submit()``/``flush()`` never loses, duplicates, or
  cross-wires a request (every caller gets *their* user's answer);
* ``result(timeout=)`` raises the typed :class:`ResultTimeout` instead of
  blocking forever when nothing flushes;
* a request that fails inside a batch fails alone — its
  ``result()`` raises, its batch-mates still get answers;
* ``recommend_many(price_profiles=)`` steers cold users per-request.
"""

import threading

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.runtime import BatchRuntime, RuntimeConfig
from repro.serving import (
    COLD,
    WARM,
    PriceBandFilter,
    RecommenderService,
    ResultTimeout,
    export_index,
)


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=40, n_items=60, n_categories=4, n_price_levels=4,
        interactions_per_user=7, seed=13,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(5))
    model.eval()
    index = export_index(model, dataset)
    return dataset, model, index


class TestConcurrentSubmitFlush:
    def test_many_threads_each_get_their_own_answer(self, setup):
        """The multi-threaded regression for the unsynchronized queue:
        before the lock, racing appends/swaps could drop requests (a
        result() that never resolves) or mis-batch them."""
        _, _, index = setup
        service = RecommenderService(index, default_k=8, max_batch_size=16, cache_capacity=0)
        expected = {
            user: RecommenderService(index, default_k=8).recommend(user).items
            for user in range(index.n_users)
        }
        n_threads, per_thread = 8, 50
        barrier = threading.Barrier(n_threads)
        failures = []

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            barrier.wait()
            for _ in range(per_thread):
                user = int(rng.integers(0, index.n_users))
                pending = service.submit(user)
                # Racing flushes: ours may see an empty queue because
                # another thread's flush already took the request — the
                # timed wait below then covers that flush finishing.
                service.flush()
                try:
                    rec = pending.result(timeout=10.0)
                except Exception as exc:  # noqa: BLE001 - recorded for the assert
                    failures.append((user, repr(exc)))
                    continue
                if rec.user != user or not np.array_equal(rec.items, expected[user]):
                    failures.append((user, "wrong answer"))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures[:5]
        assert service.queue_depth == 0
        assert service.stats.requests == n_threads * per_thread

    def test_concurrent_flushes_cover_disjoint_snapshots(self, setup):
        """Racing flushes must partition the queue: every pending resolves
        exactly once, total resolved == total submitted."""
        _, _, index = setup
        service = RecommenderService(index, default_k=5, max_batch_size=10**9, cache_capacity=0)
        users = [u % index.n_users for u in range(200)]
        pendings = [service.submit(u) for u in users]
        counts = []
        barrier = threading.Barrier(4)

        def flusher() -> None:
            barrier.wait()
            counts.append(service.flush())

        threads = [threading.Thread(target=flusher) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(counts) == len(users)
        assert all(p.done for p in pendings)

    def test_cache_survives_concurrent_readers_and_writers(self, setup):
        _, _, index = setup
        service = RecommenderService(index, default_k=5, cache_capacity=8)
        errors = []

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(150):
                    user = int(rng.integers(0, index.n_users))
                    service.recommend(user)
                    if rng.random() < 0.1:
                        service.invalidate(user)
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[:3]
        assert service.cache_size <= 8


class TestResultTimeout:
    def test_timeout_raises_typed_error_when_nothing_flushes(self, setup):
        _, _, index = setup
        service = RecommenderService(index, default_k=5, max_batch_size=10**9)
        pending = service.submit(0)
        with pytest.raises(ResultTimeout):
            pending.result(timeout=0.02)
        assert isinstance(ResultTimeout("x"), TimeoutError)  # typed contract
        # the request is still queued and still answerable
        service.flush()
        assert pending.result(timeout=1.0).user == 0

    def test_timeout_none_still_forces_a_flush(self, setup):
        _, _, index = setup
        service = RecommenderService(index, default_k=5, max_batch_size=10**9)
        pending = service.submit(1)
        assert pending.result().user == 1  # no explicit flush needed

    def test_wait_resolves_without_flushing(self, setup):
        _, _, index = setup
        service = RecommenderService(index, default_k=5, max_batch_size=10**9)
        pending = service.submit(2)
        assert pending.wait(timeout=0.01) is False
        service.flush()
        assert pending.wait(timeout=1.0) is True


class TestFailureIsolation:
    def test_failed_group_does_not_poison_other_groups(self, setup):
        """One batch group blowing up fails *its* requests via result();
        requests in other groups of the same flush still succeed."""
        _, _, index = setup
        service = RecommenderService(index, default_k=5, max_batch_size=10**9, cache_capacity=0)
        boom = RuntimeError("injected failure")
        real_topk = service.engine.topk

        def exploding_topk(users, k, exclude_train=True, filters=()):
            if k == 7:  # only the k=7 group fails
                raise boom
            return real_topk(users, k=k, exclude_train=exclude_train, filters=filters)

        service.engine.topk = exploding_topk
        doomed = service.submit(0, k=7)
        survivor = service.submit(1, k=5)
        service.flush()
        with pytest.raises(RuntimeError, match="injected failure"):
            doomed.result(timeout=1.0)
        assert survivor.result(timeout=1.0).user == 1

    def test_single_cold_request_failure_is_isolated(self, setup):
        """Per-request isolation inside one cold profile group: a request
        whose per-user ranking throws fails alone."""
        _, _, index = setup
        service = RecommenderService(index, default_k=5, max_batch_size=10**9, cache_capacity=0)
        cold_a, cold_b = index.n_users + 500, index.n_users + 501
        real = service.engine.topk_from_scores
        calls = {"n": 0}

        def flaky(scores, k, exclude_items=None, filters=()):
            calls["n"] += 1
            if calls["n"] == 1:  # first cold request in the group fails
                raise ValueError("ranker hiccup")
            return real(scores, k=k, exclude_items=exclude_items, filters=filters)

        service.engine.topk_from_scores = flaky
        first = service.submit(cold_a)
        second = service.submit(cold_b)
        service.flush()
        with pytest.raises(ValueError, match="ranker hiccup"):
            first.result(timeout=1.0)
        rec = second.result(timeout=1.0)
        assert rec.source == COLD and len(rec.items) == 5


class TestRecommendManyPriceProfiles:
    def test_shared_profile_steers_every_cold_user(self, setup):
        dataset, _, index = setup
        service = RecommenderService(index, default_k=5, cache_capacity=0)
        cheap = np.zeros(dataset.n_price_levels)
        cheap[0] = 1.0
        cold_users = [index.n_users + 100 + i for i in range(4)]
        recs = service.recommend_many(cold_users, price_profiles=cheap)
        for rec in recs:
            assert rec.source == COLD
            assert (dataset.item_price_levels[rec.items] == 0).all()

    def test_per_user_profiles_apply_individually(self, setup):
        dataset, _, index = setup
        service = RecommenderService(index, default_k=5, cache_capacity=0)
        cheap = np.zeros(dataset.n_price_levels)
        cheap[0] = 1.0
        pricey = np.zeros(dataset.n_price_levels)
        pricey[-1] = 1.0
        users = [0, index.n_users + 100, index.n_users + 101]
        recs = service.recommend_many(users, price_profiles=[None, cheap, pricey])
        assert recs[0].source == WARM  # warm users ignore profiles
        assert (dataset.item_price_levels[recs[1].items] == 0).all()
        assert (
            dataset.item_price_levels[recs[2].items] == dataset.n_price_levels - 1
        ).all()

    def test_length_mismatch_rejected(self, setup):
        _, _, index = setup
        service = RecommenderService(index, default_k=5)
        with pytest.raises(ValueError, match="price_profiles has 1 entries"):
            service.recommend_many([1, 2], price_profiles=[None])

    def test_profiles_do_not_change_warm_results(self, setup):
        _, _, index = setup
        service = RecommenderService(index, default_k=6, cache_capacity=0)
        users = list(range(0, index.n_users, 3))
        plain = service.recommend_many(users)
        shared = np.ones(index.n_price_levels) / index.n_price_levels
        steered = service.recommend_many(users, price_profiles=shared)
        for a, b in zip(plain, steered):
            if a.source == WARM:
                np.testing.assert_array_equal(a.items, b.items)


class TestRuntimeBackendRouting:
    def test_runtime_backend_is_bit_identical_to_engine(self, setup):
        """The optional BatchRuntime backend must change throughput only:
        ids and scores are bit-identical to the in-process engine path."""
        _, _, index = setup
        runtime = BatchRuntime(
            index,
            config=RuntimeConfig(shards=2, workers=2, mode="thread"),
            exclude_csr=(index.exclude_indptr, index.exclude_indices),
        )
        routed = RecommenderService(
            index, default_k=8, cache_capacity=0, runtime=runtime, max_batch_size=10**9
        )
        plain = RecommenderService(index, default_k=8, cache_capacity=0, max_batch_size=10**9)
        users = list(range(index.n_users))
        via_runtime = routed.recommend_many(users)
        via_engine = plain.recommend_many(users)
        for a, b in zip(via_runtime, via_engine):
            np.testing.assert_array_equal(a.items, b.items)
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_filtered_requests_stay_on_engine(self, setup):
        dataset, _, index = setup
        runtime = BatchRuntime(
            index,
            config=RuntimeConfig(shards=2, workers=2, mode="thread"),
            exclude_csr=(index.exclude_indptr, index.exclude_indices),
        )
        service = RecommenderService(index, default_k=8, cache_capacity=0, runtime=runtime)
        rec = service.recommend(1, k=5, filters=[PriceBandFilter(0, 1)])
        assert (dataset.item_price_levels[rec.items] <= 1).all()
