"""Resilience policies: breaker, retries, deadlines, degradation ladder.

Unit-level breaker mechanics run against an injectable clock; the
integration tests drive a real service through seeded fault plans and pin
the exactly-once outcome accounting the chaos gate audits.
"""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.faults import SCORER_DELAY, SCORER_ERROR, FaultPlan, FaultSpec
from repro.serving import (
    BackendError,
    DeadlineExceeded,
    DegradedResponse,
    RecommenderService,
    ResilienceConfig,
    export_index,
    is_transient,
)
from repro.serving.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


@pytest.fixture(scope="module")
def index():
    config = SyntheticConfig(
        n_users=40, n_items=60, n_categories=4, n_price_levels=4,
        interactions_per_user=7, seed=13,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(5))
    model.eval()
    return export_index(model, dataset)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTransience:
    def test_programming_errors_are_permanent(self):
        for error in (ValueError("x"), TypeError("x"), KeyError("x"),
                      IndexError("x"), AssertionError("x"), NotImplementedError("x")):
            assert not is_transient(error)

    def test_runtime_failures_are_transient(self):
        for error in (RuntimeError("x"), OSError("x"), TimeoutError("x"),
                      MemoryError("x")):
            assert is_transient(error)


class TestCircuitBreaker:
    def make(self, clock, **kwargs):
        defaults = dict(window=8, error_threshold=0.5, min_samples=4,
                        open_s=1.0, half_open_probes=2, clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults)

    def test_stays_closed_below_threshold(self):
        breaker = self.make(FakeClock())
        for _ in range(20):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()

    def test_opens_on_error_rate_with_min_samples(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED, "below min_samples must not trip"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_half_open_after_open_period_then_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.now = 1.5
        assert breaker.allow()  # first probe admitted
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == HALF_OPEN, "needs all probes before closing"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.now = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.now = 1.6
        assert not breaker.allow(), "open period restarts on re-open"

    def test_transition_hook_sees_every_state_change(self):
        clock = FakeClock()
        seen = []
        breaker = self.make(clock, on_transition=lambda s: seen.append(s))
        for _ in range(4):
            breaker.record_failure()
        clock.now = 1.5
        breaker.allow()
        breaker.record_success()
        breaker.allow()
        breaker.record_success()
        assert seen == [OPEN, HALF_OPEN, CLOSED]


class TestRetries:
    def test_transient_error_is_retried_to_success(self, index):
        plan = FaultPlan([FaultSpec(SCORER_ERROR, times=(0,))])
        service = RecommenderService(
            index, resilience=ResilienceConfig(backoff_s=0.0), fault_plan=plan
        )
        answer = service.recommend(3)
        assert not isinstance(answer, DegradedResponse)
        assert service.stats.retries == 1
        assert service.stats.outcome_count("ok") == 1

    def test_non_transient_error_propagates_raw(self, index, monkeypatch):
        service = RecommenderService(index, resilience=ResilienceConfig())

        def poisoned(*args, **kwargs):
            raise ValueError("bad topk arguments")

        monkeypatch.setattr(service.engine, "topk", poisoned)
        with pytest.raises(ValueError, match="bad topk arguments"):
            service.recommend(3)
        assert service.stats.retries == 0
        assert service.stats.outcome_count("failed") == 1

    def test_exhausted_retries_without_degrade_raise_backend_error(self, index):
        plan = FaultPlan([FaultSpec(SCORER_ERROR, probability=1.0)])
        service = RecommenderService(
            index,
            resilience=ResilienceConfig(retries=1, backoff_s=0.0, degrade=False),
            fault_plan=plan,
        )
        with pytest.raises(BackendError, match="after 2 attempt"):
            service.recommend(3)
        assert service.stats.outcome_count("failed") == 1

    def test_no_policy_means_raw_failure(self, index):
        plan = FaultPlan([FaultSpec(SCORER_ERROR, times=(0,))])
        service = RecommenderService(index, fault_plan=plan)
        with pytest.raises(RuntimeError, match="injected fault"):
            service.recommend(3)
        assert service.stats.retries == 0


class TestDegradationLadder:
    def test_exhausted_retries_degrade_to_profile(self, index):
        plan = FaultPlan([FaultSpec(SCORER_ERROR, probability=1.0)])
        service = RecommenderService(
            index,
            resilience=ResilienceConfig(retries=1, backoff_s=0.0),
            fault_plan=plan,
        )
        answer = service.recommend(3, k=5)
        assert isinstance(answer, DegradedResponse)
        assert answer.stage == "error_profile"
        assert len(answer.items) == 5
        assert service.stats.fallback_count("error_profile") == 1
        assert service.stats.outcome_count("degraded") == 1

    def test_degraded_answers_are_never_cached(self, index):
        plan = FaultPlan([FaultSpec(SCORER_ERROR, times=(0, 1))])
        service = RecommenderService(
            index,
            resilience=ResilienceConfig(retries=1, backoff_s=0.0),
            fault_plan=plan,
        )
        degraded = service.recommend(3)
        assert isinstance(degraded, DegradedResponse)
        healthy = service.recommend(3)  # plan exhausted: real answer
        assert not isinstance(healthy, DegradedResponse)
        assert not healthy.cached, "degraded result must not have been cached"

    def test_open_breaker_short_circuits_to_degraded(self, index):
        plan = FaultPlan([FaultSpec(SCORER_ERROR, probability=1.0)])
        config = ResilienceConfig(
            retries=0, backoff_s=0.0, breaker_window=8,
            breaker_min_samples=2, breaker_error_threshold=0.5,
            breaker_open_s=60.0,
        )
        service = RecommenderService(
            index, resilience=config, fault_plan=plan, cache_capacity=0
        )
        for user in range(5):
            assert isinstance(service.recommend(user), DegradedResponse)
        assert service.resilience.state == "open"
        assert service.stats.fallback_count("breaker_profile") >= 1
        # Once open, the scorer is no longer consulted at all.
        consulted_before = plan.occurrences(SCORER_ERROR)
        service.recommend(20)
        assert plan.occurrences(SCORER_ERROR) == consulted_before

    def test_breaker_state_gauge_tracks_transitions(self, index):
        plan = FaultPlan([FaultSpec(SCORER_ERROR, probability=1.0)])
        config = ResilienceConfig(
            retries=0, backoff_s=0.0, breaker_min_samples=2,
            breaker_error_threshold=0.5, breaker_open_s=60.0,
        )
        service = RecommenderService(
            index, resilience=config, fault_plan=plan, cache_capacity=0
        )
        gauge = service.registry.gauge(
            "gateway_breaker_state",
            "Circuit breaker state: 0 closed, 1 open, 2 half-open.",
        )
        assert gauge.value() == 0.0
        for user in range(4):
            service.recommend(user)
        assert gauge.value() == 1.0  # 1 == open


class TestDeadlines:
    def test_expired_request_fails_typed_before_scoring(self, index):
        clock = FakeClock()
        service = RecommenderService(index, clock=clock)
        pending = service.submit(5, deadline_s=0.5)
        clock.now = 1.0
        service.flush()
        with pytest.raises(DeadlineExceeded, match="user 5"):
            pending.result(timeout=1.0)
        assert service.stats.deadline_exceeded == 1
        assert service.stats.outcome_count("failed") == 1

    def test_live_requests_in_same_batch_still_answer(self, index):
        clock = FakeClock()
        service = RecommenderService(index, clock=clock)
        doomed = service.submit(5, deadline_s=0.5)
        fine = service.submit(6)
        clock.now = 1.0
        service.flush()
        with pytest.raises(DeadlineExceeded):
            doomed.result(timeout=1.0)
        assert len(fine.result(timeout=1.0).items) > 0

    def test_deadline_validation(self, index):
        service = RecommenderService(index)
        with pytest.raises(ValueError, match="deadline_s"):
            service.submit(5, deadline_s=0.0)


class TestOutcomeAccounting:
    def test_every_request_resolves_exactly_once(self, index):
        plan = FaultPlan(
            [
                FaultSpec(SCORER_ERROR, times=(1, 2, 8)),
                FaultSpec(SCORER_DELAY, times=(4,), delay_s=0.001),
            ]
        )
        service = RecommenderService(
            index,
            resilience=ResilienceConfig(retries=1, backoff_s=0.0),
            fault_plan=plan,
            cache_capacity=0,
        )
        n = 30
        for user in range(n):
            service.recommend(user)
        stats = service.stats
        total = sum(stats.outcome_count(o) for o in ("ok", "degraded", "failed"))
        assert total == n
        assert stats.outcome_count("degraded") >= 1
