"""Gateway under faults: supervised flusher, watchdog restart, deadlines.

Regression target: a flusher thread dying with an uncaught exception used
to leave every queued request waiting forever (the silent-hang bug).  The
supervisor must fail pending requests with a *typed* error and restart the
loop, and the books must still balance.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.faults import FLUSHER_CRASH, FaultPlan, FaultSpec
from repro.serving import (
    DeadlineExceeded,
    FlusherCrashed,
    GatewayConfig,
    RecommenderService,
    ResilienceConfig,
    ServingGateway,
    export_index,
)


@pytest.fixture(scope="module")
def index():
    config = SyntheticConfig(
        n_users=40, n_items=60, n_categories=4, n_price_levels=4,
        interactions_per_user=7, seed=13,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(5))
    model.eval()
    return export_index(model, dataset)


class TestFlusherSupervision:
    def test_crash_fails_pending_typed_and_restarts(self, index):
        plan = FaultPlan([FaultSpec(FLUSHER_CRASH, times=(0,))])
        service = RecommenderService(index)
        gateway = ServingGateway(
            service, GatewayConfig(max_wait_ms=5.0), fault_plan=plan
        )
        try:
            pending = gateway.submit(7)
            with pytest.raises(FlusherCrashed, match="restarted"):
                pending.result(timeout=10.0)
            # The supervisor restarted the loop: the gateway still serves.
            answer = gateway.submit(8).result(timeout=10.0)
            assert len(answer.items) > 0
            assert gateway.flusher_restarts() == 1
            assert gateway.snapshot()["flusher_restarts"] == 1.0
        finally:
            gateway.close()

    def test_crash_mid_concurrent_load_leaves_no_hung_request(self, index):
        """The regression test: kill the flusher while a thread storm is
        submitting; every admitted request must resolve within the timeout
        as either an answer or a typed error — zero silent hangs."""
        plan = FaultPlan([FaultSpec(FLUSHER_CRASH, times=(5, 11))])
        service = RecommenderService(index, max_batch_size=4)
        gateway = ServingGateway(
            service,
            GatewayConfig(max_wait_ms=1.0, max_batch_size=4, max_queue_depth=256),
            fault_plan=plan,
        )
        n_threads, per_thread = 6, 20
        outcomes = []
        lock = threading.Lock()

        def worker(base):
            local = []
            for i in range(per_thread):
                try:
                    answer = gateway.submit((base + i) % index.n_users).result(timeout=15.0)
                    local.append(("ok", len(answer.items)))
                except FlusherCrashed:
                    local.append(("crashed", 0))
            with lock:
                outcomes.extend(local)

        threads = [
            threading.Thread(target=worker, args=(t * per_thread,))
            for t in range(n_threads)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(t.is_alive() for t in threads), "a client hung"
        finally:
            gateway.close()

        assert len(outcomes) == n_threads * per_thread
        kinds = {kind for kind, _ in outcomes}
        assert "ok" in kinds
        assert all(size > 0 for kind, size in outcomes if kind == "ok")
        assert gateway.flusher_restarts() >= 1

    def test_submit_watchdog_revives_dead_flusher(self, index):
        service = RecommenderService(index)
        gateway = ServingGateway(service, GatewayConfig(max_wait_ms=2.0))
        try:
            # Simulate a flusher that died in a way the supervisor never
            # saw (e.g. killed by the runtime): swap in a dead thread.
            dead = threading.Thread(target=lambda: None)
            dead.start()
            dead.join()
            gateway._flusher = dead
            answer = gateway.submit(3).result(timeout=10.0)
            assert len(answer.items) > 0
            assert gateway._flusher.is_alive()
        finally:
            gateway.close()

    def test_close_does_not_restart_the_flusher(self, index):
        service = RecommenderService(index)
        gateway = ServingGateway(service, GatewayConfig(max_wait_ms=1.0))
        gateway.submit(1).result(timeout=10.0)
        gateway.close()
        time.sleep(0.05)
        assert not gateway._flusher.is_alive()


class TestGatewayDeadlines:
    def test_config_deadline_applies_to_every_request(self, index):
        service = RecommenderService(index)
        gateway = ServingGateway(
            service,
            # Queue requests faster than the flusher may run them: a
            # 0.01 ms deadline expires before any flush can happen.
            GatewayConfig(max_wait_ms=50.0, deadline_ms=0.01),
        )
        try:
            pending = gateway.submit(3)
            with pytest.raises(DeadlineExceeded):
                pending.result(timeout=10.0)
            assert service.stats.deadline_exceeded >= 1
        finally:
            gateway.close()

    def test_per_request_deadline_overrides_config(self, index):
        service = RecommenderService(index)
        gateway = ServingGateway(
            service, GatewayConfig(max_wait_ms=1.0, deadline_ms=0.01)
        )
        try:
            # A generous per-request deadline wins over the doomed default.
            answer = gateway.submit(3, deadline_ms=30_000.0).result(timeout=10.0)
            assert len(answer.items) > 0
        finally:
            gateway.close()

    def test_deadline_validation(self, index):
        with pytest.raises(ValueError, match="deadline_ms"):
            GatewayConfig(deadline_ms=-1.0)


class TestChaosWithResilience:
    def test_flusher_crashes_and_scorer_errors_compose(self, index):
        from repro.faults import SCORER_ERROR

        plan = FaultPlan(
            [
                FaultSpec(FLUSHER_CRASH, times=(3,)),
                FaultSpec(SCORER_ERROR, times=(2, 6)),
            ]
        )
        service = RecommenderService(
            index,
            resilience=ResilienceConfig(retries=1, backoff_s=0.0),
            fault_plan=plan,
        )
        gateway = ServingGateway(
            service, GatewayConfig(max_wait_ms=1.0), fault_plan=plan
        )
        resolved = 0
        try:
            for user in range(25):
                try:
                    gateway.submit(user % index.n_users).result(timeout=15.0)
                    resolved += 1
                except FlusherCrashed:
                    resolved += 1
        finally:
            gateway.close()
        assert resolved == 25
        stats = service.stats
        total = sum(stats.outcome_count(o) for o in ("ok", "degraded", "failed"))
        assert total == 25
