"""Export parity: frozen index scores == live model scores."""

import numpy as np
import pytest

from repro.baselines import BPRMF, FM, GCMC, NGCF, DeepFM, ItemPop, LightGCN, PaDQ
from repro.core import (
    pup_full,
    pup_minus,
    pup_with_category,
    pup_with_price,
    pup_without_price_and_category,
)
from repro.data import SyntheticConfig, generate
from repro.serving import ExportError, export_index, export_index_from_checkpoint
from repro.train import save_checkpoint


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(
        n_users=40, n_items=50, n_categories=4, n_price_levels=4,
        interactions_per_user=7, seed=11,
    )
    return generate(config)[0]


MODEL_FACTORIES = {
    "pup_full": lambda ds, rng: pup_full(ds, global_dim=12, category_dim=6, rng=rng),
    "pup_minus": lambda ds, rng: pup_minus(ds, global_dim=12, category_dim=6, rng=rng),
    "pup_with_price": lambda ds, rng: pup_with_price(ds, global_dim=12, category_dim=6, rng=rng),
    "pup_with_category": lambda ds, rng: pup_with_category(ds, global_dim=12, category_dim=6, rng=rng),
    "pup_plain_gcn": lambda ds, rng: pup_without_price_and_category(ds, global_dim=12, category_dim=6, rng=rng),
    "bpr_mf": lambda ds, rng: BPRMF(ds, dim=8, rng=rng),
    "lightgcn": lambda ds, rng: LightGCN(ds, dim=8, rng=rng),
    "ngcf": lambda ds, rng: NGCF(ds, dim=8, rng=rng),
    "gcmc": lambda ds, rng: GCMC(ds, dim=8, rng=rng),
    "fm": lambda ds, rng: FM(ds, dim=8, rng=rng),
    "padq": lambda ds, rng: PaDQ(ds, dim=8, rng=rng),
    "itempop": lambda ds, rng: ItemPop(ds),
}


class TestExportParity:
    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_index_scores_equal_predict_scores(self, dataset, name):
        model = MODEL_FACTORIES[name](dataset, np.random.default_rng(4))
        model.eval()
        index = export_index(model, dataset)
        users = np.arange(dataset.n_users)
        np.testing.assert_array_equal(index.score(users), model.predict_scores(users))

    def test_export_restores_training_mode(self, dataset):
        model = pup_full(dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(0))
        model.train()
        export_index(model, dataset)
        assert model.training

    def test_deepfm_is_not_exportable(self, dataset):
        model = DeepFM(dataset, dim=8, hidden=(8,), rng=np.random.default_rng(0))
        with pytest.raises(ExportError, match="factorizable"):
            export_index(model, dataset)

    def test_index_carries_catalog_and_exclusions(self, dataset):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(1))
        index = export_index(model, dataset, extra={"note": "abc"})
        np.testing.assert_array_equal(index.item_categories, dataset.item_categories)
        np.testing.assert_array_equal(index.item_price_levels, dataset.item_price_levels)
        np.testing.assert_array_equal(index.item_popularity, dataset.item_popularity())
        assert index.extra["note"] == "abc"
        train_pos = dataset.train_positive_sets()
        for user in range(dataset.n_users):
            expected = np.array(sorted(train_pos.get(user, ())), dtype=np.int64)
            np.testing.assert_array_equal(index.excluded_items(user), expected)
            assert index.is_warm(user) == (len(expected) > 0)

    def test_unseen_users_are_cold(self, dataset):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(1))
        index = export_index(model, dataset)
        assert not index.is_warm(dataset.n_users)
        assert not index.is_warm(-1)


class TestCheckpointExport:
    def test_checkpoint_to_index_matches_direct_export(self, dataset, tmp_path):
        model = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(7))
        model.eval()
        path = save_checkpoint(model, str(tmp_path / "pup"))
        direct = export_index(model, dataset)

        clone = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(99))
        via_ckpt = export_index_from_checkpoint(path, clone, dataset)
        users = np.arange(dataset.n_users)
        np.testing.assert_array_equal(via_ckpt.score(users), direct.score(users))
        assert via_ckpt.extra["checkpoint"]["model_class"] == "PUP"
