"""Archive-format parity for every ANN index kind.

The compact ``.npz`` and the mmap-able per-array ``dir`` archive must be
interchangeable: an index loaded from either format (and, for ``dir``,
through mmap or a full read) must return bit-identical search results.
"""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.serving import QuantizedIndex, export_index
from repro.serving.ann import IVFIndex, PQIndex, build_ivf, build_pq


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=60, n_items=240, n_categories=4, n_price_levels=4,
        interactions_per_user=7, seed=17,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=12, category_dim=6, rng=np.random.default_rng(9))
    model.eval()
    index = export_index(model, dataset)
    return dataset, index


def assert_search_parity(reference, candidates, index, scorers=(None,)):
    """Same ids and scores, bitwise, for every loaded variant and scorer."""
    users = np.arange(35)
    csr = (index.exclude_indptr, index.exclude_indices)
    for scorer in scorers:
        kwargs = {"exclude_csr": csr}
        if scorer is not None:
            kwargs["scorer"] = scorer
        ids_ref, scores_ref = reference.search(users, 10, **kwargs)
        for label, ann in candidates.items():
            ids, scores = ann.search(users, 10, **kwargs)
            np.testing.assert_array_equal(
                ids_ref, ids, err_msg=f"{label} (scorer={scorer}) ids diverge"
            )
            np.testing.assert_array_equal(
                scores_ref, scores, err_msg=f"{label} (scorer={scorer}) scores diverge"
            )


class TestQuantizedFormats:
    def test_npz_dir_and_mmap_agree(self, setup, tmp_path):
        _, index = setup
        quantized = QuantizedIndex.build(index)
        npz = quantized.save(str(tmp_path / "q.npz"))
        d = quantized.save(str(tmp_path / "q_dir"), format="dir")
        assert_search_parity(
            quantized,
            {
                "npz": QuantizedIndex.load(npz, index),
                "dir": QuantizedIndex.load(d, index),
                "dir+mmap": QuantizedIndex.load(d, index, mmap=True),
            },
            index,
        )


class TestIVFFormats:
    @pytest.mark.parametrize("include_items", [False, True])
    def test_npz_dir_and_mmap_agree(self, setup, tmp_path, include_items):
        _, index = setup
        ivf = build_ivf(index, n_lists=10, nprobe=3, seed=0)
        npz = ivf.save(str(tmp_path / f"ivf{include_items}.npz"))
        d = ivf.save(
            str(tmp_path / f"ivf_dir{include_items}"),
            format="dir", include_items=include_items,
        )
        assert_search_parity(
            ivf,
            {
                "npz": IVFIndex.load(npz, index),
                "dir": IVFIndex.load(d, index),
                "dir+mmap": IVFIndex.load(d, index, mmap=True),
            },
            index,
            scorers=("exact", "int8"),
        )


class TestIVFPQFormats:
    def test_npz_dir_and_mmap_agree(self, setup, tmp_path):
        _, index = setup
        ivf = build_ivf(index, n_lists=10, nprobe=3, seed=0, pq=True)
        npz = ivf.save(str(tmp_path / "ivfpq.npz"))
        d = ivf.save(str(tmp_path / "ivfpq_dir"), format="dir", include_items=True)
        loaded = {
            "npz": IVFIndex.load(npz, index),
            "dir": IVFIndex.load(d, index),
            "dir+mmap": IVFIndex.load(d, index, mmap=True),
        }
        for ann in loaded.values():
            assert ann.default_scorer == "pq"
            assert ann.rerank_factor == ivf.rerank_factor
            assert ann.pq.residual
            for a, b in zip(ann._pq_list_means, ivf._pq_list_means):
                np.testing.assert_array_equal(np.asarray(a), b)
        assert_search_parity(
            ivf, loaded, index, scorers=("exact", "int8", "pq")
        )


class TestPQFormats:
    @pytest.mark.parametrize("rotation", [False, True])
    def test_npz_dir_and_mmap_agree(self, setup, tmp_path, rotation):
        _, index = setup
        pq = build_pq(index, seed=0, rotation=rotation)
        npz = pq.save(str(tmp_path / f"pq{rotation}.npz"))
        d = pq.save(str(tmp_path / f"pq_dir{rotation}"), format="dir")
        assert_search_parity(
            pq,
            {
                "npz": PQIndex.load(npz, index),
                "dir": PQIndex.load(d, index),
                "dir+mmap": PQIndex.load(d, index, mmap=True),
            },
            index,
        )


class TestMemoryReports:
    """Every ANN kind answers the same memory_report shape — the contract
    the serving stats gauge publishes."""

    def test_report_shape_is_uniform(self, setup):
        _, index = setup
        kinds = {
            "int8": QuantizedIndex.build(index),
            "ivf": build_ivf(index, n_lists=10, seed=0),
            "ivf-pq": build_ivf(index, n_lists=10, seed=0, pq=True),
            "pq": build_pq(index, seed=0),
        }
        for expected_kind, ann in kinds.items():
            report = ann.memory_report()
            assert report["kind"] == expected_kind
            assert set(report) >= {"kind", "bytes_total", "bytes_per_item", "tiers"}
            assert set(report["tiers"]) == {"hot", "cold"}
            assert report["bytes_total"] > 0
            assert report["bytes_per_item"] > 0
            assert report["tiers"]["hot"] + report["tiers"]["cold"] >= 0


class TestCorruptionDetection:
    """Satellite to the checksum work: a flipped payload byte in a saved
    archive of *any* ANN kind must surface as a typed
    :class:`ArchiveCorrupted` on load, never as silently-wrong search
    results."""

    BUILDERS = {
        "quantized": (lambda index: QuantizedIndex.build(index), QuantizedIndex),
        "ivf": (lambda index: build_ivf(index, n_lists=10, nprobe=3, seed=0), IVFIndex),
        "ivfpq": (
            lambda index: build_ivf(index, n_lists=10, nprobe=3, seed=0, pq=True),
            IVFIndex,
        ),
        "pq": (lambda index: build_pq(index, seed=0), PQIndex),
    }

    @pytest.mark.parametrize("kind", sorted(BUILDERS))
    @pytest.mark.parametrize("fmt", ["npz", "dir"])
    def test_corrupted_archive_refuses_to_load(self, setup, tmp_path, kind, fmt):
        from repro.faults import corrupt_archive
        from repro.train.persistence import ArchiveCorrupted

        _, index = setup
        build, cls = self.BUILDERS[kind]
        ann = build(index)
        if fmt == "npz":
            path = ann.save(str(tmp_path / f"{kind}.npz"))
        else:
            path = ann.save(str(tmp_path / f"{kind}_dir"), format="dir")
        victim = corrupt_archive(path, seed=1)
        with pytest.raises(ArchiveCorrupted, match=victim):
            cls.load(path, index)
