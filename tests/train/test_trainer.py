"""Tests for TrainConfig and the BPR training loop."""

import numpy as np
import pytest

from repro.baselines import BPRMF, ItemPop, PaDQ
from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.train import TrainConfig, Trainer, TrainResult, train_model


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(
        n_users=40, n_items=50, n_categories=4, n_price_levels=3,
        interactions_per_user=10, seed=31,
    )
    return generate(config)[0]


class TestTrainConfig:
    def test_defaults_valid(self):
        TrainConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(epochs=0),
            dict(batch_size=0),
            dict(learning_rate=0.0),
            dict(l2_weight=-1.0),
            dict(negative_rate=0),
            dict(eval_every=-1),
            dict(early_stop_patience=2, eval_every=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TrainConfig(**kwargs)


class TestTrainer:
    def test_loss_decreases(self, dataset):
        model = BPRMF(dataset, dim=16, rng=np.random.default_rng(0))
        result = train_model(model, dataset, TrainConfig(epochs=6, lr_milestones=(4,), seed=0))
        assert result.epochs_run == 6
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_non_trainable_skipped(self, dataset):
        result = train_model(ItemPop(dataset), dataset, TrainConfig(epochs=5))
        assert result.epochs_run == 0
        assert result.epoch_losses == []

    def test_deterministic_given_seed(self, dataset):
        r1 = train_model(
            BPRMF(dataset, dim=8, rng=np.random.default_rng(1)),
            dataset,
            TrainConfig(epochs=3, seed=5),
        )
        r2 = train_model(
            BPRMF(dataset, dim=8, rng=np.random.default_rng(1)),
            dataset,
            TrainConfig(epochs=3, seed=5),
        )
        np.testing.assert_allclose(r1.epoch_losses, r2.epoch_losses)

    def test_validation_tracking(self, dataset):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        config = TrainConfig(epochs=4, eval_every=2, eval_k=10)
        result = train_model(model, dataset, config)
        assert len(result.validation_history) == 2
        assert result.best_epoch in (2, 4)
        assert result.best_metric >= 0

    def test_early_stopping(self, dataset):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        config = TrainConfig(
            epochs=50, eval_every=1, eval_k=10, early_stop_patience=2, learning_rate=1e-5
        )
        result = train_model(model, dataset, config)
        assert result.epochs_run < 50

    def test_best_checkpoint_restored(self, dataset):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        config = TrainConfig(epochs=4, eval_every=1, eval_k=10)
        trainer = Trainer(model, dataset, config)
        result = trainer.fit()
        # After fit, evaluating at the restored checkpoint reproduces best.
        from repro.eval import evaluate

        metrics = evaluate(model, dataset, split="validation", ks=(10,))
        assert metrics["Recall@10"] == pytest.approx(result.best_metric)

    def test_auxiliary_loss_used(self, dataset):
        """PaDQ's CMF terms must reduce during training."""
        model = PaDQ(dataset, dim=8, rng=np.random.default_rng(0), price_weight=1.0)
        users, items = np.arange(10), np.arange(10)
        before = model.auxiliary_loss(users, items).item()
        train_model(model, dataset, TrainConfig(epochs=5, seed=0))
        after = model.auxiliary_loss(users, items).item()
        assert after < before

    def test_pup_trains_end_to_end(self, dataset):
        model = pup_full(
            dataset, global_dim=12, category_dim=4, rng=np.random.default_rng(0), dropout=0.0
        )
        result = train_model(model, dataset, TrainConfig(epochs=4, seed=0))
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_model_left_in_eval_mode(self, dataset):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        train_model(model, dataset, TrainConfig(epochs=2))
        assert not model.training

    def test_final_loss_property(self):
        result = TrainResult()
        with pytest.raises(ValueError):
            __ = result.final_loss
        result.epoch_losses.append(0.5)
        assert result.final_loss == 0.5

    def test_l2_zero_allowed(self, dataset):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        result = train_model(model, dataset, TrainConfig(epochs=2, l2_weight=0.0))
        assert result.epochs_run == 2
