"""TrainConfig / TrainResult serialization, including the -inf sentinel fix."""

import json

import numpy as np
import pytest

from repro.train import TrainConfig
from repro.train.trainer import TrainResult


def test_train_result_untracked_sentinels_serialize_as_null():
    result = TrainResult(epoch_losses=[0.9, 0.7], epochs_run=2)
    payload = result.to_dict()
    assert payload["best_metric"] is None
    assert payload["best_epoch"] is None
    # strict JSON: -Infinity would blow up a strict parser
    text = json.dumps(payload)
    assert "Infinity" not in text
    assert json.loads(text)["best_metric"] is None


def test_train_result_tracked_values_roundtrip():
    result = TrainResult(
        epoch_losses=[0.5, 0.4],
        validation_history=[{"Recall@5": 0.1}, {"Recall@5": 0.2}],
        best_metric=0.2,
        best_epoch=2,
        epochs_run=2,
    )
    restored = TrainResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored == result


def test_train_result_from_dict_restores_sentinels():
    restored = TrainResult.from_dict(
        {"epoch_losses": [1.0], "best_metric": None, "best_epoch": None, "epochs_run": 1}
    )
    assert restored.best_metric == -np.inf
    assert restored.best_epoch == -1


def test_train_config_roundtrip_and_validation():
    config = TrainConfig(epochs=5, lr_milestones=[2, 4], eval_every=1, eval_k=5)
    assert TrainConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config
    with pytest.raises(ValueError, match="unknown TrainConfig"):
        TrainConfig.from_dict({"momentum": 0.9})
    # from_dict still runs __post_init__ validation
    with pytest.raises(ValueError, match="epochs"):
        TrainConfig.from_dict({"epochs": 0})
