"""Archive durability: atomic publish, checksums, corruption detection.

Every archive write must either publish completely or leave the previous
contents untouched; every verified load must refuse silently-corrupted
payloads with a typed :class:`ArchiveCorrupted`.
"""

import os

import numpy as np
import pytest

from repro.faults import corrupt_archive
from repro.train.persistence import (
    ArchiveCorrupted,
    CHECKSUM_KEY,
    clean_stale_archives,
    read_archive_arrays,
    read_archive_metadata,
    write_archive,
    write_archive_dir,
)


@pytest.fixture
def arrays():
    rng = np.random.default_rng(3)
    return {
        "weights": rng.normal(size=(32, 8)),
        "ids": np.arange(32, dtype=np.int64),
        "empty": np.zeros(0),
    }


class TestChecksums:
    def test_roundtrip_carries_digests(self, arrays, tmp_path):
        path = write_archive(str(tmp_path / "a.npz"), arrays, metadata={"v": 1})
        metadata = read_archive_metadata(path)
        assert set(metadata[CHECKSUM_KEY]) == set(arrays)
        loaded = read_archive_arrays(path)
        for name, value in arrays.items():
            np.testing.assert_array_equal(loaded[name], value)

    @pytest.mark.parametrize("fmt", ["npz", "dir"])
    def test_corruption_raises_typed_error(self, arrays, tmp_path, fmt):
        if fmt == "npz":
            path = write_archive(str(tmp_path / "c.npz"), arrays, metadata={})
        else:
            path = write_archive_dir(str(tmp_path / "c_dir"), arrays, metadata={})
        victim = corrupt_archive(path, array="weights")
        with pytest.raises(ArchiveCorrupted, match="weights"):
            read_archive_arrays(path)
        assert victim == "weights"

    def test_verify_opt_out_loads_corrupted_payload(self, arrays, tmp_path):
        path = write_archive(str(tmp_path / "d.npz"), arrays, metadata={})
        corrupt_archive(path, array="weights")
        loaded = read_archive_arrays(path, verify=False)
        assert not np.array_equal(loaded["weights"], arrays["weights"])

    def test_mmap_skips_verification_by_default(self, arrays, tmp_path):
        path = write_archive_dir(str(tmp_path / "m_dir"), arrays, metadata={})
        corrupt_archive(path, array="weights")
        # mmap default: no eager full read, so no verification either ...
        read_archive_arrays(path, mmap=True)
        # ... but an explicit verify=True catches it even under mmap.
        with pytest.raises(ArchiveCorrupted):
            read_archive_arrays(path, mmap=True, verify=True)

    def test_legacy_archive_without_checksums_loads(self, arrays, tmp_path):
        # Simulate a pre-checksum archive: strip the digest key in place.
        import json
        path = write_archive_dir(str(tmp_path / "legacy"), arrays, metadata={"v": 0})
        meta_path = os.path.join(path, "metadata.json")
        with open(meta_path) as handle:
            metadata = json.load(handle)
        del metadata[CHECKSUM_KEY]
        with open(meta_path, "w") as handle:
            json.dump(metadata, handle)
        loaded = read_archive_arrays(path)
        np.testing.assert_array_equal(loaded["weights"], arrays["weights"])

    def test_reserved_metadata_key_rejected(self, arrays, tmp_path):
        with pytest.raises(ValueError, match=CHECKSUM_KEY):
            write_archive(
                str(tmp_path / "r.npz"), arrays, metadata={CHECKSUM_KEY: "stolen"}
            )


class TestAtomicPublish:
    def test_dir_overwrite_is_replace_not_merge(self, arrays, tmp_path):
        path = str(tmp_path / "swap")
        write_archive_dir(path, arrays, metadata={"gen": 1})
        write_archive_dir(path, {"only": np.arange(4.0)}, metadata={"gen": 2})
        loaded = read_archive_arrays(path)
        assert set(loaded) == {"only"}
        assert read_archive_metadata(path)["gen"] == 2

    def test_no_staging_residue_after_write(self, arrays, tmp_path):
        write_archive(str(tmp_path / "a.npz"), arrays, metadata={})
        write_archive_dir(str(tmp_path / "a_dir"), arrays, metadata={})
        residue = [name for name in os.listdir(tmp_path) if ".tmp-" in name]
        assert residue == []

    def test_clean_stale_archives_sweeps_both_kinds(self, arrays, tmp_path):
        published = write_archive(str(tmp_path / "keep.npz"), arrays, metadata={})
        stale_file = tmp_path / "dead.npz.tmp-1234.npz"
        stale_file.write_bytes(b"partial")
        stale_dir = tmp_path / "dead_dir.tmp-5678"
        stale_dir.mkdir()
        (stale_dir / "weights.npy").write_bytes(b"partial")
        removed = clean_stale_archives(str(tmp_path))
        assert len(removed) == 2
        assert not stale_file.exists() and not stale_dir.exists()
        # the published archive is untouched
        loaded = read_archive_arrays(published)
        np.testing.assert_array_equal(loaded["weights"], arrays["weights"])

    def test_clean_missing_directory_is_quiet(self, tmp_path):
        assert clean_stale_archives(str(tmp_path / "nope")) == []
