"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro.baselines import BPRMF
from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.train import load_checkpoint, load_metadata, save_checkpoint


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(
        n_users=25, n_items=30, n_categories=3, n_price_levels=3,
        interactions_per_user=6, seed=51,
    )
    return generate(config)[0]


class TestPersistence:
    def test_roundtrip(self, dataset, tmp_path):
        model = pup_full(dataset, global_dim=12, category_dim=4, rng=np.random.default_rng(0))
        path = save_checkpoint(model, str(tmp_path / "pup"))
        assert path.endswith(".npz")

        clone = pup_full(dataset, global_dim=12, category_dim=4, rng=np.random.default_rng(9))
        metadata = load_checkpoint(clone, path)
        assert metadata["model_class"] == "PUP"
        users = np.arange(5)
        model.eval(), clone.eval()
        np.testing.assert_allclose(clone.predict_scores(users), model.predict_scores(users))

    def test_metadata_only(self, dataset, tmp_path):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        path = save_checkpoint(model, str(tmp_path / "mf"), extra={"note": "hello"})
        metadata = load_metadata(path)
        assert metadata["model_name"] == "BPR-MF"
        assert metadata["n_users"] == dataset.n_users
        assert metadata["extra"]["note"] == "hello"
        assert "user_embedding.weight" in metadata["parameter_names"]

    def test_strict_class_mismatch(self, dataset, tmp_path):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        path = save_checkpoint(model, str(tmp_path / "mf"))
        target = pup_full(dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            load_checkpoint(target, path)

    def test_non_strict_ignores_class(self, dataset, tmp_path):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        path = save_checkpoint(model, str(tmp_path / "mf"))
        clone = BPRMF(dataset, dim=8, rng=np.random.default_rng(5))
        load_checkpoint(clone, path, strict=False)
        np.testing.assert_allclose(clone.user_embedding.weight.data, model.user_embedding.weight.data)

    def test_rejects_non_checkpoint(self, tmp_path, dataset):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            load_checkpoint(model, str(path))
