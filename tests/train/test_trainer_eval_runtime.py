"""Satellite: one BatchRuntime reused across a fit's validation epochs."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.eval import evaluate
from repro.train import TrainConfig, Trainer
from repro.train import trainer as trainer_module


@pytest.fixture()
def dataset():
    config = SyntheticConfig(
        n_users=50, n_items=90, n_categories=4, n_price_levels=4,
        interactions_per_user=8, seed=37,
    )
    return generate(config)[0]


def small_config(**overrides):
    defaults = dict(
        epochs=3, batch_size=64, eval_every=1, eval_k=10,
        lr_milestones=(2,), seed=0,
    )
    defaults.update(overrides)
    return TrainConfig(**defaults)


class TestRuntimeReuse:
    def test_one_runtime_built_for_the_whole_fit(self, dataset, monkeypatch):
        built = []
        real_runtime = trainer_module.BatchRuntime

        class CountingRuntime(real_runtime):
            def __init__(self, *args, **kwargs):
                built.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(trainer_module, "BatchRuntime", CountingRuntime)
        model = pup_full(dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(0))
        trainer = Trainer(model, dataset, small_config())
        result = trainer.fit()
        assert result.epochs_run == 3 and len(result.validation_history) == 3
        assert len(built) == 1  # reused across all three validations
        assert trainer._eval_runtime is None  # closed at the end of fit

    def test_validation_metrics_identical_to_per_epoch_evaluate(self, dataset):
        """The reused-runtime path must change wall time only.

        Two identically-seeded fits: one through the runtime-reusing
        ``_validate``, one with a monkeypatched old-style per-call
        ``evaluate``.  Training trajectories are identical (validation does
        not touch the sampler RNG), so every epoch's metrics must match
        bit-for-bit.
        """
        model_a = pup_full(dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(1))
        trainer_a = Trainer(model_a, dataset, small_config())
        history_a = trainer_a.fit().validation_history

        model_b = pup_full(dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(1))
        trainer_b = Trainer(model_b, dataset, small_config())

        def old_style_validate():
            trainer_b.model.eval()
            return evaluate(
                trainer_b.model, dataset, split="validation",
                ks=(trainer_b.config.eval_k,),
            )

        trainer_b._validate = old_style_validate
        history_b = trainer_b.fit().validation_history

        assert history_a == history_b

    def test_runtime_closed_even_when_training_raises(self, dataset, monkeypatch):
        model = pup_full(dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(2))
        trainer = Trainer(model, dataset, small_config(epochs=3))
        closed = []
        original_validate = trainer._validate
        calls = {"n": 0}

        def failing_validate():
            calls["n"] += 1
            metrics = original_validate()
            runtime = trainer._eval_runtime
            if runtime is not None and not getattr(runtime, "_close_tracked", False):
                runtime._close_tracked = True
                original_close = runtime.close

                def tracking_close():
                    closed.append(True)
                    original_close()

                runtime.close = tracking_close
            if calls["n"] == 2:
                raise RuntimeError("boom")
            return metrics

        trainer._validate = failing_validate
        with pytest.raises(RuntimeError, match="boom"):
            trainer.fit()
        assert closed == [True]
        assert trainer._eval_runtime is None

    def test_thread_pool_validation_matches_serial(self, dataset):
        serial = pup_full(dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(3))
        threaded = pup_full(dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(3))
        history_serial = Trainer(serial, dataset, small_config()).fit().validation_history
        history_threaded = Trainer(
            threaded, dataset, small_config(eval_workers=2, eval_mode="thread")
        ).fit().validation_history
        assert history_serial == history_threaded

    def test_non_factorizable_models_fall_back(self, dataset):
        from repro.baselines import DeepFM

        model = DeepFM(dataset, dim=8, hidden=(16,), rng=np.random.default_rng(0))
        trainer = Trainer(model, dataset, small_config(epochs=2, eval_every=1))
        result = trainer.fit()
        assert len(result.validation_history) == 2
        assert trainer._eval_runtime is None


class TestConfigKnobs:
    def test_eval_runtime_fields_round_trip(self):
        config = TrainConfig(eval_workers=4, eval_mode="thread", eval_shards=2)
        restored = TrainConfig.from_dict(config.to_dict())
        assert restored == config

    def test_invalid_eval_mode_rejected(self):
        with pytest.raises(ValueError, match="eval_mode"):
            TrainConfig(eval_mode="gpu")

    def test_negative_eval_workers_rejected(self):
        with pytest.raises(ValueError, match="eval_workers"):
            TrainConfig(eval_workers=-1)
