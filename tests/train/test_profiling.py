"""Profiler unit tests + its wiring into Trainer (profile, progress line,
best-checkpoint no-aliasing guarantee)."""

import json
import time

import numpy as np
import pytest

from repro.baselines import BPRMF
from repro.data import SyntheticConfig, generate
from repro.profiling import Profiler
from repro.train import TrainConfig, Trainer
from repro.train.trainer import TRAIN_PHASES, TrainResult


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(
        n_users=40, n_items=50, n_categories=4, n_price_levels=3,
        interactions_per_user=10, seed=31,
    )
    return generate(config)[0]


class TestProfiler:
    def test_phase_accumulates_time_and_calls(self):
        profiler = Profiler()
        for _ in range(3):
            with profiler.phase("work"):
                time.sleep(0.001)
        assert profiler.seconds("work") >= 0.003
        assert profiler.summary()["phases"]["work"]["calls"] == 3

    def test_counters_and_rate(self):
        profiler = Profiler()
        profiler.add_seconds("step", 2.0)
        profiler.count("triples", 100)
        profiler.count("triples", 100)
        assert profiler.counter("triples") == 200
        assert profiler.rate("triples", per="step") == pytest.approx(100.0)
        assert profiler.rate("triples") == pytest.approx(100.0)

    def test_summary_is_json_safe_with_shares(self):
        profiler = Profiler()
        profiler.add_seconds("a", 1.0)
        profiler.add_seconds("b", 3.0)
        profiler.count("triples", 8)
        summary = json.loads(json.dumps(profiler.summary()))
        assert summary["phases"]["b"]["share"] == pytest.approx(0.75)
        assert summary["triples_per_sec"] == pytest.approx(2.0)

    def test_disabled_profiler_is_noop(self):
        profiler = Profiler(enabled=False)
        with profiler.phase("work"):
            pass
        profiler.count("triples", 5)
        assert profiler.total_seconds() == 0.0
        assert profiler.counter("triples") == 0.0

    def test_untimed_phase_reads_zero(self):
        assert Profiler().seconds("never") == 0.0

    def test_format_phases(self):
        profiler = Profiler()
        profiler.add_seconds("fwd", 1.0)
        profiler.add_seconds("bwd", 1.0)
        assert "fwd 50%" in profiler.format_phases()

    def test_reset(self):
        profiler = Profiler()
        profiler.add_seconds("a", 1.0)
        profiler.count("n", 2)
        profiler.reset()
        assert profiler.total_seconds() == 0.0 and profiler.counter("n") == 0.0


class TestTrainerProfiling:
    def test_fit_populates_profile(self, dataset):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        result = Trainer(model, dataset, TrainConfig(epochs=3, seed=0)).fit()
        profile = result.profile
        assert profile is not None
        for phase in TRAIN_PHASES:
            assert phase in profile["phases"], phase
        assert profile["counters"]["epochs"] == 3
        assert profile["counters"]["triples"] == 3 * len(dataset.train)
        assert result.triples_per_sec > 0
        assert profile["train_seconds"] <= profile["total_seconds"] + 1e-9

    def test_profile_serializes_and_roundtrips(self, dataset):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        result = Trainer(model, dataset, TrainConfig(epochs=2, seed=0)).fit()
        restored = TrainResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored.profile == result.profile
        assert restored.triples_per_sec == pytest.approx(result.triples_per_sec)

    def test_non_trainable_has_no_profile(self, dataset):
        from repro.baselines import ItemPop

        result = Trainer(ItemPop(dataset), dataset, TrainConfig(epochs=2)).fit()
        assert result.profile is None
        assert result.triples_per_sec is None

    def test_verbose_line_includes_throughput(self, dataset, capsys):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        Trainer(model, dataset, TrainConfig(epochs=1, verbose=True, seed=0)).fit()
        out = capsys.readouterr().out
        assert "triples/s" in out
        assert "loss=" in out and "lr=" in out

    def test_validation_timed_outside_train_phases(self, dataset):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        config = TrainConfig(epochs=2, eval_every=1, eval_k=10)
        result = Trainer(model, dataset, config).fit()
        assert "validate" in result.profile["phases"]
        train_seconds = sum(
            result.profile["phases"][p]["seconds"] for p in TRAIN_PHASES
        )
        assert result.profile["train_seconds"] == pytest.approx(train_seconds)


class TestBestCheckpointAliasing:
    def test_snapshot_is_deep_copied(self, dataset):
        """Regression: the early-stopping checkpoint must not alias live
        parameters, or later epochs would silently corrupt the restored
        best state."""
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        trainer = Trainer(model, dataset, TrainConfig(epochs=1, seed=0))
        snapshot = trainer._snapshot_state()
        reference = {name: value.copy() for name, value in snapshot.items()}
        for param in model.parameters():
            param.data += 123.0  # in-place mutation, as the optimizer does
        for name, value in snapshot.items():
            np.testing.assert_array_equal(value, reference[name])

    def test_restored_best_state_survives_later_epochs(self, dataset):
        model = BPRMF(dataset, dim=8, rng=np.random.default_rng(0))
        config = TrainConfig(epochs=4, eval_every=1, eval_k=10)
        trainer = Trainer(model, dataset, config)
        result = trainer.fit()
        from repro.eval import evaluate

        metrics = evaluate(model, dataset, split="validation", ks=(10,))
        assert metrics["Recall@10"] == pytest.approx(result.best_metric)
