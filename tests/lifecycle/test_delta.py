"""Delta IVF builds: parity, frozen codes, staleness escalation.

The headline invariant: a delta-built index's full-probe exact-scorer
search is bit-identical to exact ranking on the grown catalog — appends
may never disturb the (ids ascending within lists) layout contract.
"""

import numpy as np
import pytest

from repro.eval.ann import ann_recall_at_k, exact_rankings
from repro.lifecycle.delta import (
    DeltaConfig,
    DeltaMismatch,
    DeltaStats,
    DeltaUnsupported,
    delta_build,
)
from repro.lifecycle.foldin import fold_in
from repro.lifecycle.controller import simulate_events
from repro.serving.ann.ivf import build_ivf


def grow(index, count, seed, start_seq=0):
    events = simulate_events(
        index.n_users, index.n_items, count, seed=seed, start_seq=start_seq,
        new_item_rate=0.2, new_user_rate=0.1, n_categories=index.n_categories,
    )
    return fold_in(index, events)[0], events


class TestValidation:
    def test_pq_companion_refused(self, index):
        ann_pq = build_ivf(index, nprobe=7, seed=0, pq=True, pq_subspace_dim=3)
        grown, _ = grow(index, 40, seed=1)
        with pytest.raises(DeltaUnsupported, match="PQ"):
            delta_build(ann_pq, grown, DeltaConfig())

    def test_shrunk_catalog_refused(self, index, ann):
        grown, _ = grow(index, 40, seed=1)
        bigger = build_ivf(grown, nprobe=7, seed=0)
        with pytest.raises(DeltaMismatch, match="fewer"):
            delta_build(bigger, index, DeltaConfig())

    def test_mutated_frozen_rows_refused(self, index, ann):
        grown, _ = grow(index, 40, seed=1)
        tampered = grown.branches[0].item
        tampered[0, 0] += 1.0
        try:
            with pytest.raises(DeltaMismatch, match="frozen"):
                delta_build(ann, grown, DeltaConfig())
        finally:
            tampered[0, 0] -= 1.0


class TestParityAndCodes:
    def test_full_probe_parity_on_grown_catalog(self, index, ann):
        grown, _ = grow(index, 60, seed=2)
        new_ann, stats = delta_build(ann, grown, DeltaConfig())
        assert stats.n_new_items > 0 and not stats.reclustered
        users = np.arange(grown.n_users)
        k = 10
        exact = exact_rankings(grown, users, k)
        ids, _ = new_ann.search(
            users, k, nprobe=new_ann.n_lists, scorer="exact",
            exclude_csr=(grown.exclude_indptr, grown.exclude_indices),
        )
        for row, user in enumerate(users):
            assert np.array_equal(ids[row], exact[int(user)]), f"user {user}"

    def test_ids_ascend_within_every_list(self, index, ann):
        grown, _ = grow(index, 60, seed=2)
        new_ann, _ = delta_build(ann, grown, DeltaConfig())
        for lst in range(new_ann.n_lists):
            lo, hi = new_ann.list_indptr[lst], new_ann.list_indptr[lst + 1]
            ids = new_ann.list_items[lo:hi]
            assert np.all(np.diff(ids) > 0), f"list {lst} not ascending"
        assert sorted(new_ann.list_items) == list(range(grown.n_items))

    def test_old_int8_codes_are_byte_identical(self, index, ann):
        grown, _ = grow(index, 60, seed=2)
        new_ann, _ = delta_build(ann, grown, DeltaConfig())
        assert new_ann.quantized is not None
        for old_qb, new_qb in zip(ann.quantized.quantized, new_ann.quantized.quantized):
            assert new_qb.scale == old_qb.scale and new_qb.zero == old_qb.zero
            assert np.array_equal(
                new_qb.q_item[: index.n_items], old_qb.q_item
            ), "existing items were re-encoded"
            assert new_qb.q_item.shape[0] == grown.n_items

    def test_int8_search_still_works_after_delta(self, index, ann):
        grown, _ = grow(index, 60, seed=2)
        new_ann, _ = delta_build(ann, grown, DeltaConfig())
        ids, scores = new_ann.search(np.arange(8), 5, scorer="int8")
        assert ids.shape == (8, 5)
        assert (ids >= 0).all()

    def test_recall_holds_across_three_consecutive_deltas(self, index, ann):
        # The acceptance criterion, at test scale: three delta rounds, no
        # full rebuild, recall@50 at the serving operating point >= 0.95.
        current_index, current_ann = index, ann
        appended, seq = 0, 0
        for round_id in range(3):
            grown, events = grow(current_index, 40, seed=5 + round_id, start_seq=seq)
            seq += len(events)
            current_ann, stats = delta_build(
                current_ann, grown, DeltaConfig(appended_since_recluster=appended)
            )
            appended = stats.appended_since_recluster
            assert not stats.reclustered
            current_index = grown
            users = np.arange(current_index.n_users)
            k = 50
            exact = exact_rankings(current_index, users, k)
            ids, _ = current_ann.search(
                users, k,
                exclude_csr=(current_index.exclude_indptr,
                             current_index.exclude_indices),
            )
            approx = {int(u): ids[r] for r, u in enumerate(users)}
            recall = ann_recall_at_k(exact, approx, k)
            assert recall >= 0.95, f"round {round_id}: recall@50 {recall:.4f}"


class TestStaleness:
    def test_accounting_accumulates(self, index, ann):
        grown, _ = grow(index, 60, seed=2)
        _, stats = delta_build(
            ann, grown, DeltaConfig(appended_since_recluster=7)
        )
        assert stats.appended_since_recluster == 7 + stats.n_new_items
        assert stats.staleness == pytest.approx(
            stats.appended_since_recluster / grown.n_items
        )

    def test_threshold_triggers_recluster(self, index, ann):
        grown, _ = grow(index, 60, seed=2)
        new_ann, stats = delta_build(
            ann,
            grown,
            DeltaConfig(staleness_threshold=0.01, appended_since_recluster=5),
        )
        assert stats.reclustered
        assert stats.appended_since_recluster == 0
        assert stats.staleness == 0.0
        # The rebuild re-derives its layout from the grown catalog.
        assert new_ann.n_items == grown.n_items
        assert new_ann.quantized is not None  # companion preserved in kind

    def test_no_new_items_is_a_cheap_no_op_layout(self, index, ann):
        events = simulate_events(
            index.n_users, index.n_items, 30, seed=4,
            new_item_rate=0.0, new_user_rate=0.0, n_categories=index.n_categories,
        )
        grown = fold_in(index, events)[0]
        new_ann, stats = delta_build(ann, grown, DeltaConfig())
        assert stats.n_new_items == 0
        assert np.array_equal(new_ann.list_items, ann.list_items)
        assert np.array_equal(new_ann.list_indptr, ann.list_indptr)


class TestDeterminism:
    def test_same_inputs_same_layout(self, index, ann):
        grown, _ = grow(index, 50, seed=6)
        a, _ = delta_build(ann, grown, DeltaConfig())
        b, _ = delta_build(ann, grown, DeltaConfig())
        assert np.array_equal(a.list_items, b.list_items)
        assert np.array_equal(a.list_indptr, b.list_indptr)
        assert np.array_equal(a.centroids, b.centroids)
