"""Least-squares fold-in: new users/items against frozen branches.

Quality is asserted behaviorally (a folded user ranks its positives far
above random; a folded item is recommended to the users who bought it)
and structurally (frozen rows stay bit-identical, catalogs extend
consistently, determinism holds).
"""

import numpy as np
import pytest

from repro.eval.ann import exact_rankings
from repro.lifecycle.foldin import (
    FoldInConfig,
    FoldInError,
    fold_in,
    requantize_price,
)
from repro.lifecycle.journal import Event


def interactions(user, items, start_seq):
    return [
        Event(seq=start_seq + i, kind="interaction", user=user, item=item)
        for i, item in enumerate(items)
    ]


class TestValidation:
    def test_add_user_ids_must_be_contiguous(self, index):
        with pytest.raises(FoldInError, match="next user id"):
            fold_in(index, [Event(seq=0, kind="add_user", user=index.n_users + 1)])

    def test_add_item_ids_must_be_contiguous(self, index):
        with pytest.raises(FoldInError, match="next item id"):
            fold_in(index, [Event(seq=0, kind="add_item", item=0, price=1.0)])

    def test_add_item_requires_price(self, index):
        with pytest.raises(FoldInError, match="no price"):
            fold_in(index, [Event(seq=0, kind="add_item", item=index.n_items)])

    def test_interaction_with_unknown_item_rejected(self, index):
        with pytest.raises(FoldInError, match="unknown"):
            fold_in(
                index,
                [Event(seq=0, kind="interaction", user=0, item=index.n_items + 5)],
            )

    def test_reprice_of_unknown_item_rejected(self, index):
        with pytest.raises(FoldInError, match="unknown item"):
            fold_in(
                index, [Event(seq=0, kind="reprice", item=index.n_items, price=2.0)]
            )


class TestStructure:
    def test_input_index_is_never_mutated(self, index):
        snapshot = [branch.user.copy() for branch in index.branches]
        levels = index.item_price_levels.copy()
        events = [Event(seq=0, kind="add_user", user=index.n_users)]
        events += interactions(index.n_users, [3, 7, 11], start_seq=1)
        events.append(Event(seq=4, kind="reprice", item=3, price=55.0))
        fold_in(index, events)
        for branch, before in zip(index.branches, snapshot):
            assert np.array_equal(branch.user, before)
        assert np.array_equal(index.item_price_levels, levels)

    def test_untouched_rows_stay_bit_identical(self, index):
        events = [Event(seq=0, kind="add_user", user=index.n_users)]
        events += interactions(index.n_users, [3, 7, 11], start_seq=1)
        new_index, _ = fold_in(index, events)
        for old_b, new_b in zip(index.branches, new_index.branches):
            # Existing users did not interact: all original rows frozen.
            assert np.array_equal(new_b.user[: index.n_users], old_b.user)
            assert np.array_equal(new_b.item, old_b.item)

    def test_refresh_users_touches_only_interacting_users(self, index):
        events = interactions(5, [3, 7], start_seq=0)
        new_index, stats = fold_in(index, events)
        assert stats.refreshed_users == 1
        for old_b, new_b in zip(index.branches, new_index.branches):
            mask = np.ones(index.n_users, dtype=bool)
            mask[5] = False
            assert np.array_equal(new_b.user[mask], old_b.user[mask])
            assert not np.array_equal(new_b.user[5], old_b.user[5])

    def test_refresh_can_be_disabled(self, index):
        events = interactions(5, [3, 7], start_seq=0)
        new_index, stats = fold_in(
            index, events, FoldInConfig(refresh_users=False)
        )
        assert stats.refreshed_users == 0
        for old_b, new_b in zip(index.branches, new_index.branches):
            assert np.array_equal(new_b.user, old_b.user)

    def test_exclusions_and_popularity_merge(self, index):
        user, items = 2, [9, 4]
        before = set(
            index.exclude_indices[
                index.exclude_indptr[user] : index.exclude_indptr[user + 1]
            ]
        )
        new_index, _ = fold_in(index, interactions(user, items, start_seq=0))
        after = set(
            new_index.exclude_indices[
                new_index.exclude_indptr[user] : new_index.exclude_indptr[user + 1]
            ]
        )
        assert after == before | set(items)
        for item in items:
            assert new_index.item_popularity[item] == index.item_popularity[item] + 1

    def test_deterministic(self, index):
        events = [Event(seq=0, kind="add_user", user=index.n_users)]
        events += interactions(index.n_users, [3, 7, 11, 20], start_seq=1)
        a, _ = fold_in(index, events, FoldInConfig(seed=9))
        b, _ = fold_in(index, events, FoldInConfig(seed=9))
        for branch_a, branch_b in zip(a.branches, b.branches):
            assert np.array_equal(branch_a.user, branch_b.user)
            assert np.array_equal(branch_a.item, branch_b.item)

    def test_lifecycle_extra_tracks_generation(self, index):
        events = interactions(0, [5], start_seq=0)
        once, stats = fold_in(index, events)
        assert once.extra["lifecycle"]["fold_generation"] == 1
        assert once.extra["lifecycle"]["folded_seq"] == stats.last_seq
        twice, _ = fold_in(once, interactions(1, [6], start_seq=1))
        assert twice.extra["lifecycle"]["fold_generation"] == 2


class TestPricing:
    def test_requantize_matches_nearest_existing_price(self):
        raw = np.array([1.0, 10.0, 100.0])
        levels = np.array([0, 1, 2])
        assert requantize_price(2.0, raw, levels) == 0
        assert requantize_price(9.0, raw, levels) == 1
        assert requantize_price(500.0, raw, levels) == 2
        assert requantize_price(0.01, raw, levels) == 0

    def test_reprice_moves_item_across_bands(self, index):
        assert index.item_raw_prices is not None
        cheap = int(np.argmin(index.item_raw_prices))
        expensive_price = float(index.item_raw_prices.max())
        events = [Event(seq=0, kind="reprice", item=cheap, price=expensive_price)]
        new_index, stats = fold_in(index, events)
        assert stats.reprices == 1
        assert new_index.item_raw_prices[cheap] == expensive_price
        assert (
            new_index.item_price_levels[cheap]
            == index.item_price_levels[int(np.argmax(index.item_raw_prices))]
        )

    def test_new_item_gets_quantized_level_and_catalog_row(self, index):
        price = float(np.median(index.item_raw_prices))
        events = [
            Event(seq=0, kind="add_item", item=index.n_items, price=price, category=2)
        ]
        new_index, stats = fold_in(index, events)
        assert stats.new_items == 1
        assert new_index.n_items == index.n_items + 1
        assert new_index.item_categories[-1] == 2
        assert new_index.item_raw_prices[-1] == price
        expected = requantize_price(
            price, index.item_raw_prices, index.item_price_levels
        )
        assert new_index.item_price_levels[-1] == expected


class TestQuality:
    def test_folded_user_ranks_positives_highly(self, index):
        # A user who buys the exact items an existing user bought should
        # rank those items far above the random-chance position.
        source = 7
        positives = index.exclude_indices[
            index.exclude_indptr[source] : index.exclude_indptr[source + 1]
        ][:6]
        assert len(positives) >= 3
        uid = index.n_users
        events = [Event(seq=0, kind="add_user", user=uid)]
        events += interactions(uid, [int(i) for i in positives], start_seq=1)
        new_index, stats = fold_in(index, events)
        assert stats.new_users == 1

        # Rank WITHOUT excluding train items: the positives must surface.
        rankings = exact_rankings(new_index, [uid], k=new_index.n_items,
                                  exclude_train=False)
        order = list(rankings[uid])
        mean_rank = np.mean([order.index(int(i)) for i in positives])
        assert mean_rank < new_index.n_items * 0.2, (
            f"folded user ranks its positives at mean position {mean_rank:.0f} "
            f"of {new_index.n_items} — no better than chance"
        )

    def test_folded_item_is_recommended_to_its_buyers(self, index):
        item = index.n_items
        buyers = [1, 4, 9, 15, 22, 30]
        price = float(np.median(index.item_raw_prices))
        events = [Event(seq=0, kind="add_item", item=item, price=price, category=1)]
        events += [
            Event(seq=1 + i, kind="interaction", user=u, item=item)
            for i, u in enumerate(buyers)
        ]
        new_index, _ = fold_in(index, events)
        rankings = exact_rankings(new_index, buyers, k=new_index.n_items,
                                  exclude_train=False)
        ranks = [list(rankings[u]).index(item) for u in buyers]
        assert np.mean(ranks) < new_index.n_items * 0.25, (
            f"folded item sits at mean rank {np.mean(ranks):.0f} for its own "
            f"buyers (catalog {new_index.n_items})"
        )
