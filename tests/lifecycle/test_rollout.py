"""Versioned rollout: store invariants, gated promotion, crash recovery.

Soft-crash injection (``InjectedFault``, not ``hard_kill``) exercises the
same code paths as a SIGKILL drill in-process: the exception aborts the
operation at the injected point and a fresh controller must recover.  The
process-level SIGKILL variant lives in ``benchmarks/lifecycle_smoke.py``.
"""

import json
import os

import numpy as np
import pytest

from repro.faults import (
    LIFECYCLE_BUILD_CRASH,
    LIFECYCLE_INGEST_CRASH,
    LIFECYCLE_PROMOTE_CRASH,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.lifecycle import (
    GateConfig,
    LifecycleConfig,
    LifecycleController,
    StoreError,
    VersionStore,
    journal_digest,
    simulate_events,
)
from repro.obs.metrics import MetricsRegistry


def make_config(**gate_overrides):
    gates = GateConfig(nprobe=7, recall_users=32, parity_users=8, **gate_overrides)
    return LifecycleConfig(gates=gates, segment_records=64)


def bootstrapped(tmp_path, index, ann, name="store", **kwargs):
    controller = LifecycleController(
        str(tmp_path / name), config=make_config(), **kwargs
    )
    controller.bootstrap(index, ann)
    return controller


def stream(index, count, seed=0, start_seq=0):
    return simulate_events(
        index.n_users, index.n_items, count, seed=seed, start_seq=start_seq,
        n_categories=index.n_categories,
    )


class TestStore:
    def test_manifest_last_and_no_reuse(self, tmp_path, index, ann):
        store = VersionStore(str(tmp_path))

        class Boom(RuntimeError):
            pass

        def hook():
            raise Boom

        with pytest.raises(Boom):
            store.write_candidate(index, ann, {"parent": None}, crash_hook=hook)
        torn = os.path.join(store.versions_dir, "v000001")
        assert os.path.exists(os.path.join(torn, "index.npz"))
        assert not os.path.exists(os.path.join(torn, "manifest.json"))
        assert store.list_versions() == []  # torn dirs are invisible
        with pytest.raises(StoreError, match="no committed manifest"):
            store.set_current("v000001")
        # While the torn dir exists its name is skipped...
        assert store.next_version_name() == "v000002"

        actions = store.recover()
        assert actions["swept"] == ["v000001"]
        assert not os.path.exists(torn)
        # ...and once swept it is recycled — safe, it was never committed.
        name = store.write_candidate(index, ann, {"parent": None})
        assert name == "v000001"

    def test_current_flip_stamps_statuses(self, tmp_path, index, ann):
        store = VersionStore(str(tmp_path))
        first = store.write_candidate(index, ann, {"parent": None})
        second = store.write_candidate(index, ann, {"parent": first})
        store.set_current(first)
        assert store.read_manifest(first)["status"] == "live"
        assert store.read_manifest(second)["status"] == "candidate"
        previous = store.set_current(second)
        assert previous == first
        assert store.current() == second
        assert store.read_manifest(first)["status"] == "superseded"
        assert store.read_manifest(second)["status"] == "live"

    def test_recover_reconciles_stamps_with_pointer(self, tmp_path, index, ann):
        store = VersionStore(str(tmp_path))
        first = store.write_candidate(index, ann, {"parent": None})
        second = store.write_candidate(index, ann, {"parent": first})
        store.set_current(first)
        # Simulate a crash between the pointer flip and the stamps: the
        # pointer names `second` but the manifests still say otherwise.
        with open(store.current_path, "w", encoding="utf-8") as fh:
            json.dump({"version": second}, fh)
        actions = store.recover()
        assert sorted(actions["restamped"]) == [
            f"{first}:superseded",
            f"{second}:live",
        ]
        assert store.recover()["restamped"] == []  # idempotent

    def test_rollback_flips_to_parent(self, tmp_path, index, ann):
        store = VersionStore(str(tmp_path))
        first = store.write_candidate(index, ann, {"parent": None})
        second = store.write_candidate(index, ann, {"parent": first})
        store.set_current(first)
        store.set_current(second)
        assert store.rollback("bad recall in prod") == first
        assert store.current() == first
        manifest = store.read_manifest(second)
        assert manifest["status"] == "rejected"
        assert manifest["rejected_reason"] == "bad recall in prod"
        # Archives survive: rolling back is itself reversible.
        store.load_version(second)

    def test_rollback_error_cases(self, tmp_path, index, ann):
        store = VersionStore(str(tmp_path))
        with pytest.raises(StoreError, match="nothing is live"):
            store.rollback()
        first = store.write_candidate(index, ann, {"parent": None})
        store.set_current(first)
        with pytest.raises(StoreError, match="no parent"):
            store.rollback()

    def test_recover_rejects_tampered_pointer(self, tmp_path, index, ann):
        store = VersionStore(str(tmp_path))
        with open(store.current_path, "w", encoding="utf-8") as fh:
            json.dump({"version": "v000099"}, fh)
        with pytest.raises(StoreError, match="no manifest"):
            store.recover()

    def test_load_torn_version_refused(self, tmp_path, index, ann):
        store = VersionStore(str(tmp_path))
        with pytest.raises(StoreError, match="torn or unknown"):
            store.load_version("v000042")


class TestControllerHappyPath:
    def test_full_loop_with_metrics(self, tmp_path, index, ann):
        metrics = MetricsRegistry()
        controller = bootstrapped(tmp_path, index, ann, metrics=metrics)
        counter = metrics.get("lifecycle_versions_total")
        gauge = metrics.get("lifecycle_journal_lag")
        assert controller.store.current() == "v000001"
        assert counter.value(outcome="promoted") == 1
        assert counter.value(outcome="built") == 0  # pre-seeded, still zero
        assert gauge.value() == 0

        events = stream(index, 120, seed=2)
        report = controller.ingest(events)
        assert report == {"appended": 120, "skipped": 0, "last_seq": 119}
        assert gauge.value() == 120

        candidate = controller.build()
        assert candidate == "v000002"
        assert counter.value(outcome="built") == 1
        assert controller.store.read_manifest(candidate)["parent"] == "v000001"

        promoted, gate_report = controller.promote()
        assert promoted == candidate
        assert gate_report.passed
        assert set(gate_report.gates) == {"recall", "price_band", "parity"}
        assert controller.store.current() == candidate
        assert counter.value(outcome="promoted") == 2
        assert gauge.value() == 0

    def test_reingest_is_exactly_once(self, tmp_path, index, ann):
        controller = bootstrapped(tmp_path, index, ann)
        events = stream(index, 50, seed=3)
        controller.ingest(events)
        digest = journal_digest(controller.store.journal_dir)
        report = controller.ingest(events)  # the whole stream, again
        assert report["appended"] == 0 and report["skipped"] == 50
        assert journal_digest(controller.store.journal_dir) == digest

    def test_build_with_empty_journal_is_none(self, tmp_path, index, ann):
        controller = bootstrapped(tmp_path, index, ann)
        assert controller.build() is None

    def test_bootstrap_is_once(self, tmp_path, index, ann):
        controller = bootstrapped(tmp_path, index, ann)
        with pytest.raises(StoreError, match="bootstrap is once"):
            controller.bootstrap(index, ann)

    def test_promote_hot_swaps_service(self, tmp_path, index, ann):
        swaps = []

        class FakeService:
            def swap_index(self, new_index, ann=None):
                swaps.append((new_index.n_items, ann.n_items))

        controller = bootstrapped(tmp_path, index, ann)
        controller.ingest(stream(index, 80, seed=4))
        controller.build()
        promoted, _ = controller.promote(service=FakeService())
        assert promoted is not None
        grown = controller.store.read_manifest(promoted)["n_items"]
        assert swaps == [(grown, grown)]


class TestGateRejection:
    def test_impossible_floor_rejects_and_preserves_live(self, tmp_path, index, ann):
        metrics = MetricsRegistry()
        controller = bootstrapped(tmp_path, index, ann, metrics=metrics)
        controller.ingest(stream(index, 80, seed=5))
        candidate = controller.build()

        strict = LifecycleController(
            str(tmp_path / "store"),
            config=make_config(recall_floor=1.01),
            metrics=metrics,
        )
        promoted, report = strict.promote(candidate)
        assert promoted is None
        assert not report.passed
        assert any("recall" in f for f in report.failures)
        assert strict.store.current() == "v000001"  # live untouched
        manifest = strict.store.read_manifest(candidate)
        assert manifest["status"] == "rejected"
        assert "recall" in manifest["rejected_reason"]
        assert metrics.get("lifecycle_versions_total").value(outcome="rejected") == 1

    def test_no_candidate_to_promote(self, tmp_path, index, ann):
        controller = bootstrapped(tmp_path, index, ann)
        with pytest.raises(StoreError, match="no candidate"):
            controller.promote()


class TestCrashRecovery:
    def test_ingest_crash_then_redrive_converges(self, tmp_path, index, ann):
        root = str(tmp_path / "store")
        plan = FaultPlan([FaultSpec(LIFECYCLE_INGEST_CRASH, times=(30,))])
        controller = bootstrapped(tmp_path, index, ann, fault_plan=plan)
        events = stream(index, 80, seed=6)
        with pytest.raises(InjectedFault):
            controller.ingest(events)
        # 30 events landed before the crash (occurrence index 30 fired).
        assert controller.journal_lag() == 30

        recovered = LifecycleController(root, config=make_config())
        report = recovered.ingest(events)  # identical stream, re-driven
        assert report == {"appended": 50, "skipped": 30, "last_seq": 79}

        reference = bootstrapped(tmp_path, index, ann, name="reference")
        reference.ingest(events)
        assert journal_digest(recovered.store.journal_dir) == journal_digest(
            reference.store.journal_dir
        )

    def test_build_crash_leaves_torn_dir_swept_on_restart(self, tmp_path, index, ann):
        root = str(tmp_path / "store")
        plan = FaultPlan([FaultSpec(LIFECYCLE_BUILD_CRASH, times=(0,))])
        controller = bootstrapped(tmp_path, index, ann, fault_plan=plan)
        controller.ingest(stream(index, 60, seed=7))
        with pytest.raises(InjectedFault):
            controller.build()
        torn = os.path.join(controller.store.versions_dir, "v000002")
        assert os.path.isdir(torn)
        assert controller.store.list_versions() == ["v000001"]

        recovered = LifecycleController(root, config=make_config())
        assert recovered.recovery["swept"] == ["v000002"]
        assert not os.path.exists(torn)
        assert recovered.store.current() == "v000001"  # serving never broke
        candidate = recovered.build()
        assert candidate == "v000002"  # swept name, recycled
        promoted, _ = recovered.promote()
        assert promoted == candidate

    def test_promote_crash_leaves_candidate_repromotable(self, tmp_path, index, ann):
        root = str(tmp_path / "store")
        plan = FaultPlan([FaultSpec(LIFECYCLE_PROMOTE_CRASH, times=(0,))])
        controller = bootstrapped(tmp_path, index, ann, fault_plan=plan)
        controller.ingest(stream(index, 60, seed=8))
        candidate = controller.build()
        with pytest.raises(InjectedFault):
            controller.promote()
        # Gates passed, pointer never flipped: live is intact and the
        # candidate is still a candidate, not rejected.
        assert controller.store.current() == "v000001"
        assert controller.store.read_manifest(candidate)["status"] == "candidate"

        recovered = LifecycleController(root, config=make_config())
        assert recovered.recovery["restamped"] == []
        promoted, report = recovered.promote()
        assert promoted == candidate and report.passed
        assert recovered.store.current() == candidate

    def test_controller_rollback_counts_and_swaps(self, tmp_path, index, ann):
        metrics = MetricsRegistry()
        swaps = []

        class FakeService:
            def swap_index(self, new_index, ann=None):
                swaps.append(new_index.n_items)

        controller = bootstrapped(tmp_path, index, ann, metrics=metrics)
        controller.ingest(stream(index, 60, seed=9))
        controller.build()
        promoted, _ = controller.promote()
        assert promoted is not None
        back = controller.rollback("operator decision", service=FakeService())
        assert back == "v000001"
        assert controller.store.current() == "v000001"
        assert swaps == [index.n_items]
        assert metrics.get("lifecycle_versions_total").value(outcome="rolled_back") == 1

    def test_status_reports_journal_and_versions(self, tmp_path, index, ann):
        controller = bootstrapped(tmp_path, index, ann)
        controller.ingest(stream(index, 25, seed=10))
        payload = controller.status()
        assert payload["current"] == "v000001"
        assert payload["journal"] == {"last_seq": 24, "lag": 25}
        assert [v["version"] for v in payload["versions"]] == ["v000001"]
