"""Write-ahead journal: framing, rotation, torn tails, corruption drills.

The property everything downstream leans on: after any crash, reopening
the journal and replaying yields exactly the events an uncrashed run
would have — bit-identical, verified via ``journal_digest``.
"""

import os

import pytest

from repro.faults import corrupt_journal
from repro.lifecycle.journal import (
    Event,
    JournalCorrupted,
    JournalWriter,
    encode_record,
    journal_digest,
    last_seq,
    read_segment,
    replay,
    segment_record_offsets,
)


def make_events(count, start=0):
    events = []
    for i in range(count):
        seq = start + i
        if i % 7 == 3:
            events.append(Event(seq=seq, kind="reprice", item=i % 5, price=1.5 * i))
        elif i % 7 == 5:
            events.append(Event(seq=seq, kind="add_item", item=100 + i, price=9.0, category=1))
        else:
            events.append(Event(seq=seq, kind="interaction", user=i % 11, item=i % 13))
    return events


def segments(directory, suffix):
    return sorted(f for f in os.listdir(directory) if f.endswith(suffix))


class TestEvent:
    def test_payload_round_trip(self):
        event = Event(seq=4, kind="add_item", item=12, price=3.25, category=2)
        assert Event.from_payload(event.to_payload()) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Event(seq=0, kind="checkout")

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError, match="seq"):
            Event(seq=-1, kind="interaction", user=0, item=0)


class TestWriterReplay:
    def test_round_trip(self, tmp_path):
        events = make_events(20)
        with JournalWriter(str(tmp_path)) as writer:
            for event in events:
                writer.append(event)
        assert replay(str(tmp_path)) == events
        assert last_seq(str(tmp_path)) == 19

    def test_after_seq_filter(self, tmp_path):
        events = make_events(10)
        with JournalWriter(str(tmp_path)) as writer:
            for event in events:
                writer.append(event)
        assert replay(str(tmp_path), after_seq=6) == events[7:]

    def test_seq_must_be_contiguous(self, tmp_path):
        with JournalWriter(str(tmp_path)) as writer:
            writer.append(Event(seq=0, kind="interaction", user=0, item=0))
            with pytest.raises(ValueError, match="next seq"):
                writer.append(Event(seq=5, kind="interaction", user=0, item=0))

    def test_rotation_seals_segments(self, tmp_path):
        with JournalWriter(str(tmp_path), segment_records=4) as writer:
            for event in make_events(10):
                writer.append(event)
        assert segments(str(tmp_path), ".wal") == [
            "segment-00000000.wal",
            "segment-00000001.wal",
        ]
        assert segments(str(tmp_path), ".open") == ["segment-00000002.open"]
        assert writer.stats.rotations == 2
        assert len(replay(str(tmp_path))) == 10

    def test_reopen_resumes_sequence(self, tmp_path):
        with JournalWriter(str(tmp_path), segment_records=4) as writer:
            for event in make_events(6):
                writer.append(event)
        with JournalWriter(str(tmp_path), segment_records=4) as writer:
            assert writer.next_seq == 6
            for event in make_events(3, start=6):
                writer.append(event)
        assert last_seq(str(tmp_path)) == 8

    def test_append_fields_assigns_next_seq(self, tmp_path):
        with JournalWriter(str(tmp_path)) as writer:
            first = writer.append_fields("interaction", user=1, item=2)
            second = writer.append_fields("reprice", item=2, price=4.5)
        assert (first.seq, second.seq) == (0, 1)


class TestTornTail:
    def write_then_tear(self, directory, count=9, segment_records=4):
        with JournalWriter(str(directory), segment_records=segment_records) as writer:
            for event in make_events(count):
                writer.append(event)
        open_segment = os.path.join(
            str(directory), segments(str(directory), ".open")[0]
        )
        torn_record = corrupt_journal(open_segment, truncate=True)
        return open_segment, torn_record

    def test_replay_tolerates_torn_final_record(self, tmp_path):
        self.write_then_tear(tmp_path, count=9, segment_records=4)
        # Records 0-7 are sealed; the open segment held seq 8, now torn.
        assert [e.seq for e in replay(str(tmp_path))] == list(range(8))

    def test_sealed_segment_must_end_cleanly(self, tmp_path):
        with JournalWriter(str(tmp_path), segment_records=4) as writer:
            for event in make_events(4):
                writer.append(event)
        sealed = os.path.join(str(tmp_path), segments(str(tmp_path), ".wal")[0])
        corrupt_journal(sealed, truncate=True)
        with pytest.raises(JournalCorrupted, match="truncated record"):
            replay(str(tmp_path))

    def test_recovery_is_bit_identical_to_uncrashed_run(self, tmp_path):
        crashed = tmp_path / "crashed"
        reference = tmp_path / "reference"
        events = make_events(11)

        # Crashed run: 9 events land, the 9th is torn mid-payload by the
        # "kill"; recovery truncates it and the stream is re-driven.
        crashed.mkdir()
        with JournalWriter(str(crashed), segment_records=4) as writer:
            for event in events[:9]:
                writer.append(event)
        open_segment = os.path.join(str(crashed), segments(str(crashed), ".open")[0])
        corrupt_journal(open_segment, truncate=True)
        with JournalWriter(str(crashed), segment_records=4) as writer:
            assert writer.stats.recovered_torn_bytes > 0
            for event in events:
                if event.seq >= writer.next_seq:
                    writer.append(event)

        reference.mkdir()
        with JournalWriter(str(reference), segment_records=4) as writer:
            for event in events:
                writer.append(event)

        assert journal_digest(str(crashed)) == journal_digest(str(reference))
        # Stronger than digest equality: the files themselves match.
        assert segments(str(crashed), ".wal") == segments(str(reference), ".wal")
        for name in segments(str(crashed), ".wal") + segments(str(crashed), ".open"):
            a = (crashed / name).read_bytes()
            b = (reference / name).read_bytes()
            assert a == b, f"segment {name} diverged after recovery"


class TestCorruption:
    def seal_one_segment(self, directory, count=6):
        with JournalWriter(str(directory), segment_records=count) as writer:
            for event in make_events(count):
                writer.append(event)
        return os.path.join(str(directory), segments(str(directory), ".wal")[0])

    def test_flip_names_the_bad_record(self, tmp_path):
        sealed = self.seal_one_segment(tmp_path)
        victim = corrupt_journal(sealed, record=3)
        assert victim == 3
        with pytest.raises(JournalCorrupted, match="record 3.*checksum") as info:
            replay(str(tmp_path))
        assert info.value.record == 3
        assert info.value.segment == sealed

    def test_seeded_flip_is_reproducible(self, tmp_path):
        a = self.seal_one_segment(tmp_path / "a")
        b = self.seal_one_segment(tmp_path / "b")
        assert corrupt_journal(a, seed=11) == corrupt_journal(b, seed=11)

    def test_corruption_detected_even_in_open_segment(self, tmp_path):
        with JournalWriter(str(tmp_path)) as writer:
            for event in make_events(5):
                writer.append(event)
        open_segment = os.path.join(str(tmp_path), segments(str(tmp_path), ".open")[0])
        corrupt_journal(open_segment, record=1)
        # Torn tails are tolerated; checksum mismatches never are.
        with pytest.raises(JournalCorrupted, match="record 1"):
            replay(str(tmp_path))

    def test_missing_segment_is_a_sequence_gap(self, tmp_path):
        with JournalWriter(str(tmp_path), segment_records=3) as writer:
            for event in make_events(9):
                writer.append(event)
        os.remove(os.path.join(str(tmp_path), "segment-00000001.wal"))
        with pytest.raises(JournalCorrupted, match="sequence gap"):
            replay(str(tmp_path))

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "segment-00000000.wal"
        path.write_bytes(b"NOTAWAL!!\n" + encode_record(b"{}"))
        with pytest.raises(JournalCorrupted, match="magic"):
            read_segment(str(path))

    def test_record_offsets_locate_every_record(self, tmp_path):
        sealed = self.seal_one_segment(tmp_path, count=4)
        offsets = segment_record_offsets(sealed)
        assert len(offsets) == 4
        assert offsets == sorted(offsets)

    def test_digest_changes_with_content(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        for directory, count in ((a, 5), (b, 6)):
            directory.mkdir()
            with JournalWriter(str(directory)) as writer:
                for event in make_events(count):
                    writer.append(event)
        assert journal_digest(str(a)) != journal_digest(str(b))
