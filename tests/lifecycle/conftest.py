"""Shared fixtures for the lifecycle suite: one small trained index.

Module/session scoping is safe because nothing in the lifecycle mutates
an input index — fold-in returns a new object, delta builds wrap it, and
the store only ever reads.
"""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.serving import build_ivf, export_index


@pytest.fixture(scope="session")
def dataset():
    config = SyntheticConfig(
        n_users=70, n_items=260, n_categories=4, seed=3,
    )
    return generate(config)[0]


@pytest.fixture(scope="session")
def index(dataset):
    model = pup_full(
        dataset, global_dim=12, category_dim=6, rng=np.random.default_rng(0)
    )
    model.eval()
    return export_index(model, dataset)


@pytest.fixture(scope="session")
def ann(index):
    # nprobe=7 of 8 lists: the operating point where recall@50 clears the
    # promotion floor on this tiny catalog (measured; full probe is 8).
    return build_ivf(index, nprobe=7, seed=0)
