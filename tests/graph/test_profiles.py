"""Tests for user-profile nodes (Section VII generality extension)."""

import numpy as np
import pytest

from repro.core import PUP
from repro.data import Dataset, InteractionTable, ItemCatalog
from repro.graph import HeteroGraph, NodeSpace


def make_dataset():
    catalog = ItemCatalog(
        raw_prices=[1.0, 2.0, 3.0, 4.0],
        categories=[0, 0, 1, 1],
        price_levels=[0, 1, 0, 1],
        n_categories=2,
        n_price_levels=2,
    )
    train = InteractionTable([0, 0, 1, 2], [0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0])
    empty = InteractionTable([], [], [])
    return Dataset("prof", 3, 4, catalog, train, empty, empty)


class TestNodeSpaceProfiles:
    def test_profile_offset_and_total(self):
        space = NodeSpace(3, 4, 2, 2, n_profiles=5)
        assert space.profile_offset == 11
        assert space.total == 16

    def test_profile_encoder(self):
        space = NodeSpace(3, 4, 2, 2, n_profiles=5)
        np.testing.assert_array_equal(space.profile([0, 4]), [11, 15])
        with pytest.raises(IndexError):
            space.profile([5])

    def test_node_type(self):
        space = NodeSpace(3, 4, 2, 2, n_profiles=2)
        assert space.node_type(10) == "price"
        assert space.node_type(11) == "profile"
        assert space.node_type(12) == "profile"

    def test_default_no_profiles(self):
        space = NodeSpace(3, 4, 2, 2)
        assert space.total == 11
        with pytest.raises(IndexError):
            space.profile([0])


class TestHeteroGraphProfiles:
    def test_profile_edges_added(self):
        profiles = np.array([0, 1, 0])
        graph = HeteroGraph(make_dataset(), user_profiles=profiles, n_profiles=2)
        # 12 base edges + 3 user-profile edges
        assert graph.n_edges == 15

    def test_user_connected_to_own_profile(self):
        profiles = np.array([0, 1, 0])
        graph = HeteroGraph(make_dataset(), user_profiles=profiles, n_profiles=2)
        adjacency = graph.adjacency()
        profile_node = graph.space.profile([1])[0]
        assert adjacency[1, profile_node] == 1.0
        assert adjacency[0, profile_node] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HeteroGraph(make_dataset(), user_profiles=np.array([0, 1]), n_profiles=2)
        with pytest.raises(ValueError):
            HeteroGraph(make_dataset(), user_profiles=np.array([0, 1, 0]), n_profiles=0)
        with pytest.raises(ValueError):
            HeteroGraph(make_dataset(), n_profiles=3)

    def test_normalized_rows_still_sum_to_one(self):
        graph = HeteroGraph(make_dataset(), user_profiles=np.array([0, 1, 0]), n_profiles=2)
        norm = graph.normalized_adjacency()
        np.testing.assert_allclose(np.asarray(norm.sum(axis=1)).ravel(), 1.0)


class TestPUPWithProfiles:
    def test_model_builds_and_scores(self):
        dataset = make_dataset()
        model = PUP(
            dataset,
            global_dim=8,
            category_dim=4,
            rng=np.random.default_rng(0),
            dropout=0.0,
            user_profiles=np.array([0, 1, 0]),
            n_profiles=2,
        )
        scores = model.predict_scores(np.array([0, 1, 2]))
        assert scores.shape == (3, 4)
        assert np.isfinite(scores).all()

    def test_profile_influences_user_scores(self):
        dataset = make_dataset()
        model = PUP(
            dataset,
            global_dim=8,
            category_dim=4,
            rng=np.random.default_rng(0),
            dropout=0.0,
            user_profiles=np.array([0, 1, 0]),
            n_profiles=2,
        )
        model.eval()
        base = model.predict_scores(np.array([0]))
        profile_node = model.global_graph.space.profile([0])[0]
        model.global_encoder.embedding.weight.data[profile_node] += 1.0
        after = model.predict_scores(np.array([0]))
        assert not np.allclose(base, after)

    def test_trains(self):
        from repro.train import TrainConfig, train_model

        dataset = make_dataset()
        model = PUP(
            dataset,
            global_dim=8,
            category_dim=4,
            rng=np.random.default_rng(0),
            dropout=0.0,
            user_profiles=np.array([0, 1, 0]),
            n_profiles=2,
        )
        result = train_model(model, dataset, TrainConfig(epochs=3, batch_size=4, seed=0))
        assert result.epochs_run == 3
