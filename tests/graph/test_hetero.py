"""Tests for the unified heterogeneous graph and normalized adjacency."""

import numpy as np
import pytest

from repro.data import Dataset, InteractionTable, ItemCatalog
from repro.graph import HeteroGraph, NodeSpace


def make_dataset():
    """3 users, 4 items, 2 categories, 2 price levels."""
    catalog = ItemCatalog(
        raw_prices=[1.0, 2.0, 3.0, 4.0],
        categories=[0, 0, 1, 1],
        price_levels=[0, 1, 0, 1],
        n_categories=2,
        n_price_levels=2,
    )
    train = InteractionTable([0, 0, 1, 2], [0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0])
    empty = InteractionTable([], [], [])
    return Dataset("g", 3, 4, catalog, train, empty, empty)


class TestNodeSpace:
    def setup_method(self):
        self.space = NodeSpace(3, 4, 2, 2)

    def test_total(self):
        assert self.space.total == 11

    def test_offsets(self):
        assert self.space.item_offset == 3
        assert self.space.category_offset == 7
        assert self.space.price_offset == 9

    def test_encoders(self):
        np.testing.assert_array_equal(self.space.user([0, 2]), [0, 2])
        np.testing.assert_array_equal(self.space.item([0, 3]), [3, 6])
        np.testing.assert_array_equal(self.space.category([0, 1]), [7, 8])
        np.testing.assert_array_equal(self.space.price([0, 1]), [9, 10])

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            self.space.user([3])
        with pytest.raises(IndexError):
            self.space.item([-1])
        with pytest.raises(IndexError):
            self.space.price([2])

    def test_node_type(self):
        assert self.space.node_type(0) == "user"
        assert self.space.node_type(3) == "item"
        assert self.space.node_type(7) == "category"
        assert self.space.node_type(10) == "price"
        with pytest.raises(IndexError):
            self.space.node_type(11)


class TestHeteroGraph:
    def test_edge_counts_full(self):
        graph = HeteroGraph(make_dataset())
        # 4 interaction edges + 4 item-category + 4 item-price = 12
        assert graph.n_edges == 12

    def test_adjacency_symmetric_binary(self):
        adjacency = HeteroGraph(make_dataset()).adjacency()
        diff = adjacency - adjacency.T
        assert abs(diff).sum() == 0
        assert set(np.unique(adjacency.data)) == {1.0}

    def test_no_self_loops_in_raw_adjacency(self):
        adjacency = HeteroGraph(make_dataset()).adjacency()
        assert adjacency.diagonal().sum() == 0

    def test_normalized_rows_sum_to_one(self):
        norm = HeteroGraph(make_dataset()).normalized_adjacency()
        np.testing.assert_allclose(np.asarray(norm.sum(axis=1)).ravel(), 1.0)

    def test_self_loops_present_in_normalized(self):
        norm = HeteroGraph(make_dataset()).normalized_adjacency()
        assert (norm.diagonal() > 0).all()

    def test_isolated_node_safe(self):
        # user 2 removed from train: no division-by-zero for isolated users.
        catalog = ItemCatalog([1.0], [0], [0], 1, 1)
        train = InteractionTable([0], [0], [0.0])
        empty = InteractionTable([], [], [])
        ds = Dataset("iso", 3, 1, catalog, train, empty, empty)
        norm = HeteroGraph(ds).normalized_adjacency()
        assert np.isfinite(norm.data).all()
        np.testing.assert_allclose(np.asarray(norm.sum(axis=1)).ravel(), 1.0)

    def test_without_prices(self):
        graph = HeteroGraph(make_dataset(), include_prices=False)
        # price nodes exist but have no incident edges
        assert graph.n_edges == 8
        adjacency = graph.adjacency()
        price_rows = adjacency[9:, :]
        assert price_rows.nnz == 0

    def test_without_categories(self):
        graph = HeteroGraph(make_dataset(), include_categories=False)
        assert graph.n_edges == 8
        adjacency = graph.adjacency()
        assert adjacency[7:9, :].nnz == 0

    def test_without_both(self):
        graph = HeteroGraph(make_dataset(), include_prices=False, include_categories=False)
        assert graph.n_edges == 4

    def test_duplicate_interactions_collapse(self):
        catalog = ItemCatalog([1.0], [0], [0], 1, 1)
        train = InteractionTable([0, 0, 0], [0, 0, 0], [0.0, 1.0, 2.0])
        empty = InteractionTable([], [], [])
        ds = Dataset("dup", 1, 1, catalog, train, empty, empty)
        graph = HeteroGraph(ds)
        assert graph.adjacency().max() == 1.0

    def test_degrees_include_self_loop(self):
        graph = HeteroGraph(make_dataset())
        degrees = graph.degrees()
        # user 0 interacted with 2 items -> degree 3 with self-loop
        assert degrees[0] == 3.0
        # item 0: user 0 + category 0 + price 0 + self = 4
        assert degrees[3] == 4.0

    def test_to_networkx(self):
        graph = HeteroGraph(make_dataset())
        g = graph.to_networkx()
        assert g.number_of_nodes() == 11
        assert g.number_of_edges() == 12
        assert g.nodes[0]["node_type"] == "user"
        assert g.nodes[9]["node_type"] == "price"

    def test_price_reachable_from_user_in_two_hops(self):
        import networkx as nx

        g = HeteroGraph(make_dataset()).to_networkx()
        # user 0 -> item 0 -> price node 9: the paper's "items as bridge".
        assert nx.shortest_path_length(g, source=0, target=9) == 2

    def test_propagation_matches_manual_average(self):
        """Â x must equal the hand-computed neighbor average (Eq. 2)."""
        graph = HeteroGraph(make_dataset())
        norm = graph.normalized_adjacency()
        x = np.arange(graph.n_nodes, dtype=float).reshape(-1, 1)
        out = norm @ x
        # user 0 neighbors: items 0,1 -> global ids 3,4 plus self 0.
        expected_user0 = (x[3] + x[4] + x[0]) / 3.0
        np.testing.assert_allclose(out[0], expected_user0)
