"""Vectorized metrics_from_rankings == per-user scalar reference, bit for bit.

The batch evaluator's determinism contract ("metrics bit-identical across
worker counts and arms") leans on the vectorized Recall/NDCG reduction
producing the exact floats the scalar ``recall_at_k`` / ``ndcg_at_k`` loop
produces — same per-user summation order, same divisions.  These tests pin
that equivalence on adversarial inputs.
"""

import numpy as np
import pytest

from repro.eval.metrics import mean_metric, ndcg_at_k, recall_at_k
from repro.eval.ranking import metrics_from_rankings


def scalar_reference(rankings, positives, ks):
    """The pre-vectorization implementation, verbatim."""
    ks = sorted(set(int(k) for k in ks))
    users = sorted(positives)
    results = {}
    for k in ks:
        recalls = [recall_at_k(rankings[user], positives[user], k) for user in users]
        ndcgs = [ndcg_at_k(rankings[user], positives[user], k) for user in users]
        results[f"Recall@{k}"] = mean_metric(recalls)
        results[f"NDCG@{k}"] = mean_metric(ndcgs)
    return results


@pytest.mark.parametrize("seed", range(25))
def test_bitwise_parity_on_random_cases(seed):
    rng = np.random.default_rng(seed)
    n_users = int(rng.integers(1, 30))
    n_items = int(rng.integers(15, 150))
    kmax = int(rng.integers(2, min(n_items, 25)))
    ks = sorted(set(int(k) for k in rng.integers(1, kmax + 1, size=3)))
    rankings = {user: rng.permutation(n_items)[:kmax] for user in range(n_users)}
    positives = {
        user: set(rng.permutation(n_items)[: int(rng.integers(1, 12))].tolist())
        for user in range(n_users)
    }
    got = metrics_from_rankings(rankings, positives, ks)
    want = scalar_reference(rankings, positives, ks)
    assert got.keys() == want.keys()
    for key in want:
        assert got[key] == want[key], key  # exact float equality, not approx


def test_all_hits_and_no_hits():
    rankings = {0: np.arange(10), 1: np.arange(10, 20)}
    positives = {0: set(range(5)), 1: {99}}
    got = metrics_from_rankings(rankings, positives, (5, 10))
    want = scalar_reference(rankings, positives, (5, 10))
    assert got == want
    assert got["Recall@5"] == pytest.approx(0.5)  # user 0 perfect, user 1 zero


def test_more_relevant_than_k():
    rankings = {0: np.arange(6)}
    positives = {0: set(range(20))}
    got = metrics_from_rankings(rankings, positives, (3, 6))
    assert got == scalar_reference(rankings, positives, (3, 6))


def test_sentinel_padded_rankings_count_as_misses():
    # A BulkRecommendations row whose pool was smaller than k pads with -1;
    # those must be plain misses, never wrap into the membership table.
    rankings = {0: np.array([49, -1, -1]), 1: np.array([5, 3, -1])}
    positives = {0: {49}, 1: {3}}
    got = metrics_from_rankings(rankings, positives, (3,))
    assert got == scalar_reference(rankings, positives, (3,))
    assert got["Recall@3"] == pytest.approx(1.0)  # one hit each, |relevant|=1


def test_ragged_rankings_fall_back_to_scalar_loop():
    # One user's list is shorter than max(ks): the vectorized path cannot
    # stack, but results must still match the scalar loop.
    rankings = {0: np.arange(10), 1: np.arange(3)}
    positives = {0: {1, 2}, 1: {0}}
    got = metrics_from_rankings(rankings, positives, (5,))
    assert got == scalar_reference(rankings, positives, (5,))


def test_rejects_empty_inputs():
    with pytest.raises(ValueError):
        metrics_from_rankings({}, {}, (5,))
    with pytest.raises(ValueError):
        metrics_from_rankings({0: np.arange(5)}, {0: set()}, (5,))
    with pytest.raises(ValueError):
        metrics_from_rankings({0: np.arange(5)}, {0: {1}}, ())
