"""Tests for full-ranking evaluation, cold-start protocols and user groups."""

import numpy as np
import pytest

from repro.baselines import ItemPop
from repro.core.base import Recommender
from repro.data import Dataset, InteractionTable, ItemCatalog, SyntheticConfig, generate
from repro.eval import (
    build_cold_start_task,
    consistency_groups,
    evaluate,
    evaluate_cold_start,
    evaluate_user_groups,
    topk_rankings,
)


class OracleModel(Recommender):
    """Scores items by a fixed matrix — lets tests control rankings exactly."""

    name = "oracle"
    trainable = False

    def __init__(self, dataset, matrix):
        super().__init__(dataset)
        self._matrix = matrix

    def predict_scores(self, users):
        return self._matrix[np.asarray(users, dtype=np.int64)]


def small_dataset():
    """3 users, 6 items, 2 categories; user 2's test item is cold-start."""
    catalog = ItemCatalog(
        raw_prices=[1, 2, 3, 4, 5, 6],
        categories=[0, 0, 0, 1, 1, 1],
        price_levels=[0, 1, 2, 0, 1, 2],
        n_categories=2,
        n_price_levels=3,
    )
    train = InteractionTable([0, 0, 1, 2, 2], [0, 1, 3, 0, 2], np.arange(5, dtype=float))
    valid = InteractionTable([0], [2], [5.0])
    test = InteractionTable([0, 1, 2], [3, 4, 5], [6.0, 7.0, 8.0])
    return Dataset("proto", 3, 6, catalog, train, valid, test)


class TestTopKRankings:
    def test_excludes_train_positives(self):
        ds = small_dataset()
        scores = np.zeros((3, 6))
        scores[0] = [10, 9, 8, 7, 6, 5]  # items 0,1 are train positives of user 0
        model = OracleModel(ds, scores)
        rankings = topk_rankings(model, ds, [0], k=3)
        assert 0 not in rankings[0]
        assert 1 not in rankings[0]
        np.testing.assert_array_equal(rankings[0], [2, 3, 4])

    def test_include_train(self):
        ds = small_dataset()
        scores = np.zeros((3, 6))
        scores[0] = [10, 9, 8, 7, 6, 5]
        model = OracleModel(ds, scores)
        rankings = topk_rankings(model, ds, [0], k=3, exclude_train=False)
        np.testing.assert_array_equal(rankings[0], [0, 1, 2])

    def test_candidate_pool_masks(self):
        ds = small_dataset()
        scores = np.tile(np.array([6.0, 5, 4, 3, 2, 1]), (3, 1))
        model = OracleModel(ds, scores)
        rankings = topk_rankings(
            model, ds, [1], k=6, candidate_items={1: np.array([4, 5])}
        )
        np.testing.assert_array_equal(rankings[1][:2], [4, 5])

    def test_invalid_k(self):
        ds = small_dataset()
        model = OracleModel(ds, np.zeros((3, 6)))
        with pytest.raises(ValueError):
            topk_rankings(model, ds, [0], k=0)

    def test_chunking_consistent(self):
        config = SyntheticConfig(n_users=50, n_items=60, interactions_per_user=6, seed=3)
        ds, __ = generate(config)
        model = ItemPop(ds)
        a = topk_rankings(model, ds, range(50), k=10, user_chunk=7)
        b = topk_rankings(model, ds, range(50), k=10, user_chunk=500)
        for user in range(50):
            np.testing.assert_array_equal(a[user], b[user])


class TestEvaluate:
    def test_oracle_gets_perfect_metrics(self):
        ds = small_dataset()
        # Score each user's test item highest among non-train items.
        scores = np.zeros((3, 6))
        scores[0, 3] = 10
        scores[1, 4] = 10
        scores[2, 5] = 10
        model = OracleModel(ds, scores)
        result = evaluate(model, ds, ks=(1,))
        assert result["Recall@1"] == 1.0
        assert result["NDCG@1"] == 1.0

    def test_anti_oracle_gets_zero(self):
        ds = small_dataset()
        scores = np.zeros((3, 6))
        scores[:, :] = 1.0
        scores[0, 3] = -10
        scores[1, 4] = -10
        scores[2, 5] = -10
        model = OracleModel(ds, scores)
        result = evaluate(model, ds, ks=(1,))
        assert result["Recall@1"] == 0.0

    def test_validation_split(self):
        ds = small_dataset()
        scores = np.zeros((3, 6))
        scores[0, 2] = 10
        model = OracleModel(ds, scores)
        result = evaluate(model, ds, split="validation", ks=(1,))
        assert result["Recall@1"] == 1.0

    def test_no_ks_rejected(self):
        ds = small_dataset()
        with pytest.raises(ValueError):
            evaluate(OracleModel(ds, np.zeros((3, 6))), ds, ks=())

    def test_metric_keys(self):
        ds = small_dataset()
        result = evaluate(OracleModel(ds, np.zeros((3, 6))), ds, ks=(1, 2))
        assert set(result) == {"Recall@1", "NDCG@1", "Recall@2", "NDCG@2"}


class TestColdStart:
    def test_task_identifies_cold_users(self):
        ds = small_dataset()
        task = build_cold_start_task(ds)
        # user 0 trained on cat 0, test item 3 is cat 1 -> cold.
        # user 1 trained on cat 1 (item 3), test item 4 is cat 1 -> not cold.
        # user 2 trained on cat 0, test item 5 is cat 1 -> cold.
        assert set(task.users) == {0, 2}
        assert task.relevant[0] == {3}
        assert task.relevant[2] == {5}

    def test_cir_pool_is_test_categories(self):
        ds = small_dataset()
        task = build_cold_start_task(ds)
        np.testing.assert_array_equal(np.sort(task.cir_pool[0]), [3, 4, 5])

    def test_ucir_pool_is_unexplored_categories(self):
        ds = small_dataset()
        task = build_cold_start_task(ds)
        # user 0 trained only on category 0 -> unexplored = category 1.
        np.testing.assert_array_equal(np.sort(task.ucir_pool[0]), [3, 4, 5])

    def test_evaluate_cold_start_oracle(self):
        ds = small_dataset()
        scores = np.zeros((3, 6))
        scores[0, 3] = 10
        scores[2, 5] = 10
        model = OracleModel(ds, scores)
        for protocol in ("CIR", "UCIR"):
            result = evaluate_cold_start(model, ds, protocol=protocol, ks=(1,))
            assert result["Recall@1"] == 1.0

    def test_unknown_protocol(self):
        ds = small_dataset()
        with pytest.raises(ValueError):
            evaluate_cold_start(OracleModel(ds, np.zeros((3, 6))), ds, protocol="XIR")

    def test_no_cold_users_raises(self):
        catalog = ItemCatalog([1.0, 2.0], [0, 0], [0, 1], 1, 2)
        train = InteractionTable([0], [0], [0.0])
        test = InteractionTable([0], [1], [1.0])
        ds = Dataset("warm", 1, 2, catalog, train, InteractionTable([], [], []), test)
        with pytest.raises(ValueError):
            evaluate_cold_start(OracleModel(ds, np.zeros((1, 2))), ds)


class TestUserGroups:
    def test_groups_partition_users(self):
        config = SyntheticConfig(n_users=60, n_items=80, interactions_per_user=10, seed=5)
        ds, __ = generate(config)
        groups = consistency_groups(ds)
        both = set(groups["consistent"]) | set(groups["inconsistent"])
        overlap = set(groups["consistent"]) & set(groups["inconsistent"])
        assert not overlap
        assert both  # some users grouped

    def test_evaluate_user_groups(self):
        config = SyntheticConfig(n_users=60, n_items=80, interactions_per_user=10, seed=5)
        ds, __ = generate(config)
        model = ItemPop(ds)
        groups = consistency_groups(ds)
        results = evaluate_user_groups(model, ds, groups, ks=(10,))
        assert set(results) == {"consistent", "inconsistent"}
        for metrics in results.values():
            assert 0.0 <= metrics["Recall@10"] <= 1.0

    def test_empty_group_rejected(self):
        ds = small_dataset()
        model = OracleModel(ds, np.zeros((3, 6)))
        with pytest.raises(ValueError):
            evaluate_user_groups(model, ds, {"ghost": []}, ks=(1,))
