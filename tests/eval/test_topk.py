"""Property tests for the shared masked top-K kernel."""

import numpy as np
import pytest

from repro.eval.topk import NEG_INF, masked_topk, topk_indices, topk_pairs


def naive_topk(scores: np.ndarray, k: int) -> np.ndarray:
    """Reference: stable full argsort (descending score, ties by index)."""
    return np.argsort(-scores, kind="stable")[: min(k, len(scores))]


class TestTopkIndices:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_naive_on_random_floats(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        k = int(rng.integers(1, n + 5))
        scores = rng.normal(size=n)
        np.testing.assert_array_equal(topk_indices(scores, k), naive_topk(scores, k))

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_naive_with_heavy_ties(self, seed):
        # Quantized scores force many exact ties, including at the k-boundary
        # where a bare argpartition makes arbitrary choices.
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 150))
        k = int(rng.integers(1, n))
        scores = rng.integers(0, 4, size=n).astype(np.float64)
        np.testing.assert_array_equal(topk_indices(scores, k), naive_topk(scores, k))

    def test_all_equal_scores_selects_lowest_ids(self):
        scores = np.zeros(10)
        np.testing.assert_array_equal(topk_indices(scores, 4), [0, 1, 2, 3])

    def test_k_clipped_to_length(self):
        scores = np.array([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(topk_indices(scores, 10), [0, 2, 1])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            topk_indices(np.zeros(3), 0)
        with pytest.raises(ValueError):
            topk_indices(np.zeros((2, 2)), 1)


class TestTopkPairs:
    @pytest.mark.parametrize("seed", range(10))
    def test_ties_break_by_item_id_not_position(self, seed):
        rng = np.random.default_rng(seed)
        n = 50
        ids = rng.permutation(1000)[:n]
        values = rng.integers(0, 3, size=n).astype(np.float64)
        sel = topk_pairs(ids, values, 7)
        chosen = list(zip(values[sel], ids[sel]))
        expected = sorted(zip(values, ids), key=lambda p: (-p[0], p[1]))[:7]
        assert chosen == expected


class TestMaskedTopk:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_naive_under_masks(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 120))
        k = int(rng.integers(1, n))
        scores = rng.integers(0, 5, size=n).astype(np.float64) + rng.normal(scale=1e-3, size=n)
        exclude = rng.permutation(n)[: int(rng.integers(0, n // 2 + 1))]
        candidates = np.flatnonzero(rng.random(n) < 0.7)
        if len(candidates) == 0:
            candidates = np.array([0])

        reference = scores.copy()
        mask = np.full(n, NEG_INF)
        mask[candidates] = 0.0
        reference = reference + mask
        reference[exclude] = NEG_INF

        got = masked_topk(scores, k, exclude_items=exclude if len(exclude) else None,
                          candidate_items=candidates)
        np.testing.assert_array_equal(got, naive_topk(reference, k))

    def test_drop_masked_returns_only_allowed(self):
        scores = np.arange(10, dtype=np.float64)
        got = masked_topk(scores, 5, candidate_items=np.array([1, 3]), drop_masked=True)
        np.testing.assert_array_equal(got, [3, 1])

    def test_drop_masked_with_exclusions(self):
        scores = np.arange(6, dtype=np.float64)
        got = masked_topk(scores, 6, exclude_items=[5, 4], drop_masked=True)
        np.testing.assert_array_equal(got, [3, 2, 1, 0])

    def test_extreme_scores_cannot_pierce_masks(self):
        # A huge score must not leak past a candidate mask, and a hugely
        # negative (but unmasked) item must not be mistaken for masked.
        scores = np.array([-6e11, 1.0, 2.0, 1e13])
        got = masked_topk(scores, 4, candidate_items=np.array([0, 1, 2]), drop_masked=True)
        np.testing.assert_array_equal(got, [2, 1, 0])  # item 3 masked out, item 0 kept
        got = masked_topk(scores, 4, exclude_items=[1], drop_masked=True)
        np.testing.assert_array_equal(got, [3, 2, 0])

    def test_no_mask_keeps_everything(self):
        scores = np.array([0.5, 2.5, 1.5])
        np.testing.assert_array_equal(masked_topk(scores, 2), [1, 2])
