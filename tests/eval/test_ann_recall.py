"""The ANN recall-vs-exact harness."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.eval import ann_recall_at_k, ann_recall_report
from repro.serving import QuantizedIndex, build_ivf, export_index


class TestAnnRecallAtK:
    def test_perfect_overlap(self):
        rankings = {0: np.array([3, 1, 2]), 1: np.array([5, 4, 0])}
        assert ann_recall_at_k(rankings, rankings, k=3) == 1.0

    def test_order_within_topk_does_not_matter(self):
        exact = {0: np.array([3, 1, 2])}
        approx = {0: np.array([2, 3, 1])}
        assert ann_recall_at_k(exact, approx, k=3) == 1.0

    def test_partial_overlap_averages_per_user(self):
        exact = {0: np.array([1, 2]), 1: np.array([3, 4])}
        approx = {0: np.array([1, 9]), 1: np.array([8, 9])}
        assert ann_recall_at_k(exact, approx, k=2) == pytest.approx(0.25)

    def test_sentinel_padding_ignored(self):
        exact = {0: np.array([1, 2, -1, -1])}
        approx = {0: np.array([2, 1, -1, -1])}
        assert ann_recall_at_k(exact, approx, k=4) == 1.0

    def test_empty_exact_list_counts_as_recalled(self):
        exact = {0: np.array([-1, -1])}
        approx = {0: np.array([5, 6])}
        assert ann_recall_at_k(exact, approx, k=2) == 1.0

    def test_missing_user_raises(self):
        with pytest.raises(KeyError, match="missing user"):
            ann_recall_at_k({0: np.array([1])}, {}, k=1)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match="k must be"):
            ann_recall_at_k({0: np.array([1])}, {0: np.array([1])}, k=0)


class TestReport:
    @pytest.fixture(scope="class")
    def setup(self):
        config = SyntheticConfig(
            n_users=50, n_items=150, n_categories=4, n_price_levels=4,
            interactions_per_user=7, seed=43,
        )
        dataset = generate(config)[0]
        model = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(6))
        model.eval()
        index = export_index(model, dataset)
        return dataset, index

    def test_full_probe_arm_reports_perfect_recall(self, setup):
        _, index = setup
        ivf = build_ivf(index, n_lists=8, nprobe=8, seed=0)
        users = np.arange(30)
        report = ann_recall_report(index, ivf, users, k=10, scorers=("exact",))
        (arm,) = report["arms"].values()
        assert arm["recall_at_k"] == 1.0
        assert report["evaluated_users"] == 30

    def test_sweep_covers_every_requested_arm(self, setup):
        _, index = setup
        ivf = build_ivf(index, n_lists=8, nprobe=2, seed=0)
        report = ann_recall_report(
            index, ivf, np.arange(20), k=10,
            nprobes=(1, 8), scorers=("exact", "int8"),
        )
        assert set(report["arms"]) == {
            "nprobe1_exact", "nprobe1_int8", "nprobe8_exact", "nprobe8_int8",
        }
        assert report["arms"]["nprobe8_exact"]["recall_at_k"] == 1.0
        assert (
            report["arms"]["nprobe1_exact"]["recall_at_k"]
            <= report["arms"]["nprobe8_exact"]["recall_at_k"]
        )

    def test_quantized_full_scan_index_also_measurable(self, setup):
        _, index = setup
        quantized = QuantizedIndex.build(index)
        report = ann_recall_report(index, quantized, np.arange(25), k=10)
        (arm,) = report["arms"].values()
        assert 0.0 <= arm["recall_at_k"] <= 1.0
