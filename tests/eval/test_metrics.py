"""Tests for Recall@K / NDCG@K."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import mean_metric, ndcg_at_k, recall_at_k


class TestRecall:
    def test_perfect(self):
        assert recall_at_k(np.array([1, 2, 3]), {1, 2, 3}, 3) == 1.0

    def test_zero(self):
        assert recall_at_k(np.array([4, 5, 6]), {1, 2}, 3) == 0.0

    def test_partial(self):
        assert recall_at_k(np.array([1, 9, 8]), {1, 2}, 3) == 0.5

    def test_k_truncates(self):
        assert recall_at_k(np.array([9, 9, 1]), {1}, 2) == 0.0
        assert recall_at_k(np.array([9, 9, 1]), {1}, 3) == 1.0

    def test_empty_relevant_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k(np.array([1]), set(), 1)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            recall_at_k(np.array([1]), {1}, 0)


class TestNDCG:
    def test_perfect_is_one(self):
        assert ndcg_at_k(np.array([1, 2, 3]), {1, 2, 3}, 3) == pytest.approx(1.0)

    def test_zero(self):
        assert ndcg_at_k(np.array([4, 5]), {1}, 2) == 0.0

    def test_rank_position_matters(self):
        first = ndcg_at_k(np.array([1, 9]), {1}, 2)
        second = ndcg_at_k(np.array([9, 1]), {1}, 2)
        assert first > second

    def test_known_value(self):
        # hit at rank 1 (0-indexed): DCG = 1/log2(3); IDCG = 1/log2(2) = 1.
        got = ndcg_at_k(np.array([9, 1]), {1}, 2)
        assert got == pytest.approx(1.0 / np.log2(3.0))

    def test_idcg_uses_min_k_relevant(self):
        # 3 relevant, k=2, both hits -> NDCG = 1 (ideal also capped at 2).
        got = ndcg_at_k(np.array([1, 2]), {1, 2, 3}, 2)
        assert got == pytest.approx(1.0)

    def test_empty_relevant_rejected(self):
        with pytest.raises(ValueError):
            ndcg_at_k(np.array([1]), set(), 1)


class TestMeanMetric:
    def test_mean(self):
        assert mean_metric([0.0, 1.0]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_metric([])


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=20, unique=True),
    st.sets(st.integers(min_value=0, max_value=50), min_size=1, max_size=10),
    st.integers(min_value=1, max_value=20),
)
def test_metrics_bounded(ranking, relevant, k):
    ranking = np.array(ranking)
    assert 0.0 <= recall_at_k(ranking, relevant, k) <= 1.0
    assert 0.0 <= ndcg_at_k(ranking, relevant, k) <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=2, max_size=20, unique=True),
    st.sets(st.integers(min_value=0, max_value=30), min_size=1, max_size=5),
)
def test_recall_monotone_in_k(ranking, relevant):
    ranking = np.array(ranking)
    values = [recall_at_k(ranking, relevant, k) for k in range(1, len(ranking) + 1)]
    assert all(a <= b for a, b in zip(values, values[1:]))
