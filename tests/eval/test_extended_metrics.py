"""Tests for the extended metrics and price-aware diagnostics."""

import numpy as np
import pytest

from repro.data import Dataset, InteractionTable, ItemCatalog
from repro.eval import (
    average_precision_at_k,
    category_coverage,
    evaluate_extended,
    hit_rate_at_k,
    mrr_at_k,
    precision_at_k,
    preferred_price_level,
    price_calibration_error,
    price_level_coverage,
)


def make_dataset():
    catalog = ItemCatalog(
        raw_prices=[1, 2, 3, 4, 5, 6],
        categories=[0, 0, 1, 1, 2, 2],
        price_levels=[0, 1, 0, 1, 0, 1],
        n_categories=3,
        n_price_levels=2,
    )
    train = InteractionTable([0, 0, 1], [0, 2, 1], [0.0, 1.0, 2.0])
    empty = InteractionTable([], [], [])
    return Dataset("ext", 2, 6, catalog, train, empty, empty)


class TestClassicMetrics:
    def test_precision(self):
        assert precision_at_k(np.array([1, 2, 3, 4]), {1, 3}, 4) == 0.5
        assert precision_at_k(np.array([1, 2]), {1}, 2) == 0.5

    def test_hit_rate(self):
        assert hit_rate_at_k(np.array([5, 1]), {1}, 2) == 1.0
        assert hit_rate_at_k(np.array([5, 6]), {1}, 2) == 0.0

    def test_mrr_first_position(self):
        assert mrr_at_k(np.array([1, 2]), {1}, 2) == 1.0

    def test_mrr_second_position(self):
        assert mrr_at_k(np.array([9, 1]), {1}, 2) == 0.5

    def test_mrr_no_hit(self):
        assert mrr_at_k(np.array([9, 8]), {1}, 2) == 0.0

    def test_map_perfect(self):
        assert average_precision_at_k(np.array([1, 2]), {1, 2}, 2) == 1.0

    def test_map_partial(self):
        # hit at ranks 1 and 3: AP = (1/1 + 2/3)/2
        got = average_precision_at_k(np.array([1, 9, 2]), {1, 2}, 3)
        assert got == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    @pytest.mark.parametrize("fn", [precision_at_k, hit_rate_at_k, mrr_at_k, average_precision_at_k])
    def test_validation(self, fn):
        with pytest.raises(ValueError):
            fn(np.array([1]), set(), 1)
        with pytest.raises(ValueError):
            fn(np.array([1]), {1}, 0)

    def test_evaluate_extended_keys(self):
        rankings = {0: np.array([0, 1, 2])}
        positives = {0: {1}}
        results = evaluate_extended(rankings, positives, ks=(2,))
        assert set(results) == {"Precision@2", "HitRate@2", "MRR@2", "MAP@2"}

    def test_evaluate_extended_no_users(self):
        with pytest.raises(ValueError):
            evaluate_extended({0: np.array([1])}, {}, ks=(1,))


class TestPriceDiagnostics:
    def test_preferred_price_level(self):
        ds = make_dataset()
        # user 0 bought items 0 (level 0) and 2 (level 0) -> mean 0.
        assert preferred_price_level(ds, 0) == 0.0
        # user 1 bought item 1 (level 1).
        assert preferred_price_level(ds, 1) == 1.0

    def test_preferred_price_level_validation(self):
        ds = make_dataset()
        with pytest.raises(IndexError):
            preferred_price_level(ds, 9)

    def test_calibration_error_zero_when_matched(self):
        ds = make_dataset()
        # recommend only level-0 items to user 0 (preferred level 0).
        rankings = {0: np.array([0, 2, 4])}
        assert price_calibration_error(ds, rankings, k=3) == 0.0

    def test_calibration_error_positive_when_mismatched(self):
        ds = make_dataset()
        rankings = {0: np.array([1, 3, 5])}  # all level 1 vs preferred 0
        assert price_calibration_error(ds, rankings, k=3) == 1.0

    def test_category_coverage(self):
        ds = make_dataset()
        rankings = {0: np.array([0, 2, 4])}  # categories 0, 1, 2 -> full coverage
        assert category_coverage(ds, rankings, k=3) == 1.0
        rankings = {0: np.array([0, 1])}  # only category 0
        assert category_coverage(ds, rankings, k=2) == pytest.approx(1 / 3)

    def test_price_level_coverage(self):
        ds = make_dataset()
        rankings = {0: np.array([0, 1])}  # levels 0 and 1
        assert price_level_coverage(ds, rankings, k=2) == 1.0

    def test_empty_rankings_rejected(self):
        ds = make_dataset()
        with pytest.raises(ValueError):
            category_coverage(ds, {}, k=1)
        with pytest.raises(ValueError):
            price_level_coverage(ds, {}, k=1)
