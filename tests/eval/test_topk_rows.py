"""Row-vectorized top-K kernels: bit-parity with the per-row references."""

import numpy as np
import pytest

from repro.eval.topk import (
    NEG_INF,
    masked_topk,
    topk_indices,
    topk_indices_rows,
    topk_pairs,
    topk_pairs_rows,
)


class TestTopkIndicesRows:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_per_row_on_random_floats(self, seed):
        rng = np.random.default_rng(seed)
        rows, n = int(rng.integers(1, 12)), int(rng.integers(1, 150))
        k = int(rng.integers(1, n + 4))
        scores = rng.normal(size=(rows, n))
        got = topk_indices_rows(scores, k)
        for row in range(rows):
            np.testing.assert_array_equal(got[row], topk_indices(scores[row], k))

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_per_row_with_heavy_ties(self, seed):
        # Quantized scores force many exact ties at the k-boundary, the case
        # where argpartition's arbitrary choice must be repaired per row.
        rng = np.random.default_rng(100 + seed)
        rows, n = int(rng.integers(1, 10)), int(rng.integers(2, 80))
        k = int(rng.integers(1, n))
        scores = rng.integers(0, 3, size=(rows, n)).astype(np.float64)
        got = topk_indices_rows(scores, k)
        for row in range(rows):
            np.testing.assert_array_equal(got[row], topk_indices(scores[row], k))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_masked_rows_and_dtype(self, dtype):
        rng = np.random.default_rng(5)
        scores = rng.integers(0, 4, size=(6, 40)).astype(dtype)
        scores[rng.random(scores.shape) < 0.4] = NEG_INF
        got = topk_indices_rows(scores, 7)
        for row in range(len(scores)):
            np.testing.assert_array_equal(got[row], topk_indices(scores[row], 7))

    def test_all_equal_rows_select_lowest_ids(self):
        got = topk_indices_rows(np.zeros((3, 10)), 4)
        np.testing.assert_array_equal(got, np.tile([0, 1, 2, 3], (3, 1)))

    def test_k_clipped_and_empty(self):
        got = topk_indices_rows(np.array([[3.0, 1.0, 2.0]]), 10)
        np.testing.assert_array_equal(got, [[0, 2, 1]])
        assert topk_indices_rows(np.empty((0, 5)), 3).shape == (0, 3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            topk_indices_rows(np.zeros((2, 3)), 0)
        with pytest.raises(ValueError):
            topk_indices_rows(np.zeros(3), 1)


class TestTopkPairsRows:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_per_row(self, seed):
        rng = np.random.default_rng(seed)
        rows, length = int(rng.integers(1, 8)), int(rng.integers(1, 50))
        k = int(rng.integers(1, length + 3))
        ids = np.stack([rng.permutation(1000)[:length] for _ in range(rows)])
        values = rng.integers(0, 3, size=(rows, length)).astype(np.float64)
        got = topk_pairs_rows(ids, values, k)
        for row in range(rows):
            np.testing.assert_array_equal(got[row], topk_pairs(ids[row], values[row], k))

    def test_ties_break_by_item_id_across_columns(self):
        ids = np.array([[500, 3, 7, 100]])
        values = np.array([[1.0, 1.0, 2.0, 1.0]])
        sel = topk_pairs_rows(ids, values, 3)[0]
        np.testing.assert_array_equal(ids[0][sel], [7, 3, 100])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            topk_pairs_rows(np.zeros((2, 3)), np.zeros((2, 4)), 1)
        with pytest.raises(ValueError):
            topk_pairs_rows(np.zeros(3), np.zeros(3), 1)

    @pytest.mark.parametrize("seed", range(10))
    def test_partition_fast_path_matches_per_row(self, seed):
        """k << L exercises the argpartition path (the ANN-merge shape)."""
        rng = np.random.default_rng(seed)
        rows, length, k = int(rng.integers(1, 6)), int(rng.integers(64, 300)), 5
        ids = np.stack([rng.permutation(2000)[:length] for _ in range(rows)])
        # integer-valued scores: heavy exact ties at the k-th rank
        values = rng.integers(0, 6, size=(rows, length)).astype(np.float64)
        got = topk_pairs_rows(ids, values, k)
        for row in range(rows):
            np.testing.assert_array_equal(got[row], topk_pairs(ids[row], values[row], k))

    def test_fast_path_boundary_ties_pick_lowest_item_ids(self):
        length, k = 100, 4
        ids = np.arange(length)[None, ::-1].copy()  # ids descend across columns
        values = np.full((1, length), 7.0)
        values[0, :2] = 9.0  # two clear winners, the rest tied at the boundary
        sel = topk_pairs_rows(ids, values, k)[0]
        np.testing.assert_array_equal(ids[0][sel], [98, 99, 0, 1])

    def test_fast_path_handles_all_neg_inf_rows(self):
        ids = np.arange(80)[None, :].copy()
        values = np.full((1, 80), -np.inf)
        sel = topk_pairs_rows(ids, values, 3)[0]
        np.testing.assert_array_equal(ids[0][sel], [0, 1, 2])


class TestMaskedTopkDtype:
    def test_float32_rows_are_not_upcast(self, monkeypatch):
        seen = []
        original = topk_indices

        def spy(scores, k):
            seen.append(scores.dtype)
            return original(scores, k)

        monkeypatch.setattr("repro.eval.topk.topk_indices", spy)
        scores = np.random.default_rng(0).normal(size=30).astype(np.float32)
        masked_topk(scores, 5, exclude_items=[1, 2], candidate_items=np.arange(25))
        assert seen and all(dtype == np.float32 for dtype in seen)

    def test_float32_ranking_equals_float64(self):
        rng = np.random.default_rng(3)
        scores = rng.integers(0, 5, size=80).astype(np.float32)
        exclude = [4, 9, 11]
        candidates = np.flatnonzero(rng.random(80) < 0.8)
        got32 = masked_topk(scores, 10, exclude_items=exclude, candidate_items=candidates)
        got64 = masked_topk(
            scores.astype(np.float64), 10, exclude_items=exclude, candidate_items=candidates
        )
        np.testing.assert_array_equal(got32, got64)

    def test_integer_scores_still_coerced_to_float(self):
        got = masked_topk(np.array([3, 1, 2]), 2)
        np.testing.assert_array_equal(got, [0, 2])
