"""Tests for the GCN encoder and the pairwise-interaction decoder."""

import numpy as np
import pytest

from repro.core import GCNEncoder, pairwise_interaction, pairwise_interaction_numpy
from repro.data import Dataset, InteractionTable, ItemCatalog
from repro.graph import HeteroGraph
from repro.nn import Tensor


def make_dataset():
    catalog = ItemCatalog(
        raw_prices=[1.0, 2.0, 3.0, 4.0],
        categories=[0, 0, 1, 1],
        price_levels=[0, 1, 0, 1],
        n_categories=2,
        n_price_levels=2,
    )
    train = InteractionTable([0, 0, 1, 2], [0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0])
    empty = InteractionTable([], [], [])
    return Dataset("enc", 3, 4, catalog, train, empty, empty)


class TestGCNEncoder:
    def test_output_shape(self):
        graph = HeteroGraph(make_dataset())
        encoder = GCNEncoder(graph, dim=8, rng=np.random.default_rng(0), dropout=0.0)
        out = encoder()
        assert out.shape == (graph.n_nodes, 8)

    def test_output_bounded_by_tanh(self):
        graph = HeteroGraph(make_dataset())
        encoder = GCNEncoder(graph, dim=8, rng=np.random.default_rng(0), dropout=0.0)
        assert np.all(np.abs(encoder().data) <= 1.0)

    def test_matches_manual_formula(self):
        """F_out must equal tanh(Â W) exactly (Eq. 6)."""
        graph = HeteroGraph(make_dataset())
        encoder = GCNEncoder(graph, dim=4, rng=np.random.default_rng(1), dropout=0.0)
        expected = np.tanh(graph.normalized_adjacency() @ encoder.embedding.weight.data)
        np.testing.assert_allclose(encoder().data, expected)

    def test_inference_path_matches_training_path(self):
        graph = HeteroGraph(make_dataset())
        encoder = GCNEncoder(graph, dim=4, rng=np.random.default_rng(1), dropout=0.0)
        np.testing.assert_allclose(encoder.propagate_inference(), encoder().data)

    def test_zero_layers_returns_embeddings(self):
        graph = HeteroGraph(make_dataset())
        encoder = GCNEncoder(graph, dim=4, rng=np.random.default_rng(1), dropout=0.0, n_layers=0)
        np.testing.assert_allclose(encoder().data, encoder.embedding.weight.data)

    def test_two_layers_stack(self):
        graph = HeteroGraph(make_dataset())
        encoder = GCNEncoder(graph, dim=4, rng=np.random.default_rng(1), dropout=0.0, n_layers=2)
        adjacency = graph.normalized_adjacency()
        expected = np.tanh(adjacency @ np.tanh(adjacency @ encoder.embedding.weight.data))
        np.testing.assert_allclose(encoder().data, expected)

    def test_dropout_only_in_training(self):
        graph = HeteroGraph(make_dataset())
        encoder = GCNEncoder(graph, dim=32, rng=np.random.default_rng(0), dropout=0.5)
        encoder.train()
        assert (encoder().data == 0.0).any()
        encoder.eval()
        assert not (encoder().data == 0.0).any()

    def test_gradient_reaches_embeddings(self):
        graph = HeteroGraph(make_dataset())
        encoder = GCNEncoder(graph, dim=4, rng=np.random.default_rng(0), dropout=0.0)
        encoder().sum().backward()
        assert encoder.embedding.weight.grad is not None
        assert np.abs(encoder.embedding.weight.grad).sum() > 0

    def test_invalid_dim(self):
        graph = HeteroGraph(make_dataset())
        with pytest.raises(ValueError):
            GCNEncoder(graph, dim=0)

    def test_invalid_layers(self):
        graph = HeteroGraph(make_dataset())
        with pytest.raises(ValueError):
            GCNEncoder(graph, dim=4, n_layers=-1)

    def test_price_influences_user_representation(self):
        """Perturbing a price embedding must change connected users' outputs
        (the 'propagate price to users through items' claim)."""
        dataset = make_dataset()
        graph = HeteroGraph(dataset)
        encoder = GCNEncoder(graph, dim=4, rng=np.random.default_rng(0), dropout=0.0)
        base = encoder.propagate_inference()
        price_node = graph.space.price([0])[0]
        encoder.embedding.weight.data[price_node] += 1.0
        after = encoder.propagate_inference()
        # user 0 bought item 0 (price level 0): one hop is item, price is 2 hops;
        # with a single conv layer the *item* row changes, users change at 2 layers.
        item_node = graph.space.item([0])[0]
        assert np.abs(after[item_node] - base[item_node]).sum() > 0


class TestPairwiseInteraction:
    def test_matches_explicit_sum(self):
        rng = np.random.default_rng(0)
        a, b, c = (rng.normal(size=(5, 4)) for _ in range(3))
        expected = (a * b).sum(1) + (a * c).sum(1) + (b * c).sum(1)
        out = pairwise_interaction([Tensor(a), Tensor(b), Tensor(c)])
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_two_features_is_dot_product(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        out = pairwise_interaction([Tensor(a), Tensor(b)])
        np.testing.assert_allclose(out.data, (a * b).sum(1), atol=1e-12)

    def test_numpy_twin_agrees(self):
        rng = np.random.default_rng(2)
        arrays = [rng.normal(size=(6, 8)) for _ in range(4)]
        tensor_out = pairwise_interaction([Tensor(x) for x in arrays])
        numpy_out = pairwise_interaction_numpy(arrays)
        np.testing.assert_allclose(tensor_out.data, numpy_out, atol=1e-12)

    def test_single_feature_rejected(self):
        with pytest.raises(ValueError):
            pairwise_interaction([Tensor(np.ones((2, 2)))])
        with pytest.raises(ValueError):
            pairwise_interaction_numpy([np.ones((2, 2))])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pairwise_interaction([Tensor(np.ones((2, 2))), Tensor(np.ones((3, 2)))])

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(4, 3))

        ta = Tensor(a, requires_grad=True)
        pairwise_interaction([ta, Tensor(b)]).sum().backward()
        np.testing.assert_allclose(ta.grad, b, atol=1e-10)
