"""Tests for the PUP model and its ablation variants."""

import numpy as np
import pytest

from repro.core import (
    PUP,
    pup_full,
    pup_minus,
    pup_with_category,
    pup_with_price,
    pup_without_price_and_category,
)
from repro.core.decoder import pairwise_interaction_numpy
from repro.data import SyntheticConfig, generate


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(
        n_users=40, n_items=50, n_categories=4, n_price_levels=3,
        interactions_per_user=8, seed=11,
    )
    return generate(config)[0]


def make_model(dataset, **kwargs):
    defaults = dict(global_dim=12, category_dim=4, dropout=0.0, rng=np.random.default_rng(0))
    defaults.update(kwargs)
    return PUP(dataset, **defaults)


class TestConstruction:
    def test_two_branch_by_default(self, dataset):
        model = make_model(dataset)
        assert model.two_branch
        assert model.category_encoder is not None

    def test_invalid_dims(self, dataset):
        with pytest.raises(ValueError):
            make_model(dataset, global_dim=0)
        with pytest.raises(ValueError):
            make_model(dataset, category_dim=0)

    def test_invalid_alpha(self, dataset):
        with pytest.raises(ValueError):
            make_model(dataset, alpha=-1.0)

    def test_single_branch_gets_full_budget(self, dataset):
        model = make_model(dataset, use_price=True, use_category=False)
        assert not model.two_branch
        assert model.global_encoder.dim == 16  # 12 + 4

    def test_branch_graphs_respect_flags(self, dataset):
        model = make_model(dataset, use_price=False, use_category=True)
        assert not model.global_graph.include_prices
        assert model.global_graph.include_categories


class TestScoring:
    def test_score_pairs_shape(self, dataset):
        model = make_model(dataset)
        scores = model.score_pairs(np.array([0, 1, 2]), np.array([3, 4, 5]))
        assert scores.shape == (3,)

    def test_pair_shape_mismatch(self, dataset):
        model = make_model(dataset)
        with pytest.raises(ValueError):
            model.score_pairs(np.array([0, 1]), np.array([0]))

    def test_predict_matches_score_pairs(self, dataset):
        """The vectorized eval path must agree with the training decoder."""
        model = make_model(dataset)
        model.eval()
        users = np.array([0, 3, 7])
        matrix = model.predict_scores(users)
        for row, user in enumerate(users):
            items = np.arange(dataset.n_items)
            pair_scores = model.score_pairs(np.full(dataset.n_items, user), items)
            np.testing.assert_allclose(matrix[row], pair_scores.data, atol=1e-9)

    @pytest.mark.parametrize("use_price,use_category", [(True, False), (False, True), (False, False)])
    def test_predict_matches_score_pairs_slim(self, dataset, use_price, use_category):
        model = make_model(dataset, use_price=use_price, use_category=use_category)
        model.eval()
        users = np.array([1, 5])
        matrix = model.predict_scores(users)
        for row, user in enumerate(users):
            items = np.arange(dataset.n_items)
            pair_scores = model.score_pairs(np.full(dataset.n_items, user), items)
            np.testing.assert_allclose(matrix[row], pair_scores.data, atol=1e-9)

    def test_alpha_zero_disables_category_branch(self, dataset):
        model_a = make_model(dataset, alpha=0.0)
        model_b = make_model(dataset, alpha=2.0)
        model_b.load_state_dict(model_a.state_dict())
        model_a.eval(), model_b.eval()
        users = np.array([0])
        sa = model_a.predict_scores(users)
        sb = model_b.predict_scores(users)
        # alpha scales the (shared-weights) category branch; outputs differ
        assert not np.allclose(sa, sb)
        # and with alpha=0 the global branch alone determines scores:
        global_only = make_model(dataset, alpha=0.0)
        global_only.load_state_dict(model_a.state_dict())
        global_only.eval()
        np.testing.assert_allclose(global_only.predict_scores(users), sa)

    def test_decoder_formula_global_branch(self, dataset):
        """s_g must equal e_u·e_i + e_u·e_p + e_i·e_p on propagated tables."""
        model = make_model(dataset, alpha=0.0)
        model.eval()
        table = model.global_encoder.propagate_inference()
        user, item = 2, 9
        e_u = table[user]
        e_i = table[model._item_nodes[item]]
        e_p = table[model._price_nodes_of_item[item]]
        expected = e_u @ e_i + e_u @ e_p + e_i @ e_p
        got = model.predict_scores(np.array([user]))[0, item]
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_decoder_formula_category_branch(self, dataset):
        model = make_model(dataset, alpha=1.0)
        model.eval()
        g = model.global_encoder.propagate_inference()
        c = model.category_encoder.propagate_inference()
        user, item = 4, 13
        s_global = pairwise_interaction_numpy(
            [g[user][None], g[model._item_nodes[item]][None], g[model._price_nodes_of_item[item]][None]]
        )[0]
        s_cat = pairwise_interaction_numpy(
            [c[user][None], c[model._category_nodes_of_item[item]][None], c[model._price_nodes_of_item[item]][None]]
        )[0]
        got = model.predict_scores(np.array([user]))[0, item]
        np.testing.assert_allclose(got, s_global + s_cat, atol=1e-9)


class TestTraining:
    def test_bpr_forward_returns_reg_tensors(self, dataset):
        model = make_model(dataset)
        pos, neg, reg = model.bpr_forward(np.array([0, 1]), np.array([2, 3]), np.array([4, 5]))
        assert pos.shape == (2,)
        assert neg.shape == (2,)
        # two branches * (3 features) * (pos+neg) = 12 tensors
        assert len(reg) == 12

    def test_gradients_flow_to_both_branches(self, dataset):
        model = make_model(dataset)
        pos, neg, __ = model.bpr_forward(np.array([0]), np.array([1]), np.array([2]))
        (neg - pos).softplus().mean().backward()
        assert model.global_encoder.embedding.weight.grad is not None
        assert model.category_encoder.embedding.weight.grad is not None

    def test_one_step_reduces_loss(self, dataset):
        from repro.nn import Adam, bpr_loss

        model = make_model(dataset)
        users = np.arange(20) % dataset.n_users
        pos = np.arange(20) % dataset.n_items
        neg = (np.arange(20) + 7) % dataset.n_items
        opt = Adam(model.parameters(), lr=0.05)
        losses = []
        for __ in range(5):
            p, n, __r = model.bpr_forward(users, pos, neg)
            loss = bpr_loss(p, n)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]


class TestVariants:
    def test_factory_names(self, dataset):
        rng = np.random.default_rng(0)
        assert pup_full(dataset, rng=rng).name == "PUP"
        assert pup_with_price(dataset, rng=rng).name == "PUP w/ p"
        assert pup_with_category(dataset, rng=rng).name == "PUP w/ c"
        assert pup_without_price_and_category(dataset, rng=rng).name == "PUP w/o c,p"
        assert pup_minus(dataset, rng=rng).name == "PUP-"

    def test_variant_flags(self, dataset):
        rng = np.random.default_rng(0)
        assert pup_with_price(dataset, rng=rng).use_price
        assert not pup_with_price(dataset, rng=rng).use_category
        assert not pup_without_price_and_category(dataset, rng=rng).use_price

    def test_without_cp_is_pure_dot(self, dataset):
        """PUP w/o c,p must reduce to GCN-encoded dot-product scoring."""
        model = pup_without_price_and_category(
            dataset, rng=np.random.default_rng(0), dropout=0.0
        )
        model.eval()
        table = model.global_encoder.propagate_inference()
        users = np.array([0, 1])
        expected = table[users] @ table[model._item_nodes].T
        np.testing.assert_allclose(model.predict_scores(users), expected, atol=1e-12)

    def test_pup_minus_is_with_price(self, dataset):
        rng = np.random.default_rng(0)
        minus = pup_minus(dataset, rng=rng)
        assert minus.use_price and not minus.use_category
