"""Tests for the value-aware (revenue) reranking extension."""

import numpy as np
import pytest

from repro.core import ValueAwareReranker, realized_revenue_at_k
from repro.core.base import Recommender
from repro.data import Dataset, InteractionTable, ItemCatalog


class FixedModel(Recommender):
    name = "fixed"
    trainable = False

    def __init__(self, dataset, matrix):
        super().__init__(dataset)
        self._matrix = np.asarray(matrix, dtype=np.float64)

    def predict_scores(self, users):
        return self._matrix[np.asarray(users, dtype=np.int64)]


def make_dataset():
    """2 users, 4 items with very different prices."""
    catalog = ItemCatalog(
        raw_prices=[1.0, 10.0, 100.0, 1000.0],
        categories=[0, 0, 0, 0],
        price_levels=[0, 1, 2, 3],
        n_categories=1,
        n_price_levels=4,
    )
    train = InteractionTable([0], [0], [0.0])
    test = InteractionTable([0, 1], [2, 3], [1.0, 2.0])
    return Dataset("va", 2, 4, catalog, train, InteractionTable([], [], []), test)


class TestValueAwareReranker:
    def test_validation(self):
        ds = make_dataset()
        model = FixedModel(ds, np.zeros((2, 4)))
        with pytest.raises(ValueError):
            ValueAwareReranker(model, ds, relevance_weight=1.5)
        with pytest.raises(ValueError):
            ValueAwareReranker(model, ds, temperature=0.0)

    def test_probabilities_sum_to_one(self):
        ds = make_dataset()
        model = FixedModel(ds, np.random.default_rng(0).normal(size=(2, 4)))
        reranker = ValueAwareReranker(model, ds)
        probs = reranker.purchase_probabilities([0, 1])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_train_positives_excluded(self):
        ds = make_dataset()
        model = FixedModel(ds, np.full((2, 4), 5.0))
        reranker = ValueAwareReranker(model, ds)
        probs = reranker.purchase_probabilities([0])
        assert probs[0, 0] == pytest.approx(0.0, abs=1e-12)  # item 0 is train positive

    def test_pure_relevance_matches_model_order(self):
        ds = make_dataset()
        scores = np.array([[0.0, 3.0, 2.0, 1.0], [0.0, 1.0, 2.0, 3.0]])
        model = FixedModel(ds, scores)
        reranker = ValueAwareReranker(model, ds, relevance_weight=1.0)
        rankings = reranker.rerank([1], k=4)
        np.testing.assert_array_equal(rankings[1], [3, 2, 1, 0])

    def test_pure_revenue_prefers_expensive(self):
        ds = make_dataset()
        # Equal scores -> equal probabilities -> revenue ranks by price.
        model = FixedModel(ds, np.zeros((2, 4)))
        reranker = ValueAwareReranker(model, ds, relevance_weight=0.0)
        rankings = reranker.rerank([1], k=4)
        np.testing.assert_array_equal(rankings[1], [3, 2, 1, 0])

    def test_blending_moves_expensive_items_up(self):
        ds = make_dataset()
        # user 1 slightly prefers the cheapest item; revenue pulls to item 3.
        scores = np.array([[0.0] * 4, [1.0, 0.9, 0.8, 0.95]])
        model = FixedModel(ds, scores)
        relevance = ValueAwareReranker(model, ds, relevance_weight=1.0).rerank([1], k=4)[1]
        blended = ValueAwareReranker(model, ds, relevance_weight=0.3).rerank([1], k=4)[1]
        assert list(relevance).index(3) >= list(blended).index(3)

    def test_expected_revenue_shape(self):
        ds = make_dataset()
        model = FixedModel(ds, np.zeros((2, 4)))
        revenue = ValueAwareReranker(model, ds).expected_revenue([0, 1])
        assert revenue.shape == (2, 4)
        assert (revenue >= 0).all()

    def test_invalid_k(self):
        ds = make_dataset()
        model = FixedModel(ds, np.zeros((2, 4)))
        with pytest.raises(ValueError):
            ValueAwareReranker(model, ds).rerank([0], k=0)


class TestRealizedRevenue:
    def test_counts_only_hits(self):
        ds = make_dataset()
        # user 0's test item is 2 (price 100); user 1's is 3 (price 1000).
        rankings = {0: np.array([2, 1]), 1: np.array([0, 1])}
        revenue = realized_revenue_at_k(ds, rankings, k=2)
        # user 0 captured 100; user 1 captured 0 -> mean 50.
        assert revenue == pytest.approx(50.0)

    def test_k_truncation(self):
        ds = make_dataset()
        rankings = {0: np.array([1, 2])}
        assert realized_revenue_at_k(ds, rankings, k=1) == 0.0
        assert realized_revenue_at_k(ds, rankings, k=2) == pytest.approx(100.0)

    def test_no_evaluable_users(self):
        ds = make_dataset()
        with pytest.raises(ValueError):
            realized_revenue_at_k(ds, {}, k=1)

    def test_invalid_k(self):
        ds = make_dataset()
        with pytest.raises(ValueError):
            realized_revenue_at_k(ds, {0: np.array([0])}, k=0)
