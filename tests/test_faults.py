"""Deterministic fault injection: the plan itself must be trustworthy.

A chaos test is only as good as its fault source — these tests pin the
scheduling contract (same plan + same call sequence → identical faults),
the spec validation, and the archive corruption helper.
"""

import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.faults import (
    ANN_SEARCH_ERROR,
    FAULT_POINTS,
    FLUSHER_CRASH,
    LIFECYCLE_BUILD_CRASH,
    LIFECYCLE_INGEST_CRASH,
    LIFECYCLE_PROMOTE_CRASH,
    POINTS,
    POOL_WORKER_CRASH,
    SCORER_DELAY,
    SCORER_ERROR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    chaos_plan,
    corrupt_archive,
    describe_fault_points,
)
from repro.train.persistence import read_archive_arrays, write_archive


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(SCORER_ERROR, probability=1.5)
        with pytest.raises(ValueError, match="times"):
            FaultSpec(SCORER_ERROR, times=(-1,))
        with pytest.raises(ValueError, match="max_fires"):
            FaultSpec(SCORER_ERROR, probability=0.5, max_fires=0)
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(SCORER_DELAY, delay_s=-0.1)
        with pytest.raises(ValueError, match="point"):
            FaultSpec("")

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([
                FaultSpec(SCORER_ERROR, times=(0,)),
                FaultSpec(SCORER_ERROR, times=(1,)),
            ])


class TestScheduling:
    def test_fires_exactly_at_named_occurrences(self):
        plan = FaultPlan([FaultSpec(SCORER_ERROR, times=(1, 3))])
        fired = [plan.should_fire(SCORER_ERROR) for _ in range(6)]
        assert fired == [False, True, False, True, False, False]

    def test_maybe_fail_raises_typed_error(self):
        plan = FaultPlan([FaultSpec(SCORER_ERROR, times=(0,))])
        with pytest.raises(InjectedFault, match=SCORER_ERROR.replace(".", r"\.")):
            plan.maybe_fail(SCORER_ERROR)
        plan.maybe_fail(SCORER_ERROR)  # occurrence 1: quiet

    def test_unknown_point_is_always_quiet(self):
        plan = FaultPlan([FaultSpec(SCORER_ERROR, times=(0,))])
        assert not plan.should_fire(POOL_WORKER_CRASH)
        plan.maybe_fail(ANN_SEARCH_ERROR)

    def test_probability_schedule_is_seed_deterministic(self):
        def run(seed):
            plan = FaultPlan([FaultSpec(SCORER_ERROR, probability=0.3)], seed=seed)
            return [plan.should_fire(SCORER_ERROR) for _ in range(60)]

        assert run(5) == run(5)
        assert run(5) != run(6)
        assert any(run(5)), "p=0.3 over 60 draws should fire at least once"

    def test_max_fires_caps_probabilistic_faults(self):
        plan = FaultPlan(
            [FaultSpec(SCORER_ERROR, probability=1.0, max_fires=2)], seed=0
        )
        fired = sum(plan.should_fire(SCORER_ERROR) for _ in range(10))
        assert fired == 2

    def test_delay_only_spec_never_raises(self):
        plan = FaultPlan([FaultSpec(SCORER_DELAY, times=(0,), delay_s=0.0)])
        plan.maybe_delay(SCORER_DELAY)  # fires: sleeps 0s, no exception
        assert plan.fires(SCORER_DELAY) == 1

    def test_snapshot_counts_occurrences_and_fires(self):
        plan = FaultPlan([FaultSpec(SCORER_ERROR, times=(0, 2))])
        for _ in range(4):
            plan.should_fire(SCORER_ERROR)
        snap = plan.snapshot()
        assert snap[SCORER_ERROR] == {"occurrences": 4, "fires": 2}
        assert plan.total_fires() == 2

    def test_plan_pickles_for_process_pool_transport(self):
        plan = FaultPlan([FaultSpec(POOL_WORKER_CRASH, times=(1,))], seed=3)
        clone = pickle.loads(pickle.dumps(plan))
        assert not clone.should_fire(POOL_WORKER_CRASH)
        assert clone.should_fire(POOL_WORKER_CRASH)


class TestChaosPlan:
    def test_covers_requested_points(self):
        plan = chaos_plan(
            seed=1, worker_crashes=1, scorer_errors=2, ann_failures=1,
            flusher_crashes=1, scorer_delays=1,
        )
        assert set(plan.points()) == {
            POOL_WORKER_CRASH, SCORER_ERROR, ANN_SEARCH_ERROR,
            FLUSHER_CRASH, SCORER_DELAY,
        }
        assert len(plan.spec(SCORER_ERROR).times) == 2

    def test_zero_counts_drop_points(self):
        plan = chaos_plan(seed=1, worker_crashes=0, scorer_errors=1,
                          ann_failures=0, flusher_crashes=0)
        assert set(plan.points()) == {SCORER_ERROR}

    def test_lifecycle_points_excluded_by_default(self):
        plan = chaos_plan(seed=1)
        assert not set(plan.points()) & {
            LIFECYCLE_INGEST_CRASH, LIFECYCLE_BUILD_CRASH, LIFECYCLE_PROMOTE_CRASH,
        }

    def test_lifecycle_counts_create_specs(self):
        plan = chaos_plan(
            seed=1, worker_crashes=0, scorer_errors=0, ann_failures=0,
            flusher_crashes=0, ingest_crashes=2, build_crashes=1, promote_crashes=1,
        )
        assert set(plan.points()) == {
            LIFECYCLE_INGEST_CRASH, LIFECYCLE_BUILD_CRASH, LIFECYCLE_PROMOTE_CRASH,
        }
        assert len(plan.spec(LIFECYCLE_INGEST_CRASH).times) == 2


class TestFaultPointRegistry:
    def test_every_point_constant_is_registered(self):
        assert POINTS == tuple(FAULT_POINTS)
        for point in (
            POOL_WORKER_CRASH, SCORER_ERROR, SCORER_DELAY, ANN_SEARCH_ERROR,
            FLUSHER_CRASH, LIFECYCLE_INGEST_CRASH, LIFECYCLE_BUILD_CRASH,
            LIFECYCLE_PROMOTE_CRASH,
        ):
            assert point in FAULT_POINTS

    def test_descriptions_are_nonempty_one_liners(self):
        table = describe_fault_points()
        assert table == FAULT_POINTS and table is not FAULT_POINTS
        for point, description in table.items():
            assert description and "\n" not in description, point

    def test_hard_kill_spec_pickles(self):
        plan = FaultPlan(
            [FaultSpec(LIFECYCLE_BUILD_CRASH, times=(0,), hard_kill=True)]
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.spec(LIFECYCLE_BUILD_CRASH).hard_kill

    def test_hard_kill_terminates_the_process(self, tmp_path):
        # os._exit(137) cannot be exercised in-process; prove it in a child.
        script = (
            "from repro.faults import FaultPlan, FaultSpec, LIFECYCLE_INGEST_CRASH\n"
            "plan = FaultPlan([FaultSpec(LIFECYCLE_INGEST_CRASH, times=(1,),"
            " hard_kill=True)])\n"
            "plan.maybe_fail(LIFECYCLE_INGEST_CRASH)\n"  # occurrence 0: quiet
            "plan.maybe_fail(LIFECYCLE_INGEST_CRASH)\n"  # occurrence 1: kill
            "print('unreachable')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert result.returncode == 137
        assert "unreachable" not in result.stdout


class TestCorruptArchive:
    def test_npz_corruption_changes_payload_only(self, tmp_path):
        path = str(tmp_path / "a.npz")
        arrays = {"x": np.arange(40.0), "y": np.ones((3, 3))}
        write_archive(path, arrays, metadata={"note": "hi"})
        victim = corrupt_archive(path, seed=2)
        assert victim in arrays
        loaded = read_archive_arrays(path, verify=False)
        reference = arrays[victim]
        assert not np.array_equal(loaded[victim], reference)

    def test_explicit_victim(self, tmp_path):
        path = str(tmp_path / "b.npz")
        write_archive(path, {"x": np.arange(10.0), "y": np.arange(9.0)}, metadata={})
        assert corrupt_archive(path, array="y") == "y"

    def test_rejects_non_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a zip")
        with pytest.raises(ValueError, match="neither"):
            corrupt_archive(str(path))
