"""End-to-end integration tests across data -> graph -> model -> train -> eval."""

import numpy as np
import pytest

from repro.baselines import BPRMF, ItemPop
from repro.core import pup_full, pup_with_price, pup_without_price_and_category
from repro.data import SyntheticConfig, generate
from repro.eval import build_cold_start_task, evaluate, evaluate_cold_start
from repro.train import TrainConfig, train_model


@pytest.fixture(scope="module")
def price_heavy_dataset():
    """A dataset where price is the dominant signal (strong planted effect).

    ``item_turnover`` puts cold items into the test split — the regime where
    explicit price representations must generalize (see DESIGN.md).
    """
    config = SyntheticConfig(
        n_users=120,
        n_items=220,
        n_categories=6,
        n_price_levels=6,
        interactions_per_user=12,
        price_sensitivity=5.0,
        price_match_width=0.1,
        latent_dim=4,
        item_turnover=0.6,
        seed=77,
    )
    return generate(config)[0]


@pytest.fixture(scope="module")
def quick_config():
    return TrainConfig(epochs=15, lr_milestones=(8, 12), batch_size=512, seed=0)


class TestPipeline:
    def test_full_pipeline_runs_and_beats_popularity(self, price_heavy_dataset, quick_config):
        dataset = price_heavy_dataset
        model = pup_full(dataset, global_dim=24, category_dim=8, rng=np.random.default_rng(0))
        result = train_model(model, dataset, quick_config)
        assert result.final_loss < result.epoch_losses[0]

        pup_metrics = evaluate(model, dataset, ks=(20,))
        pop_metrics = evaluate(ItemPop(dataset), dataset, ks=(20,))
        assert pup_metrics["Recall@20"] > pop_metrics["Recall@20"]

    def test_learned_user_representations_are_price_aware(self, quick_config):
        """The paper's core mechanism, end-to-end: after training, a user's
        affinity to price-level nodes must recover the planted budget.  We
        check the Spearman correlation between ground-truth budgets and the
        expected price level under the learned user-price affinities."""
        config = SyntheticConfig(
            n_users=120,
            n_items=220,
            n_categories=6,
            n_price_levels=6,
            interactions_per_user=12,
            price_sensitivity=5.0,
            price_match_width=0.1,
            latent_dim=4,
            item_turnover=0.6,
            seed=77,
        )
        dataset, truth = generate(config)
        model = pup_with_price(
            dataset, global_dim=24, category_dim=8, rng=np.random.default_rng(0)
        )
        train_model(model, dataset, quick_config)

        table = model.global_encoder.propagate_inference()
        space = model.global_graph.space
        user_emb = table[: dataset.n_users]
        price_emb = table[space.price(np.arange(dataset.n_price_levels))]
        affinity = user_emb @ price_emb.T
        affinity -= affinity.max(axis=1, keepdims=True)
        weights = np.exp(affinity)
        weights /= weights.sum(axis=1, keepdims=True)
        expected_level = weights @ np.arange(dataset.n_price_levels)

        from scipy.stats import spearmanr

        rho, __ = spearmanr(truth.user_budget, expected_level)
        assert rho > 0.3, f"learned price affinity uncorrelated with budget (rho={rho:.3f})"

    def test_training_is_reproducible(self, price_heavy_dataset, quick_config):
        dataset = price_heavy_dataset

        def run():
            model = BPRMF(dataset, dim=16, rng=np.random.default_rng(3))
            train_model(model, dataset, quick_config)
            return evaluate(model, dataset, ks=(20,))

        np.testing.assert_allclose(
            list(run().values()), list(run().values()), rtol=0, atol=0
        )

    def test_state_dict_roundtrip_preserves_predictions(self, price_heavy_dataset, quick_config):
        dataset = price_heavy_dataset
        model = pup_full(dataset, global_dim=16, category_dim=8, rng=np.random.default_rng(0))
        train_model(model, dataset, quick_config)
        users = np.arange(10)
        before = model.predict_scores(users)

        clone = pup_full(dataset, global_dim=16, category_dim=8, rng=np.random.default_rng(99))
        clone.load_state_dict(model.state_dict())
        clone.eval()
        np.testing.assert_allclose(clone.predict_scores(users), before)

    def test_cold_start_protocols_run_end_to_end(self, price_heavy_dataset, quick_config):
        dataset = price_heavy_dataset
        task = build_cold_start_task(dataset)
        if not task.users:
            pytest.skip("no cold-start users in this draw")
        model = pup_full(dataset, global_dim=16, category_dim=8, rng=np.random.default_rng(0))
        train_model(model, dataset, quick_config)
        for protocol in ("CIR", "UCIR"):
            metrics = evaluate_cold_start(model, dataset, protocol=protocol, ks=(10,), task=task)
            assert 0.0 <= metrics["Recall@10"] <= 1.0
            assert 0.0 <= metrics["NDCG@10"] <= 1.0

    def test_metrics_within_bounds(self, price_heavy_dataset, quick_config):
        dataset = price_heavy_dataset
        model = BPRMF(dataset, dim=16, rng=np.random.default_rng(0))
        train_model(model, dataset, quick_config)
        metrics = evaluate(model, dataset, ks=(1, 10, 50))
        for name, value in metrics.items():
            assert 0.0 <= value <= 1.0, f"{name}={value} out of bounds"
        # Recall must be monotone in K.
        assert metrics["Recall@1"] <= metrics["Recall@10"] <= metrics["Recall@50"]
