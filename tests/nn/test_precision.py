"""Precision policy: dtype threading, f32/f64 parity, fused-kernel equivalence."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import (
    Adam,
    Embedding,
    Linear,
    Parameter,
    Tensor,
    bpr_loss,
    default_dtype,
    fused_bpr_loss,
    fused_l2_on_batch,
    init,
    l2_on_batch,
    precision,
    resolve_dtype,
    set_default_dtype,
)


@pytest.fixture(autouse=True)
def _restore_policy():
    yield
    set_default_dtype("float64")


class TestPolicy:
    def test_default_is_float64(self):
        assert default_dtype() == np.float64

    def test_context_manager_scopes_and_restores(self):
        with precision("float32"):
            assert default_dtype() == np.float32
            with precision("float64"):
                assert default_dtype() == np.float64
            assert default_dtype() == np.float32
        assert default_dtype() == np.float64

    def test_set_default_dtype(self):
        set_default_dtype(np.float32)
        assert default_dtype() == np.float32

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError, match="unsupported precision"):
            resolve_dtype("float16")
        with pytest.raises(ValueError, match="unsupported precision"):
            set_default_dtype(np.int64)

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with precision("float32"):
                raise RuntimeError("boom")
        assert default_dtype() == np.float64


class TestTensorDtype:
    def test_tensor_follows_policy(self):
        with precision("float32"):
            assert Tensor([1.0, 2.0]).dtype == np.float32
        assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_supported_arrays_keep_their_dtype(self):
        # A float32 checkpoint must stay float32 even under a float64 default.
        arr = np.ones(3, dtype=np.float32)
        assert Tensor(arr).dtype == np.float32
        assert Tensor(arr.astype(np.float64)).dtype == np.float64

    def test_integer_input_coerced_to_policy(self):
        with precision("float32"):
            assert Tensor(np.arange(3)).dtype == np.float32

    def test_scalar_constants_do_not_promote(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        for result in (x * 2.0, x + 1.0, x / 3.0, x - 0.5, -x, x**2.0, x.mean()):
            assert result.dtype == np.float32, result

    def test_ops_and_grads_stay_float32(self):
        x = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        w = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        out = x.matmul(w).tanh().sigmoid().sum()
        assert out.dtype == np.float32
        out.backward()
        assert x.grad.dtype == np.float32
        assert w.grad.dtype == np.float32

    def test_sparse_matmul_casts_matrix(self):
        matrix = sp.random(4, 4, density=0.5, format="csr", random_state=0)  # float64
        x = Tensor(np.ones((4, 2), dtype=np.float32), requires_grad=True)
        out = x.sparse_matmul(matrix)
        assert out.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32

    def test_gather_and_dropout_dtype(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((5, 3), dtype=np.float32), requires_grad=True)
        assert x.gather_rows([0, 2, 2]).dtype == np.float32
        assert x.dropout(0.5, rng, training=True).dtype == np.float32


class TestLayerAndOptimizerDtype:
    def test_layers_follow_policy(self):
        rng = np.random.default_rng(0)
        with precision("float32"):
            emb = Embedding(10, 4, rng=rng)
            lin = Linear(4, 2, rng=rng)
        assert emb.weight.dtype == np.float32
        assert lin.weight.dtype == np.float32
        assert lin.bias.dtype == np.float32

    def test_init_same_seed_across_precisions(self):
        """Draws happen in float64 then cast, so a seed is precision-stable."""
        a = init.normal(np.random.default_rng(7), (4, 3), std=0.1, dtype="float64")
        b = init.normal(np.random.default_rng(7), (4, 3), std=0.1, dtype="float32")
        assert b.dtype == np.float32
        np.testing.assert_allclose(a, b, rtol=1e-6)

    def test_adam_state_matches_param_dtype(self):
        param = Parameter(np.ones(3, dtype=np.float32))
        optimizer = Adam([param], lr=0.1)
        assert all(m.dtype == np.float32 for m in optimizer._m)
        param.grad = np.ones(3, dtype=np.float32)
        optimizer.step()
        assert param.dtype == np.float32

    def test_load_state_dict_casts_to_model_precision(self):
        with precision("float32"):
            emb = Embedding(4, 2, rng=np.random.default_rng(0))
        state = {"weight": np.ones((4, 2), dtype=np.float64)}
        emb.load_state_dict(state)
        assert emb.weight.dtype == np.float32


def _grad_of(dtype: str, seed: int):
    """A small PUP-shaped compute graph; returns (loss value, gradient)."""
    rng = np.random.default_rng(seed)
    table = rng.normal(scale=0.3, size=(20, 6))
    adjacency = sp.random(20, 20, density=0.2, format="csr", random_state=seed)
    users = rng.integers(0, 10, size=8)
    pos = rng.integers(10, 20, size=8)
    neg = rng.integers(10, 20, size=8)

    param = Parameter(table.astype(dtype))
    propagated = param.sparse_matmul(adjacency.astype(dtype)).tanh()
    u, p, n = (propagated.gather_rows(ids) for ids in (users, pos, neg))
    pos_scores = (u * p).sum(axis=1)
    neg_scores = (u * n).sum(axis=1)
    loss = fused_bpr_loss(pos_scores, neg_scores) + fused_l2_on_batch([u, p, n], 1e-3, 8)
    loss.backward()
    return float(loss.item()), param.grad


class TestPrecisionParity:
    """Property: gradients agree across precisions within float32 tolerance."""

    @pytest.mark.parametrize("seed", range(8))
    def test_gradients_agree_f32_vs_f64(self, seed):
        loss64, grad64 = _grad_of("float64", seed)
        loss32, grad32 = _grad_of("float32", seed)
        assert grad32.dtype == np.float32
        assert loss32 == pytest.approx(loss64, rel=1e-4, abs=1e-6)
        np.testing.assert_allclose(grad32, grad64, rtol=5e-3, atol=1e-5)


class TestFusedKernels:
    """The fused kernels compute the same function as the composed ops."""

    @pytest.mark.parametrize("seed", range(6))
    def test_fused_bpr_matches_composed(self, seed):
        rng = np.random.default_rng(seed)
        pos_data = rng.normal(scale=3.0, size=16)
        neg_data = rng.normal(scale=3.0, size=16)

        pos_a, neg_a = Tensor(pos_data, requires_grad=True), Tensor(neg_data, requires_grad=True)
        composed = bpr_loss(pos_a, neg_a)
        composed.backward()

        pos_b, neg_b = Tensor(pos_data, requires_grad=True), Tensor(neg_data, requires_grad=True)
        fused = fused_bpr_loss(pos_b, neg_b)
        fused.backward()

        assert fused.item() == pytest.approx(composed.item(), rel=1e-12)
        np.testing.assert_allclose(pos_b.grad, pos_a.grad, rtol=1e-12)
        np.testing.assert_allclose(neg_b.grad, neg_a.grad, rtol=1e-12)

    @pytest.mark.parametrize("seed", range(6))
    def test_fused_l2_matches_composed(self, seed):
        rng = np.random.default_rng(seed)
        arrays = [rng.normal(size=(8, 4)) for _ in range(3)]

        tensors_a = [Tensor(a, requires_grad=True) for a in arrays]
        composed = l2_on_batch(tensors_a, weight=1e-2, batch_size=8)
        composed.backward()

        tensors_b = [Tensor(a, requires_grad=True) for a in arrays]
        fused = fused_l2_on_batch(tensors_b, weight=1e-2, batch_size=8)
        fused.backward()

        assert fused.item() == pytest.approx(composed.item(), rel=1e-12)
        for a, b in zip(tensors_a, tensors_b):
            np.testing.assert_allclose(b.grad, a.grad, rtol=1e-12)

    def test_fused_bpr_stable_at_large_margins(self):
        pos = Tensor(np.array([-500.0, 500.0]), requires_grad=True)
        neg = Tensor(np.array([500.0, -500.0]), requires_grad=True)
        loss = fused_bpr_loss(pos, neg)
        loss.backward()
        assert np.isfinite(loss.item())
        assert np.isfinite(pos.grad).all() and np.isfinite(neg.grad).all()

    def test_fused_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shapes differ"):
            fused_bpr_loss(Tensor(np.zeros(3)), Tensor(np.zeros(4)))
        with pytest.raises(ValueError, match="at least one"):
            fused_l2_on_batch([], weight=0.1, batch_size=4)
        with pytest.raises(ValueError, match="batch_size"):
            fused_l2_on_batch([Tensor(np.zeros(3))], weight=0.1, batch_size=0)


class TestInPlaceAdam:
    def test_matches_reference_formulas(self):
        """The allocation-free update equals the textbook Adam step."""
        rng = np.random.default_rng(3)
        data = rng.normal(size=(5, 4))
        grads = [rng.normal(size=(5, 4)) for _ in range(4)]

        param = Parameter(data.copy())
        optimizer = Adam([param], lr=0.05, betas=(0.9, 0.999), eps=1e-8)

        ref, m, v = data.copy(), np.zeros_like(data), np.zeros_like(data)
        for step, grad in enumerate(grads, start=1):
            param.grad = grad.copy()
            optimizer.step()
            m = 0.9 * m + 0.1 * grad
            v = 0.999 * v + 0.001 * grad * grad
            m_hat = m / (1.0 - 0.9**step)
            v_hat = v / (1.0 - 0.999**step)
            ref -= 0.05 * m_hat / (np.sqrt(v_hat) + 1e-8)
            np.testing.assert_allclose(param.data, ref, rtol=1e-12)

    def test_skips_params_without_grad(self):
        param = Parameter(np.ones(3))
        before = param.data.copy()
        Adam([param], lr=0.1).step()
        np.testing.assert_array_equal(param.data, before)
