"""Unit tests for the autograd Tensor: forward values and exact gradients."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import Tensor, concat


def numeric_grad(func, x, eps=1e-6):
    """Central finite differences of a scalar function w.r.t. ndarray x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = func(x)
        flat[index] = original - eps
        minus = func(x)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


class TestForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0, 2.0]) + 5.0
        np.testing.assert_allclose(out.data, [6.0, 7.0])

    def test_radd(self):
        out = 5.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [6.0])

    def test_sub(self):
        out = Tensor([5.0]) - Tensor([2.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_rsub(self):
        out = 10.0 - Tensor([4.0])
        np.testing.assert_allclose(out.data, [6.0])

    def test_mul(self):
        out = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        np.testing.assert_allclose(out.data, [8.0, 15.0])

    def test_div(self):
        out = Tensor([8.0]) / Tensor([2.0])
        np.testing.assert_allclose(out.data, [4.0])

    def test_rtruediv(self):
        out = 8.0 / Tensor([2.0])
        np.testing.assert_allclose(out.data, [4.0])

    def test_neg(self):
        out = -Tensor([1.0, -2.0])
        np.testing.assert_allclose(out.data, [-1.0, 2.0])

    def test_pow(self):
        out = Tensor([2.0, 3.0]) ** 2
        np.testing.assert_allclose(out.data, [4.0, 9.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_allclose((a @ b).data, [[19.0, 22.0], [43.0, 50.0]])

    def test_tanh_range(self):
        out = Tensor(np.linspace(-10, 10, 21)).tanh()
        assert np.all(np.abs(out.data) <= 1.0)

    def test_sigmoid_extremes_stable(self):
        out = Tensor([-1000.0, 0.0, 1000.0]).sigmoid()
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)
        assert np.all(np.isfinite(out.data))

    def test_relu(self):
        out = Tensor([-1.0, 0.0, 2.0]).relu()
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_softplus_stable_large(self):
        out = Tensor([800.0, -800.0]).softplus()
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data[0], 800.0)
        np.testing.assert_allclose(out.data[1], 0.0, atol=1e-12)

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.0, 2.0])
        np.testing.assert_allclose(x.exp().log().data, x.data, atol=1e-12)

    def test_sum_axis(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(x.sum(axis=0).data, [4.0, 6.0])
        np.testing.assert_allclose(x.sum(axis=1).data, [3.0, 7.0])
        np.testing.assert_allclose(x.sum().data, 10.0)

    def test_mean(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(x.mean().data, 2.5)
        np.testing.assert_allclose(x.mean(axis=0).data, [2.0, 3.0])

    def test_reshape(self):
        x = Tensor(np.arange(6.0))
        assert x.reshape(2, 3).shape == (2, 3)
        assert x.reshape((3, 2)).shape == (3, 2)

    def test_transpose(self):
        x = Tensor([[1.0, 2.0, 3.0]])
        assert x.T.shape == (3, 1)

    def test_gather_rows(self):
        x = Tensor(np.arange(12.0).reshape(4, 3))
        out = x.gather_rows([2, 0, 2])
        np.testing.assert_allclose(out.data, [[6, 7, 8], [0, 1, 2], [6, 7, 8]])

    def test_gather_rows_out_of_range_via_embedding(self):
        # raw gather is unchecked; Embedding layer checks (see layers tests)
        x = Tensor(np.arange(6.0).reshape(2, 3))
        with pytest.raises(IndexError):
            _ = x.gather_rows([5]).data  # numpy raises on fancy index

    def test_slice_cols(self):
        x = Tensor(np.arange(12.0).reshape(3, 4))
        out = x.slice_cols(1, 3)
        np.testing.assert_allclose(out.data, x.data[:, 1:3])

    def test_concat_axis0(self):
        out = concat([Tensor([[1.0]]), Tensor([[2.0]])], axis=0)
        np.testing.assert_allclose(out.data, [[1.0], [2.0]])

    def test_concat_axis1(self):
        out = concat([Tensor([[1.0]]), Tensor([[2.0]])], axis=1)
        np.testing.assert_allclose(out.data, [[1.0, 2.0]])

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat([])

    def test_sparse_matmul_forward(self):
        mat = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        x = Tensor([[1.0, 1.0], [1.0, 1.0]])
        out = x.sparse_matmul(mat)
        np.testing.assert_allclose(out.data, [[1.0, 1.0], [2.0, 2.0]])

    def test_sparse_matmul_type_check(self):
        with pytest.raises(TypeError):
            Tensor([[1.0]]).sparse_matmul(np.eye(1))

    def test_item(self):
        assert Tensor([3.5]).item() == 3.5

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        z = (y * 3.0).sum()
        z.backward()
        assert x.grad is None

    def test_backward_nonscalar_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward()

    def test_backward_seed_shape_check(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward(np.ones(3))

    def test_repr(self):
        rep = repr(Tensor(np.zeros((2, 3)), name="emb"))
        assert "shape=(2, 3)" in rep and "emb" in rep


class TestGradients:
    """Analytic gradients must match central finite differences."""

    def check(self, build, shape, seed=0, atol=1e-5):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=shape)

        def scalar(arr):
            return build(Tensor(arr)).data.sum()

        expected = numeric_grad(scalar, x.copy())
        t = Tensor(x, requires_grad=True)
        build(t).sum().backward()
        np.testing.assert_allclose(t.grad, expected, atol=atol)

    def test_add(self):
        self.check(lambda t: t + t, (3, 2))

    def test_mul(self):
        self.check(lambda t: t * t, (3, 2))

    def test_sub_const(self):
        self.check(lambda t: t - 3.0, (4,))

    def test_div(self):
        self.check(lambda t: t / 2.0, (4,))

    def test_div_by_tensor(self):
        self.check(lambda t: 1.0 / (t * t + 2.0), (4,))

    def test_pow(self):
        self.check(lambda t: t**3, (5,))

    def test_tanh(self):
        self.check(lambda t: t.tanh(), (4, 3))

    def test_sigmoid(self):
        self.check(lambda t: t.sigmoid(), (6,))

    def test_relu(self):
        self.check(lambda t: (t + 0.1).relu(), (5,), seed=3)

    def test_exp(self):
        self.check(lambda t: t.exp(), (4,))

    def test_log(self):
        self.check(lambda t: (t * t + 1.0).log(), (4,))

    def test_sqrt(self):
        self.check(lambda t: (t * t + 1.0).sqrt(), (4,))

    def test_softplus(self):
        self.check(lambda t: t.softplus(), (6,))

    def test_matmul_left(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(3, 2))
        self.check(lambda t: t.matmul(Tensor(w)), (4, 3))

    def test_matmul_right(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(4, 3))

        x = rng.normal(size=(3, 2))
        expected = numeric_grad(lambda arr: (a @ arr).sum(), x.copy())
        t = Tensor(x, requires_grad=True)
        Tensor(a).matmul(t).sum().backward()
        np.testing.assert_allclose(t.grad, expected, atol=1e-5)

    def test_sum_axis0(self):
        self.check(lambda t: t.sum(axis=0), (3, 4))

    def test_sum_keepdims(self):
        self.check(lambda t: t.sum(axis=1, keepdims=True), (3, 4))

    def test_mean(self):
        self.check(lambda t: t.mean(axis=1), (3, 4))

    def test_reshape(self):
        self.check(lambda t: t.reshape(6) * 2.0, (2, 3))

    def test_transpose(self):
        self.check(lambda t: t.T.tanh(), (2, 3))

    def test_gather_repeated_rows_accumulate(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        out = x.gather_rows([0, 0, 1]).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, [[2.0, 2.0], [1.0, 1.0], [0.0, 0.0]])

    def test_slice_cols_grad(self):
        x = Tensor(np.ones((2, 4)), requires_grad=True)
        x.slice_cols(1, 3).sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 1, 1, 0], [0, 1, 1, 0]])

    def test_sparse_matmul_grad(self):
        rng = np.random.default_rng(5)
        dense = rng.normal(size=(4, 4))
        dense[dense < 0.3] = 0.0
        mat = sp.csr_matrix(dense)
        x = rng.normal(size=(4, 3))

        expected = numeric_grad(lambda arr: (dense @ arr).sum(), x.copy())
        t = Tensor(x, requires_grad=True)
        t.sparse_matmul(mat).sum().backward()
        np.testing.assert_allclose(t.grad, expected, atol=1e-5)

    def test_concat_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        (concat([a, b], axis=0) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, 2 * np.ones((3, 2)))

    def test_broadcast_add_bias(self):
        w = Tensor(np.ones((3, 2)), requires_grad=True)
        bias = Tensor(np.zeros(2), requires_grad=True)
        ((w + bias) * 1.0).sum().backward()
        np.testing.assert_allclose(bias.grad, [3.0, 3.0])

    def test_broadcast_mul(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        s = Tensor(np.array(2.0), requires_grad=True)
        (a * s).sum().backward()
        np.testing.assert_allclose(s.grad, 12.0)

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # y = x*x used twice: grad should be 2 * (2x) at x=3 -> 12... verify
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        z = (y + y).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([0.1], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_dropout_eval_identity(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10)))
        out = x.dropout(0.5, rng, training=False)
        assert out is x

    def test_dropout_scales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((2000, 1)), requires_grad=True)
        out = x.dropout(0.5, rng, training=True)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0)
        # kept fraction near 0.5
        assert abs((out.data > 0).mean() - 0.5) < 0.05

    def test_dropout_invalid_rate(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Tensor([1.0]).dropout(1.0, rng, training=True)
