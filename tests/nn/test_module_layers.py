"""Tests for Module/Parameter discovery and the layer zoo."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, Linear, MLP, Module, Parameter, Tensor


class TinyModel(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.emb = Embedding(4, 3, rng=rng)
        self.fc = Linear(3, 2, rng=rng)
        self.extras = [Parameter(np.zeros(2), name="bias_extra")]
        self.branches = {"a": Linear(2, 2, rng=rng)}


class TestModule:
    def test_parameter_discovery_recursive(self):
        model = TinyModel()
        names = dict(model.named_parameters())
        assert "emb.weight" in names
        assert "fc.weight" in names
        assert "fc.bias" in names
        assert "extras.0" in names
        assert "branches.a.weight" in names

    def test_parameters_deduplicated(self):
        model = TinyModel()
        model.alias = model.emb  # same module twice
        params = model.parameters()
        assert len(params) == len({id(p) for p in params})

    def test_zero_grad_clears(self):
        model = TinyModel()
        out = model.fc(model.emb(np.array([0, 1])))
        out.sum().backward()
        assert model.emb.weight.grad is not None
        model.zero_grad()
        assert model.emb.weight.grad is None

    def test_train_eval_propagates(self):
        model = TinyModel()
        model.eval()
        assert not model.fc.training
        assert not model.branches["a"].training
        model.train()
        assert model.fc.training

    def test_state_dict_roundtrip(self):
        model = TinyModel()
        state = model.state_dict()
        model.emb.weight.data += 1.0
        model.load_state_dict(state)
        np.testing.assert_allclose(model.emb.weight.data, state["emb.weight"])

    def test_load_state_dict_rejects_unknown_keys(self):
        model = TinyModel()
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        model = TinyModel()
        state = model.state_dict()
        state["fc.bias"] = np.zeros(99)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_num_parameters(self):
        model = TinyModel()
        expected = 4 * 3 + 3 * 2 + 2 + 2 + 2 * 2 + 2
        assert model.num_parameters() == expected


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb(np.array([1, 5, 9]))
        assert out.shape == (3, 4)

    def test_out_of_range_raises(self):
        emb = Embedding(5, 2, rng=np.random.default_rng(0))
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)
        with pytest.raises(ValueError):
            Embedding(4, 0)

    def test_gradient_flows_to_rows(self):
        emb = Embedding(6, 3, rng=np.random.default_rng(0))
        emb(np.array([2, 2])).sum().backward()
        grad = emb.weight.grad
        np.testing.assert_allclose(grad[2], [2.0, 2.0, 2.0])
        np.testing.assert_allclose(grad[[0, 1, 3, 4, 5]], 0.0)

    def test_all_returns_table(self):
        emb = Embedding(6, 3, rng=np.random.default_rng(0))
        assert emb.all() is emb.weight


class TestLinear:
    def test_affine_output(self):
        fc = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.ones((4, 3))
        out = fc(Tensor(x))
        expected = x @ fc.weight.data + fc.bias.data
        np.testing.assert_allclose(out.data, expected)

    def test_no_bias(self):
        fc = Linear(3, 2, rng=np.random.default_rng(0), bias=False)
        assert fc.bias is None
        out = fc(Tensor(np.ones((1, 3))))
        assert out.shape == (1, 2)


class TestDropout:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(-0.1)
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_eval_is_identity(self):
        layer = Dropout(0.9, rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(np.ones((5, 5)))
        assert layer(x) is x

    def test_train_masks(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100))))
        assert (out.data == 0).any()
        assert np.isclose(out.data.mean(), 1.0, atol=0.05)


class TestMLP:
    def test_shapes(self):
        mlp = MLP([8, 16, 4], rng=np.random.default_rng(0))
        out = mlp(Tensor(np.ones((3, 8))))
        assert out.shape == (3, 4)

    def test_too_few_sizes(self):
        with pytest.raises(ValueError):
            MLP([8])

    def test_gradients_reach_all_layers(self):
        mlp = MLP([4, 8, 1], rng=np.random.default_rng(1))
        mlp(Tensor(np.random.default_rng(2).normal(size=(5, 4)))).sum().backward()
        for param in mlp.parameters():
            assert param.grad is not None

    def test_output_activation_nonnegative(self):
        mlp = MLP([4, 4], rng=np.random.default_rng(0), output_activation=True)
        out = mlp(Tensor(np.random.default_rng(3).normal(size=(10, 4))))
        assert (out.data >= 0).all()
