"""Hypothesis property-based tests for the autograd engine invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, unbroadcast

finite_floats = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


def small_arrays(max_side=4):
    return arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=1, max_value=max_side),
            st.integers(min_value=1, max_value=max_side),
        ),
        elements=finite_floats,
    )


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_add_commutative(x):
    a = Tensor(x)
    b = Tensor(x * 2.0)
    np.testing.assert_allclose((a + b).data, (b + a).data)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_mul_grad_is_other_operand(x):
    a = Tensor(x, requires_grad=True)
    b = Tensor(np.full_like(x, 3.0))
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, b.data)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_sum_of_parts_equals_total(x):
    t = Tensor(x)
    np.testing.assert_allclose(t.sum(axis=0).data.sum(), t.sum().item(), rtol=1e-9, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_tanh_bounded_and_odd(x):
    t = Tensor(x)
    out = t.tanh().data
    assert np.all(np.abs(out) <= 1.0)
    np.testing.assert_allclose(Tensor(-x).tanh().data, -out, atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_sigmoid_in_unit_interval(x):
    out = Tensor(x).sigmoid().data
    assert np.all(out >= 0.0) and np.all(out <= 1.0)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_sigmoid_symmetry(x):
    # sigmoid(-x) == 1 - sigmoid(x)
    s = Tensor(x).sigmoid().data
    s_neg = Tensor(-x).sigmoid().data
    np.testing.assert_allclose(s_neg, 1.0 - s, atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_backward_linear_in_seed(x):
    # Seeding backward with 2*ones doubles gradients (linearity of autodiff).
    t1 = Tensor(x.copy(), requires_grad=True)
    y1 = t1.tanh()
    y1.backward(np.ones_like(x))

    t2 = Tensor(x.copy(), requires_grad=True)
    y2 = t2.tanh()
    y2.backward(2.0 * np.ones_like(x))

    np.testing.assert_allclose(t2.grad, 2.0 * t1.grad, rtol=1e-9, atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(small_arrays(), st.integers(min_value=0, max_value=3))
def test_gather_rows_matches_numpy(x, row):
    row = row % x.shape[0]
    t = Tensor(x)
    np.testing.assert_allclose(t.gather_rows([row]).data[0], x[row])


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_unbroadcast_restores_shape(x):
    grad = np.broadcast_to(x, (3,) + x.shape)
    result = unbroadcast(np.array(grad), x.shape)
    assert result.shape == x.shape
    np.testing.assert_allclose(result, 3.0 * x)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, st.integers(min_value=1, max_value=6), elements=finite_floats),
    arrays(np.float64, st.integers(min_value=1, max_value=6), elements=finite_floats),
)
def test_bpr_loss_translation_invariant(pos, neg):
    """BPR depends only on score differences, not absolute values."""
    from repro.nn import bpr_loss

    n = min(len(pos), len(neg))
    pos, neg = pos[:n], neg[:n]
    base = bpr_loss(Tensor(pos), Tensor(neg)).item()
    shifted = bpr_loss(Tensor(pos + 7.0), Tensor(neg + 7.0)).item()
    np.testing.assert_allclose(shifted, base, rtol=1e-9, atol=1e-9)
