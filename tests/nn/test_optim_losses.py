"""Tests for optimizers, the lr schedule, and loss functions."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    Parameter,
    StepDecay,
    Tensor,
    bce_loss,
    bpr_loss,
    bpr_loss_paper_eq4,
    l2_on_batch,
    l2_regularization,
)


def quadratic_loss(param):
    return ((param - 3.0) * (param - 3.0)).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, 3.0, atol=1e-4)

    def test_momentum_converges(self):
        param = Parameter(np.zeros(3))
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, 3.0, atol=1e-3)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_skips_none_grad(self):
        param = Parameter(np.ones(2))
        opt = SGD([param], lr=0.1)
        opt.step()  # no backward yet
        np.testing.assert_allclose(param.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, 3.0, atol=1e-3)

    def test_first_step_magnitude_close_to_lr(self):
        # Bias-corrected Adam's first step is ~lr regardless of grad scale.
        param = Parameter(np.array([0.0]))
        opt = Adam([param], lr=0.01)
        (param * 1000.0).sum().backward()
        opt.step()
        assert abs(param.data[0] + 0.01) < 1e-6

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.999))

    def test_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestStepDecay:
    def test_decays_at_milestones(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = StepDecay(opt, milestones=[2, 4], factor=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(sched.current_lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01])

    def test_invalid_factor(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepDecay(opt, milestones=[1], factor=0.0)


class TestBPRLoss:
    def test_positive_margin_gives_small_loss(self):
        loss_good = bpr_loss(Tensor([10.0]), Tensor([-10.0]))
        loss_bad = bpr_loss(Tensor([-10.0]), Tensor([10.0]))
        assert loss_good.item() < 1e-6
        assert loss_bad.item() > 10.0

    def test_zero_margin_is_log2(self):
        loss = bpr_loss(Tensor([0.0]), Tensor([0.0]))
        np.testing.assert_allclose(loss.item(), np.log(2.0))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bpr_loss(Tensor([1.0, 2.0]), Tensor([1.0]))

    def test_gradient_direction(self):
        pos = Parameter(np.array([0.0]))
        neg = Parameter(np.array([0.0]))
        bpr_loss(pos, neg).backward()
        assert pos.grad[0] < 0  # loss decreases if pos score rises
        assert neg.grad[0] > 0

    def test_paper_eq4_finite_when_ordered(self):
        loss = bpr_loss_paper_eq4(Tensor([2.0]), Tensor([-2.0]))
        assert np.isfinite(loss.item())

    def test_paper_eq4_penalizes_inversion(self):
        good = bpr_loss_paper_eq4(Tensor([2.0]), Tensor([-2.0])).item()
        bad = bpr_loss_paper_eq4(Tensor([-2.0]), Tensor([2.0])).item()
        assert bad > good


class TestBCELoss:
    def test_matches_reference(self):
        scores = Tensor([0.0, 2.0, -2.0])
        labels = Tensor([1.0, 1.0, 0.0])
        p = 1.0 / (1.0 + np.exp(-scores.data))
        expected = -np.mean(labels.data * np.log(p) + (1 - labels.data) * np.log(1 - p))
        np.testing.assert_allclose(bce_loss(scores, labels).item(), expected, atol=1e-10)

    def test_stable_at_extremes(self):
        loss = bce_loss(Tensor([1000.0, -1000.0]), Tensor([1.0, 0.0]))
        assert np.isfinite(loss.item())
        np.testing.assert_allclose(loss.item(), 0.0, atol=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bce_loss(Tensor([1.0]), Tensor([1.0, 0.0]))


class TestL2:
    def test_l2_regularization_value(self):
        p1 = Parameter(np.array([1.0, 2.0]))
        p2 = Parameter(np.array([3.0]))
        loss = l2_regularization([p1, p2], weight=0.5)
        np.testing.assert_allclose(loss.item(), 0.5 * (1 + 4 + 9))

    def test_l2_empty(self):
        with pytest.raises(ValueError):
            l2_regularization([], weight=0.1)

    def test_l2_on_batch_scaling(self):
        emb = Tensor(np.ones((4, 2)))
        loss = l2_on_batch([emb], weight=1.0, batch_size=4)
        np.testing.assert_allclose(loss.item(), 8.0 / 4.0)

    def test_l2_on_batch_invalid(self):
        with pytest.raises(ValueError):
            l2_on_batch([Tensor([1.0])], weight=0.1, batch_size=0)
        with pytest.raises(ValueError):
            l2_on_batch([], weight=0.1, batch_size=1)

    def test_l2_gradient(self):
        p = Parameter(np.array([2.0]))
        l2_regularization([p], weight=1.0).backward()
        np.testing.assert_allclose(p.grad, [4.0])
