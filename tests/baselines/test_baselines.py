"""Tests for the seven Table II baselines."""

import numpy as np
import pytest

from repro.baselines import BPRMF, FM, GCMC, NGCF, DeepFM, ItemPop, PaDQ
from repro.baselines._graph import bipartite_normalized_adjacency
from repro.data import SyntheticConfig, generate


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(
        n_users=30, n_items=40, n_categories=4, n_price_levels=3,
        interactions_per_user=8, seed=21,
    )
    return generate(config)[0]


ALL_TRAINABLE = [
    lambda d: BPRMF(d, dim=8, rng=np.random.default_rng(0)),
    lambda d: FM(d, dim=8, rng=np.random.default_rng(0)),
    lambda d: DeepFM(d, dim=8, hidden=(16,), rng=np.random.default_rng(0)),
    lambda d: PaDQ(d, dim=8, rng=np.random.default_rng(0)),
    lambda d: GCMC(d, dim=8, rng=np.random.default_rng(0), dropout=0.0),
    lambda d: NGCF(d, dim=8, rng=np.random.default_rng(0), dropout=0.0),
]


class TestCommonInterface:
    @pytest.mark.parametrize("ctor", ALL_TRAINABLE)
    def test_score_pairs_shape(self, dataset, ctor):
        model = ctor(dataset)
        model.eval()
        scores = model.score_pairs(np.array([0, 1, 2]), np.array([3, 4, 5]))
        assert scores.shape == (3,)

    @pytest.mark.parametrize("ctor", ALL_TRAINABLE)
    def test_predict_scores_shape(self, dataset, ctor):
        model = ctor(dataset)
        model.eval()
        scores = model.predict_scores(np.array([0, 1]))
        assert scores.shape == (2, dataset.n_items)
        assert np.isfinite(scores).all()

    @pytest.mark.parametrize("ctor", ALL_TRAINABLE)
    def test_predict_matches_score_pairs(self, dataset, ctor):
        model = ctor(dataset)
        model.eval()
        users = np.array([0, 5])
        matrix = model.predict_scores(users)
        items = np.arange(dataset.n_items)
        for row, user in enumerate(users):
            pair = model.score_pairs(np.full(dataset.n_items, user), items)
            np.testing.assert_allclose(matrix[row], pair.data, atol=1e-8)

    @pytest.mark.parametrize("ctor", ALL_TRAINABLE)
    def test_bpr_forward_gradients(self, dataset, ctor):
        model = ctor(dataset)
        pos, neg, reg = model.bpr_forward(np.array([0, 1]), np.array([2, 3]), np.array([4, 5]))
        (neg - pos).softplus().mean().backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads, "no gradients flowed"

    @pytest.mark.parametrize("ctor", ALL_TRAINABLE)
    def test_one_training_step_reduces_loss(self, dataset, ctor):
        from repro.nn import Adam, bpr_loss

        model = ctor(dataset)
        users = np.arange(16) % dataset.n_users
        pos = np.arange(16) % dataset.n_items
        neg = (np.arange(16) + 9) % dataset.n_items
        opt = Adam(model.parameters(), lr=0.05)
        first = last = None
        for step in range(5):
            p, n, __ = model.bpr_forward(users, pos, neg)
            loss = bpr_loss(p, n)
            opt.zero_grad()
            loss.backward()
            opt.step()
            if step == 0:
                first = loss.item()
            last = loss.item()
        assert last < first


class TestItemPop:
    def test_not_trainable(self, dataset):
        assert not ItemPop(dataset).trainable

    def test_rank_order_matches_popularity(self, dataset):
        model = ItemPop(dataset)
        scores = model.predict_scores(np.array([0]))
        np.testing.assert_allclose(scores[0], dataset.item_popularity())

    def test_same_scores_for_all_users(self, dataset):
        scores = ItemPop(dataset).predict_scores(np.array([0, 1, 2]))
        assert (scores[0] == scores[1]).all()
        assert (scores[1] == scores[2]).all()

    def test_score_pairs_rejected(self, dataset):
        with pytest.raises(NotImplementedError):
            ItemPop(dataset).score_pairs(np.array([0]), np.array([0]))


class TestFM:
    def test_price_category_toggles(self, dataset):
        plain = FM(dataset, dim=8, rng=np.random.default_rng(0), use_price=False, use_category=False)
        assert plain.price_embedding is None
        assert plain.category_embedding is None
        scores = plain.predict_scores(np.array([0]))
        assert scores.shape == (1, dataset.n_items)

    def test_first_order_terms_matter(self, dataset):
        model = FM(dataset, dim=8, rng=np.random.default_rng(0))
        model.item_bias.data[:] = 0.0
        base = model.predict_scores(np.array([0]))[0]
        model.item_bias.data[7] = 100.0
        boosted = model.predict_scores(np.array([0]))[0]
        assert boosted[7] - base[7] == pytest.approx(100.0)


class TestPaDQ:
    def test_user_price_matrix_rows_normalized(self, dataset):
        model = PaDQ(dataset, dim=8, rng=np.random.default_rng(0))
        rows = model._user_price.sum(axis=1)
        active = rows > 0
        np.testing.assert_allclose(rows[active], 1.0)

    def test_item_price_matrix_one_hot(self, dataset):
        model = PaDQ(dataset, dim=8, rng=np.random.default_rng(0))
        np.testing.assert_allclose(model._item_price.sum(axis=1), 1.0)
        cols = model._item_price.argmax(axis=1)
        np.testing.assert_array_equal(cols, dataset.item_price_levels)

    def test_auxiliary_loss_positive_and_differentiable(self, dataset):
        model = PaDQ(dataset, dim=8, rng=np.random.default_rng(0))
        aux = model.auxiliary_loss(np.array([0, 1, 2]), np.array([3, 4, 5]))
        assert aux.item() > 0
        aux.backward()
        assert model.price_embedding.weight.grad is not None

    def test_invalid_price_weight(self, dataset):
        with pytest.raises(ValueError):
            PaDQ(dataset, price_weight=-1.0)

    def test_auxiliary_decreases_with_training(self, dataset):
        from repro.nn import Adam

        model = PaDQ(dataset, dim=8, rng=np.random.default_rng(0), price_weight=1.0)
        opt = Adam(model.parameters(), lr=0.05)
        users, items = np.arange(10), np.arange(10)
        first = None
        for step in range(10):
            aux = model.auxiliary_loss(users, items)
            opt.zero_grad()
            aux.backward()
            opt.step()
            if step == 0:
                first = aux.item()
        assert model.auxiliary_loss(users, items).item() < first


class TestGraphBaselines:
    def test_bipartite_adjacency_rows_sum_to_one(self, dataset):
        adjacency = bipartite_normalized_adjacency(dataset)
        np.testing.assert_allclose(np.asarray(adjacency.sum(axis=1)).ravel(), 1.0)

    def test_bipartite_shape(self, dataset):
        adjacency = bipartite_normalized_adjacency(dataset)
        n = dataset.n_users + dataset.n_items
        assert adjacency.shape == (n, n)

    def test_gcmc_ignores_price(self, dataset):
        """GC-MC has no price parameters at all."""
        model = GCMC(dataset, dim=8, rng=np.random.default_rng(0))
        names = [name for name, __ in model.named_parameters()]
        assert not any("price" in name for name in names)

    def test_ngcf_uses_price_feature(self, dataset):
        model = NGCF(dataset, dim=8, rng=np.random.default_rng(0), dropout=0.0)
        model.eval()
        base = model.predict_scores(np.array([0]))
        model.price_embedding.weight.data += 0.5
        shifted = model.predict_scores(np.array([0]))
        assert not np.allclose(base, shifted)

    def test_ngcf_price_feature_optional(self, dataset):
        model = NGCF(dataset, dim=8, rng=np.random.default_rng(0), use_price_feature=False)
        assert model.price_embedding is None
        model.eval()
        assert model.predict_scores(np.array([0])).shape == (1, dataset.n_items)

    def test_ngcf_final_rep_is_concat(self, dataset):
        model = NGCF(dataset, dim=8, rng=np.random.default_rng(0), dropout=0.0)
        model.eval()
        table = model._propagate_inference()
        assert table.shape[1] == 16  # [e0 | e1]


class TestDeepFM:
    def test_shares_embeddings_between_fm_and_deep(self, dataset):
        """Perturbing the shared embedding changes both components."""
        model = DeepFM(dataset, dim=8, hidden=(8,), rng=np.random.default_rng(0))
        model.eval()
        base = model.predict_scores(np.array([0]))
        model.user_embedding.weight.data[0] += 1.0
        after = model.predict_scores(np.array([0]))
        assert not np.allclose(base, after)

    def test_chunked_predict_consistent(self, dataset):
        model = DeepFM(dataset, dim=8, hidden=(8,), rng=np.random.default_rng(0))
        model.eval()
        a = model.predict_scores(np.array([0, 1]), item_chunk=7)
        b = model.predict_scores(np.array([0, 1]), item_chunk=1000)
        np.testing.assert_allclose(a, b, atol=1e-10)
