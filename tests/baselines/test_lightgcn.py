"""Tests for the LightGCN extension baseline."""

import numpy as np
import pytest

from repro.baselines import LightGCN
from repro.baselines.lightgcn import _symmetric_normalized_bipartite
from repro.data import SyntheticConfig, generate


@pytest.fixture(scope="module")
def dataset():
    config = SyntheticConfig(
        n_users=30, n_items=40, n_categories=4, n_price_levels=3,
        interactions_per_user=8, seed=41,
    )
    return generate(config)[0]


class TestAdjacency:
    def test_symmetric(self, dataset):
        adjacency = _symmetric_normalized_bipartite(dataset)
        diff = adjacency - adjacency.T
        assert abs(diff).sum() < 1e-12

    def test_no_self_loops(self, dataset):
        adjacency = _symmetric_normalized_bipartite(dataset)
        assert adjacency.diagonal().sum() == 0.0

    def test_spectral_norm_at_most_one(self, dataset):
        # Symmetric normalization bounds eigenvalues to [-1, 1].
        adjacency = _symmetric_normalized_bipartite(dataset).toarray()
        eigenvalues = np.linalg.eigvalsh(adjacency)
        assert eigenvalues.max() <= 1.0 + 1e-9
        assert eigenvalues.min() >= -1.0 - 1e-9


class TestLightGCN:
    def test_invalid_layers(self, dataset):
        with pytest.raises(ValueError):
            LightGCN(dataset, n_layers=0)

    def test_layer_combination_is_mean(self, dataset):
        model = LightGCN(dataset, dim=8, n_layers=2, rng=np.random.default_rng(0))
        e0 = model.embedding.weight.data
        e1 = model._adjacency @ e0
        e2 = model._adjacency @ e1
        expected = (e0 + e1 + e2) / 3.0
        np.testing.assert_allclose(model._propagate_inference(), expected, atol=1e-12)

    def test_training_and_inference_paths_agree(self, dataset):
        model = LightGCN(dataset, dim=8, rng=np.random.default_rng(0))
        np.testing.assert_allclose(model._propagate().data, model._propagate_inference(), atol=1e-12)

    def test_predict_matches_score_pairs(self, dataset):
        model = LightGCN(dataset, dim=8, rng=np.random.default_rng(0))
        model.eval()
        users = np.array([0, 5])
        matrix = model.predict_scores(users)
        items = np.arange(dataset.n_items)
        for row, user in enumerate(users):
            pair = model.score_pairs(np.full(dataset.n_items, user), items)
            np.testing.assert_allclose(matrix[row], pair.data, atol=1e-9)

    def test_trains_with_bpr(self, dataset):
        from repro.train import TrainConfig, train_model

        model = LightGCN(dataset, dim=16, rng=np.random.default_rng(0))
        result = train_model(model, dataset, TrainConfig(epochs=5, lr_milestones=(3,), seed=0))
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_no_nonlinearities_no_extra_params(self, dataset):
        """LightGCN's defining property: only the embedding table is learned."""
        model = LightGCN(dataset, dim=8, rng=np.random.default_rng(0))
        assert len(model.parameters()) == 1
