"""WorkerPool: order preservation, mode resolution, graceful fallback."""

import numpy as np
import pytest

from repro.runtime.pool import WorkerPool

_STATE = {}


def _init(value):
    _STATE["value"] = value


def _square(x):
    return x * x


class TestModes:
    def test_zero_or_one_worker_resolves_serial(self):
        for workers in (0, 1):
            with WorkerPool(workers=workers, mode="auto") as pool:
                assert pool.mode == "serial"
                assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_thread_mode(self):
        with WorkerPool(workers=3, mode="thread") as pool:
            assert pool.mode == "thread"
            assert pool.map(_square, range(20)) == [x * x for x in range(20)]

    def test_process_mode_runs_initializer_in_workers(self):
        with WorkerPool(workers=2, mode="process", initializer=_init, initargs=(7,)) as pool:
            if pool.mode != "process":  # pragma: no cover - restricted sandbox
                pytest.skip("process pools unavailable on this platform")
            assert pool.map(_square, [4, 5]) == [16, 25]

    def test_results_stay_in_payload_order(self):
        # Uneven workloads must not reorder results.
        def work(payload):
            index, reps = payload
            total = 0.0
            for _ in range(reps):
                total += np.sin(index)
            return index

        payloads = [(i, 2000 if i % 2 else 1) for i in range(30)]
        with WorkerPool(workers=4, mode="thread") as pool:
            assert pool.map(work, payloads) == list(range(30))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=-1)
        with pytest.raises(ValueError):
            WorkerPool(mode="gpu")

    def test_serial_runs_local_initializer_when_asked(self):
        _STATE.clear()
        with WorkerPool(workers=0, initializer=_init, initargs=(3,), initialize_local=True):
            assert _STATE == {"value": 3}

    def test_map_accepts_generators(self):
        with WorkerPool(workers=2, mode="thread") as pool:
            assert pool.map(_square, (x for x in range(5))) == [0, 1, 4, 9, 16]
