"""Determinism of the parallel batch-inference runtime.

The contract under test: worker counts, pool modes, and shard counts are
execution knobs — rankings, scores, and metrics are bit-identical for every
setting, and identical to the serial reference path.
"""

import numpy as np
import pytest

from repro.core import pup_full
from repro.core.base import Recommender, ScoreBranch
from repro.data import SyntheticConfig, generate
from repro.eval.ranking import evaluate, metrics_from_rankings, topk_rankings
from repro.eval.topk import masked_topk
from repro.profiling import Profiler
from repro.runtime import BatchRuntime, RuntimeConfig, ShardedIndex, recommend_all
from repro.runtime.sharded import shard_ranges
from repro.serving import RetrievalEngine, export_index


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=60, n_items=110, n_categories=4, n_price_levels=4,
        interactions_per_user=9, seed=13,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=10, category_dim=6, rng=np.random.default_rng(4))
    model.eval()
    index = export_index(model, dataset)
    return dataset, model, index


class TestWorkerInvariance:
    def test_rankings_bit_identical_across_workers_and_modes(self, setup):
        dataset, model, _ = setup
        users = sorted(dataset.split_positive_sets("test"))
        reference = topk_rankings(model, dataset, users, k=20)
        for kwargs in (
            {"workers": 1},
            {"workers": 3, "mode": "thread"},
            {"workers": 4, "mode": "process"},
            {"workers": 2, "mode": "auto"},
        ):
            got = topk_rankings(model, dataset, users, k=20, **kwargs)
            assert got.keys() == reference.keys()
            for user in reference:
                np.testing.assert_array_equal(got[user], reference[user])

    def test_metrics_bit_identical_across_workers(self, setup):
        dataset, model, _ = setup
        reference = evaluate(model, dataset, ks=(5, 20))
        for kwargs in ({"workers": 4, "mode": "process"}, {"workers": 2, "mode": "thread"}):
            assert evaluate(model, dataset, ks=(5, 20), **kwargs) == reference

    def test_chunk_size_does_not_change_results(self, setup):
        dataset, model, _ = setup
        users = sorted(dataset.split_positive_sets("test"))
        reference = topk_rankings(model, dataset, users, k=10)
        for chunk in (1, 7, 1000):
            got = topk_rankings(model, dataset, users, k=10, user_chunk=chunk, workers=2)
            for user in reference:
                np.testing.assert_array_equal(got[user], reference[user])


class TestSharding:
    def test_shard_ranges_cover_catalog(self):
        for n_items, n_shards in ((10, 3), (7, 7), (5, 9), (100, 1)):
            ranges = shard_ranges(n_items, n_shards)
            assert ranges[0][0] == 0 and ranges[-1][1] == n_items
            for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                assert stop == start
            assert all(stop > start for start, stop in ranges)

    def test_sharded_equals_unsharded(self, setup):
        dataset, model, _ = setup
        users = sorted(dataset.split_positive_sets("test"))
        reference = topk_rankings(model, dataset, users, k=25)
        for shards in (2, 3, 8, 110):
            got = topk_rankings(model, dataset, users, k=25, shards=shards)
            for user in reference:
                np.testing.assert_array_equal(got[user], reference[user])

    def test_sharded_metrics_and_workers_compose(self, setup):
        dataset, model, _ = setup
        reference = evaluate(model, dataset, ks=(10,))
        assert evaluate(model, dataset, ks=(10,), shards=5, workers=3, mode="thread") == reference
        assert evaluate(model, dataset, ks=(10,), shards=4, workers=2, mode="process") == reference

    def test_tie_breaking_across_shard_boundaries(self):
        # Integer-valued factors make exact score ties that straddle shard
        # boundaries; selection must break them by ascending item id exactly
        # as a stable argsort of the full row would.
        values = np.array([3.0, 1.0, 3.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0, 0.0])
        branch = ScoreBranch(user=np.ones((4, 1)), item=values[:, None])
        for n_shards in (1, 2, 3, 5, 10):
            sharded = ShardedIndex([branch], n_shards=n_shards)
            ids, scores = sharded.topk_chunk(np.arange(4), 6, with_scores=True)
            expected = np.argsort(-values, kind="stable")[:6]
            for row in range(4):
                np.testing.assert_array_equal(ids[row], expected)
                np.testing.assert_array_equal(scores[row], values[expected])

    def test_tied_scores_with_exclusions_across_shards(self):
        values = np.tile(np.array([2.0, 1.0]), 8)  # 16 items, ties everywhere
        branch = ScoreBranch(user=np.ones((2, 1)), item=values[:, None])
        indptr = np.array([0, 3, 4])
        indices = np.array([0, 2, 14, 1])  # user 0 excludes three tied items
        reference = ShardedIndex([branch], 1).topk_chunk(
            np.arange(2), 5, exclude_csr=(indptr, indices)
        )[0]
        for n_shards in (2, 4, 7):
            got = ShardedIndex([branch], n_shards).topk_chunk(
                np.arange(2), 5, exclude_csr=(indptr, indices)
            )[0]
            np.testing.assert_array_equal(got, reference)


class TestFloat32Memory:
    def test_float32_branches_never_score_in_float64(self, setup, monkeypatch):
        dataset, model, _ = setup
        from repro.nn import precision
        from repro.runtime import sharded as sharded_module

        with precision("float32"):
            model32 = pup_full(
                dataset, global_dim=10, category_dim=6, rng=np.random.default_rng(4)
            )
        model32.eval()
        assert model32.export_embeddings()[0].user.dtype == np.float32

        seen = []
        original = sharded_module.score_branches

        def spy(*args, **kwargs):
            result = original(*args, **kwargs)
            seen.append(result.dtype)
            return result

        monkeypatch.setattr(sharded_module, "score_branches", spy)
        users = sorted(dataset.split_positive_sets("test"))
        rankings = topk_rankings(model32, dataset, users, k=15)
        assert seen and all(dtype == np.float32 for dtype in seen)
        # and the float32 rankings match the float64 model's (same weights,
        # lossless comparison order)
        reference = topk_rankings(model32, dataset, users, k=15, shards=3)
        for user in rankings:
            np.testing.assert_array_equal(rankings[user], reference[user])

    def test_recommend_all_scores_stay_in_index_dtype(self, setup):
        dataset, _, _ = setup
        from repro.nn import precision

        with precision("float32"):
            model32 = pup_full(
                dataset, global_dim=10, category_dim=6, rng=np.random.default_rng(4)
            )
        model32.eval()
        index32 = export_index(model32, dataset)
        recommendations = recommend_all(index32, k=5)
        assert recommendations.scores.dtype == np.float32


class TestCandidatePools:
    def test_candidate_items_match_reference_kernel_under_workers(self, setup):
        dataset, model, _ = setup
        rng = np.random.default_rng(9)
        users = sorted(dataset.split_positive_sets("test"))[:20]
        candidates = {
            # every user present; explicit None = unrestricted pool
            user: (
                np.sort(rng.permutation(dataset.n_items)[: int(rng.integers(3, 30))])
                if position % 2 == 0
                else None
            )
            for position, user in enumerate(users)
        }
        reference = topk_rankings(model, dataset, users, k=8, candidate_items=candidates)
        # reference semantics per user, via masked_topk on the live scores
        branches = model.export_embeddings()
        from repro.core.base import score_branches

        scores = score_branches(branches, np.asarray(users))
        train_pos = dataset.train_positive_sets()
        for row, user in enumerate(users):
            exclude = sorted(train_pos.get(user, ()))
            expected = masked_topk(
                np.asarray(scores[row], dtype=np.float64),
                8,
                exclude_items=exclude or None,
                candidate_items=candidates.get(user),
            )
            np.testing.assert_array_equal(reference[user], expected)
        for kwargs in ({"workers": 3, "mode": "process"}, {"shards": 4}):
            got = topk_rankings(model, dataset, users, k=8, candidate_items=candidates, **kwargs)
            for user in users:
                np.testing.assert_array_equal(got[user], reference[user])

    def test_missing_user_in_candidate_dict_is_a_key_error(self, setup):
        dataset, model, _ = setup
        users = sorted(dataset.split_positive_sets("test"))[:5]
        incomplete = {users[0]: np.array([1, 2, 3])}  # other users absent
        with pytest.raises(KeyError, match="missing evaluated users"):
            topk_rankings(model, dataset, users, k=5, candidate_items=incomplete)


class TestRestrictedPoolScores:
    def test_padding_past_candidate_pool_scores_neg_inf(self):
        # k exceeds a restricted pool: padding ids must carry -inf (masked)
        # scores, matching the unrestricted paths' contract, never the raw
        # model score of an out-of-pool item.
        branch = ScoreBranch(user=np.ones((1, 1)), item=np.arange(5.0)[:, None])
        with BatchRuntime([branch], RuntimeConfig()) as runtime:
            _, ids, scores = runtime.rank(
                [0], 3, with_scores=True, candidate_items={0: np.array([2])}
            )
        assert ids[0][0] == 2 and scores[0][0] == 2.0
        assert np.all(np.isneginf(scores[0][1:]))


class TestScorerFallback:
    def test_non_factorizable_model_evaluates_serially(self, setup):
        dataset, model, _ = setup

        class OpaqueScorer(Recommender):
            name = "opaque"

            def __init__(self, dataset, inner):
                super().__init__(dataset)
                self._inner = inner

            def predict_scores(self, users):
                return self._inner.predict_scores(users)

        opaque = OpaqueScorer(dataset, model)
        users = sorted(dataset.split_positive_sets("test"))
        reference = topk_rankings(model, dataset, users, k=12)
        got = topk_rankings(opaque, dataset, users, k=12, workers=4)
        for user in reference:
            np.testing.assert_array_equal(got[user], reference[user])


class TestRecommendAll:
    def test_matches_retrieval_engine(self, setup):
        dataset, _, index = setup
        recommendations = recommend_all(index, k=7, workers=2, shards=3)
        engine = RetrievalEngine(index)
        results = engine.topk(recommendations.users, 7, drop_masked=False)
        for row in range(len(recommendations.users)):
            np.testing.assert_array_equal(results[row].items, recommendations.items[row])
            np.testing.assert_array_equal(
                np.asarray(results[row].scores, dtype=recommendations.scores.dtype),
                recommendations.scores[row],
            )

    def test_padding_past_candidate_pool_is_sentineled(self):
        # 6 items, user 0 has bought 4 of them: k=5 exceeds the unexcluded
        # pool, and the overflow must surface as -1/-inf padding, never as
        # already-bought item ids.
        from repro.serving.index import EmbeddingIndex

        branch = ScoreBranch(user=np.ones((2, 1)), item=np.arange(6.0)[:, None])
        index = EmbeddingIndex(
            branches=[branch],
            item_categories=np.zeros(6, dtype=np.int64),
            item_price_levels=np.zeros(6, dtype=np.int64),
            n_price_levels=1,
            n_categories=1,
            exclude_indptr=np.array([0, 4, 5]),
            exclude_indices=np.array([1, 2, 4, 5, 0]),
            item_popularity=np.ones(6),
        )
        recommendations = recommend_all(index, k=5)
        np.testing.assert_array_equal(recommendations.items[0], [3, 0, -1, -1, -1])
        assert np.all(np.isneginf(recommendations.scores[0, 2:]))
        # user 1 has a large enough pool: no sentinels
        np.testing.assert_array_equal(recommendations.items[1], [5, 4, 3, 2, 1])

    def test_default_population_is_warm_users(self, setup):
        dataset, _, index = setup
        recommendations = recommend_all(index, k=3)
        warm = np.flatnonzero(np.diff(index.exclude_indptr) > 0)
        np.testing.assert_array_equal(recommendations.users, warm)

    def test_round_trips_through_disk(self, setup, tmp_path):
        _, _, index = setup
        recommendations = recommend_all(index, k=4, users=[0, 5, 9])
        path = recommendations.save(str(tmp_path / "recs"))
        loaded = type(recommendations).load(path)
        np.testing.assert_array_equal(loaded.users, recommendations.users)
        np.testing.assert_array_equal(loaded.items, recommendations.items)
        np.testing.assert_array_equal(loaded.scores, recommendations.scores)
        assert loaded.model_name == index.model_name
        items, scores = loaded.for_user(5)
        np.testing.assert_array_equal(items, recommendations.items[1])
        with pytest.raises(KeyError):
            loaded.for_user(123456)

    def test_checkpoint_archives_are_rejected(self, setup, tmp_path):
        dataset, model, _ = setup
        from repro.runtime.engine import BulkRecommendations
        from repro.train.persistence import save_checkpoint

        path = save_checkpoint(model, str(tmp_path / "ckpt.npz"))
        with pytest.raises(ValueError, match="not bulk recommendations"):
            BulkRecommendations.load(path)


class TestProfilerIntegration:
    def test_eval_phases_recorded(self, setup):
        dataset, model, _ = setup
        profiler = Profiler()
        evaluate(model, dataset, ks=(5,), shards=3, profiler=profiler)
        for phase in ("score", "topk", "merge", "metrics"):
            assert profiler.seconds(phase) > 0, phase
        assert profiler.counter("evaluated_users") > 0
        assert "users_per_sec" in profiler.summary()

    def test_mmap_index_runtime_parity(self, setup, tmp_path):
        dataset, _, index = setup
        path = index.save(str(tmp_path / "index"), format="dir")
        mapped = type(index).load(path, mmap=True)
        config = RuntimeConfig(workers=2, mode="process", shards=2)
        exclude = (mapped.exclude_indptr, mapped.exclude_indices)
        with BatchRuntime(mapped, config, exclude_csr=exclude) as runtime:
            _, ids, _ = runtime.rank(np.arange(20), 9)
        with BatchRuntime(index, RuntimeConfig(), exclude_csr=(index.exclude_indptr, index.exclude_indices)) as runtime:
            _, reference, _ = runtime.rank(np.arange(20), 9)
        np.testing.assert_array_equal(ids, reference)
