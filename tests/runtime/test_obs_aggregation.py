"""Cross-process observability: worker spans ship back and merge at parent.

The contract: a traced ``BatchRuntime.rank`` produces one ``runtime.rank``
span plus one ``chunk.rank`` span per dispatched chunk, linked
parent→child — and that structure is identical (span names, counts,
linkage) whether the chunks ran serially, on threads, or in worker
processes, because process-mode spans ride home on the same pickle path as
the rankings.
"""

import os

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.profiling import Profiler
from repro.runtime import BatchRuntime, RuntimeConfig
from repro.runtime.pool import WorkerPool
from repro.serving import export_index


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=50, n_items=90, n_categories=4, n_price_levels=4,
        interactions_per_user=8, seed=23,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(3))
    model.eval()
    index = export_index(model, dataset)
    return dataset, model, index


def _rank_with_tracer(index, users, mode, workers):
    tracer = Tracer(process_name="test-parent")
    config = RuntimeConfig(workers=workers, mode=mode, user_chunk=16)
    with BatchRuntime(index, config) as runtime:
        runtime.rank(users, k=5, tracer=tracer)
    return tracer, runtime


class TestSpanAggregation:
    def test_serial_rank_records_rank_and_chunk_spans(self, setup):
        _, _, index = setup
        users = np.arange(40)
        tracer, _ = _rank_with_tracer(index, users, mode="serial", workers=0)
        records = tracer.records()
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        assert len(by_name["runtime.rank"]) == 1
        assert len(by_name["chunk.rank"]) == 3  # 40 users / 16 per chunk
        rank_id = by_name["runtime.rank"][0]["span_id"]
        for chunk in by_name["chunk.rank"]:
            assert chunk["parent_id"] == rank_id

    def test_process_mode_ships_worker_spans_back(self, setup):
        _, _, index = setup
        users = np.arange(48)
        tracer, runtime = _rank_with_tracer(index, users, mode="process", workers=3)
        if runtime.mode != "process":
            pytest.skip("process pool unavailable in this sandbox")
        records = tracer.records()
        chunks = [r for r in records if r["name"] == "chunk.rank"]
        assert len(chunks) == 3
        rank_id = next(r for r in records if r["name"] == "runtime.rank")["span_id"]
        assert all(c["parent_id"] == rank_id for c in chunks)
        # worker spans carry the worker's pid, not the parent's
        assert all(c["pid"] != os.getpid() for c in chunks)
        # every chunk id arrived exactly once
        assert sorted(c["attrs"]["chunk_id"] for c in chunks) == [0, 1, 2]

    def test_span_structure_identical_across_modes(self, setup):
        _, _, index = setup
        users = np.arange(32)

        def shape(mode, workers):
            tracer, runtime = _rank_with_tracer(index, users, mode=mode, workers=workers)
            names = sorted(r["name"] for r in tracer.records())
            return names, runtime.mode

        serial_names, _ = shape("serial", 0)
        thread_names, _ = shape("thread", 2)
        process_names, process_mode = shape("process", 2)
        assert thread_names == serial_names
        if process_mode == "process":
            assert process_names == serial_names

    def test_untraced_rank_records_nothing(self, setup):
        _, _, index = setup
        with BatchRuntime(index, RuntimeConfig(user_chunk=16)) as runtime:
            runtime.rank(np.arange(20), k=5)  # no tracer: must not raise

    def test_disabled_tracer_ships_no_spans(self, setup):
        _, _, index = setup
        tracer = Tracer(enabled=False)
        with BatchRuntime(index, RuntimeConfig(user_chunk=16)) as runtime:
            runtime.rank(np.arange(20), k=5, tracer=tracer)
        assert len(tracer) == 0


class TestMetricAggregation:
    def test_profiler_timings_merge_across_process_workers(self, setup):
        _, _, index = setup
        registry = MetricsRegistry()
        profiler = Profiler(registry=registry)
        config = RuntimeConfig(workers=3, mode="process", user_chunk=16)
        with BatchRuntime(index, config) as runtime:
            runtime.rank(np.arange(48), k=5, profiler=profiler)
        # worker-side kernel seconds landed in the parent's registry
        assert profiler.seconds("score") > 0
        assert profiler.seconds("topk") > 0
        assert profiler.counter("chunks") == 3
        assert registry.get("profiler_phase_seconds_total").value(phase="score") > 0

    def test_pool_registry_counts_dispatches(self):
        registry = MetricsRegistry()
        pool = WorkerPool(workers=0, registry=registry)
        try:
            assert pool.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
            assert pool.map(lambda x: x, [7]) == [7]
        finally:
            pool.close()
        assert registry.get("pool_map_calls_total").value(mode="serial") == 2
        assert registry.get("pool_payloads_total").value(mode="serial") == 4
        assert registry.get("pool_map_seconds").count() == 2
