"""Process-pool crash recovery: detect dead workers, retry, fail loudly.

Before the supervised dispatch path, a worker dying mid-map hung
``multiprocessing.Pool.map`` forever (the pool respawns the worker but the
in-flight task is silently lost).  These tests pin the recovery contract:
results identical to serial, bounded retries, typed give-up.
"""

import numpy as np
import pytest

from repro.faults import POOL_WORKER_CRASH, FaultPlan, FaultSpec
from repro.obs.metrics import MetricsRegistry
from repro.runtime.pool import WorkerCrashed, WorkerPool


def _cube_sum(chunk):
    return float(np.sum(np.asarray(chunk, dtype=np.float64) ** 3))


CHUNKS = [list(range(i, i + 5)) for i in range(0, 40, 5)]
EXPECTED = [_cube_sum(chunk) for chunk in CHUNKS]


class TestCrashRecovery:
    def test_single_crash_is_recovered_bit_identically(self):
        plan = FaultPlan([FaultSpec(POOL_WORKER_CRASH, times=(3,))])
        pool = WorkerPool(workers=2, mode="process", fault_plan=plan)
        with pool:
            got = pool.map(_cube_sum, CHUNKS)
        assert got == EXPECTED
        assert pool.worker_deaths >= 1
        assert pool.chunk_retries >= 1

    def test_multiple_crashes_in_one_map(self):
        plan = FaultPlan([FaultSpec(POOL_WORKER_CRASH, times=(1, 5))])
        pool = WorkerPool(workers=2, mode="process", fault_plan=plan)
        with pool:
            got = pool.map(_cube_sum, CHUNKS)
        assert got == EXPECTED
        assert pool.worker_deaths >= 2

    def test_crash_storm_raises_worker_crashed_not_hang(self):
        storm = FaultPlan([FaultSpec(POOL_WORKER_CRASH, probability=1.0)])
        pool = WorkerPool(workers=2, mode="process", fault_plan=storm,
                          max_chunk_retries=1)
        with pool:
            with pytest.raises(WorkerCrashed, match="max_chunk_retries=1"):
                pool.map(_cube_sum, CHUNKS[:3])

    def test_pool_survives_map_after_recovery(self):
        plan = FaultPlan([FaultSpec(POOL_WORKER_CRASH, times=(0,))])
        pool = WorkerPool(workers=2, mode="process", fault_plan=plan)
        with pool:
            first = pool.map(_cube_sum, CHUNKS)
            second = pool.map(_cube_sum, CHUNKS)  # plan exhausted: clean run
        assert first == EXPECTED and second == EXPECTED

    def test_counters_reach_registry(self):
        registry = MetricsRegistry()
        plan = FaultPlan([FaultSpec(POOL_WORKER_CRASH, times=(2,))])
        pool = WorkerPool(workers=2, mode="process", fault_plan=plan,
                          registry=registry)
        with pool:
            pool.map(_cube_sum, CHUNKS)
        assert registry.counter(
            "pool_worker_deaths_total", "Process-pool workers that died mid-map."
        ).value() >= 1
        assert registry.counter(
            "pool_chunk_retries_total", "Lost chunks resubmitted after a worker death."
        ).value() >= 1


class TestNonProcessModes:
    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_fault_plan_is_inert_outside_process_mode(self, mode):
        # Worker crashes model a process dying; serial/thread pools cannot
        # lose a chunk that way, so the plan must not disturb results.
        plan = FaultPlan([FaultSpec(POOL_WORKER_CRASH, probability=1.0)])
        pool = WorkerPool(workers=2, mode=mode, fault_plan=plan)
        with pool:
            assert pool.map(_cube_sum, CHUNKS) == EXPECTED

    def test_retry_bound_validation(self):
        with pytest.raises(ValueError, match="max_chunk_retries"):
            WorkerPool(workers=2, mode="process", max_chunk_retries=-1)
