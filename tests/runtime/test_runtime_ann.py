"""Batch runtime: ANN candidate-generation mode and in-place refresh."""

import numpy as np
import pytest

from repro.core import pup_full
from repro.core.base import ScoreBranch
from repro.data import SyntheticConfig, generate
from repro.runtime import BatchRuntime, RuntimeConfig, WorkerPool, recommend_all
from repro.serving import build_ivf, export_index


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_users=60, n_items=200, n_categories=4, n_price_levels=4,
        interactions_per_user=8, seed=41,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=10, category_dim=4, rng=np.random.default_rng(4))
    model.eval()
    index = export_index(model, dataset)
    return dataset, index


class TestRecommendAllWithAnn:
    def test_full_probe_bulk_export_rankings_bit_identical_to_exact(self, setup):
        _, index = setup
        ivf = build_ivf(index, n_lists=8, nprobe=8, seed=0)
        exact = recommend_all(index, k=15)
        approx = recommend_all(index, k=15, ann=ivf)
        np.testing.assert_array_equal(exact.users, approx.users)
        np.testing.assert_array_equal(exact.items, approx.items)
        # scores carry the usual 1-ULP caveat for differing matmul widths
        np.testing.assert_allclose(exact.scores, approx.scores, rtol=1e-12)

    def test_pruned_bulk_export_respects_exclusions_and_padding(self, setup):
        _, index = setup
        ivf = build_ivf(index, n_lists=8, nprobe=2, seed=0)
        bulk = recommend_all(index, k=10, ann=ivf)
        for row, user in enumerate(bulk.users):
            items = bulk.items[row]
            real = items[items >= 0]
            assert len(np.intersect1d(real, index.excluded_items(int(user)))) == 0
            # dense sentinel contract: -1 ids carry -inf scores
            assert np.isneginf(bulk.scores[row][items < 0]).all()

    def test_ann_mode_identical_across_pool_modes(self, setup):
        _, index = setup
        ivf = build_ivf(index, n_lists=8, nprobe=3, seed=0)
        serial = recommend_all(index, k=10, ann=ivf)
        threaded = recommend_all(index, k=10, ann=ivf, workers=2, mode="thread")
        np.testing.assert_array_equal(serial.items, threaded.items)
        procs = recommend_all(index, k=10, ann=ivf, workers=2, mode="process")
        np.testing.assert_array_equal(serial.items, procs.items)

    def test_candidate_pools_and_ann_are_mutually_exclusive(self, setup):
        _, index = setup
        ivf = build_ivf(index, n_lists=8, nprobe=2, seed=0)
        csr = (index.exclude_indptr, index.exclude_indices)
        with BatchRuntime(index, RuntimeConfig(), exclude_csr=csr, ann=ivf) as runtime:
            assert runtime.ann is ivf
            with pytest.raises(ValueError, match="mutually exclusive"):
                runtime.rank([0, 1], 5, candidate_items={0: None, 1: None})

    def test_ann_search_profiled_under_its_own_phase(self, setup):
        from repro.profiling import Profiler

        _, index = setup
        ivf = build_ivf(index, n_lists=8, nprobe=2, seed=0)
        profiler = Profiler()
        recommend_all(index, k=5, ann=ivf, profiler=profiler)
        assert profiler.seconds("ann_search") > 0


class TestRefresh:
    @pytest.mark.parametrize("workers,mode", [(0, "auto"), (2, "thread"), (2, "process")])
    def test_refresh_matches_fresh_runtime(self, setup, workers, mode):
        """After refresh(new_branches), rankings == a runtime built on them."""
        _, index = setup
        rng = np.random.default_rng(9)
        new_branches = [
            ScoreBranch(
                user=rng.normal(size=branch.user.shape),
                item=rng.normal(size=branch.item.shape),
            )
            for branch in index.branches
        ]
        config = RuntimeConfig(workers=workers, mode=mode)
        users = np.arange(40)
        with BatchRuntime(index.branches, config) as runtime:
            if mode == "process" and runtime.mode != "process":
                pytest.skip("process pools unavailable in this sandbox")
            before = runtime.rank(users, 10)[1]
            runtime.refresh(new_branches)
            after = runtime.rank(users, 10)[1]
        with BatchRuntime(new_branches, RuntimeConfig()) as fresh:
            expected = fresh.rank(users, 10)[1]
        np.testing.assert_array_equal(after, expected)
        assert not np.array_equal(before, after)

    def test_refresh_keeps_exclusions_by_default(self, setup):
        _, index = setup
        csr = (index.exclude_indptr, index.exclude_indices)
        with BatchRuntime(index, RuntimeConfig(), exclude_csr=csr) as runtime:
            runtime.refresh(index.branches)
            assert runtime.has_exclusions
            _, ids, _ = runtime.rank(np.arange(20), 10)
        for row in range(20):
            excluded = index.excluded_items(row)
            assert len(np.intersect1d(ids[row], excluded)) == 0

    def test_refresh_can_swap_ann(self, setup):
        _, index = setup
        ivf = build_ivf(index, n_lists=8, nprobe=8, seed=0)
        with BatchRuntime(index, RuntimeConfig()) as runtime:
            exact = runtime.rank(np.arange(20), 10)[1]
            runtime.refresh(index, ann=ivf)
            assert runtime.ann is ivf
            approx = runtime.rank(np.arange(20), 10)[1]
            np.testing.assert_array_equal(exact, approx)  # full probe
            runtime.refresh(index, ann=None)
            assert runtime.ann is None

    def test_refresh_rejects_catalog_change(self, setup):
        _, index = setup
        smaller = [
            ScoreBranch(user=branch.user, item=branch.item[:-1])
            for branch in index.branches
        ]
        with BatchRuntime(index, RuntimeConfig()) as runtime:
            with pytest.raises(ValueError, match="changed the catalog"):
                runtime.refresh(smaller)


class TestPoolReinitialize:
    def test_serial_and_thread_rerun_local_initializer(self):
        seen = []

        def init(tag):
            seen.append(tag)

        pool = WorkerPool(workers=0, initializer=init, initargs=("a",), initialize_local=True)
        assert seen == ["a"]
        pool.reinitialize("b")
        assert seen == ["a", "b"]
        pool.close()

    def test_process_pool_broadcast_reaches_every_worker(self):
        pool = WorkerPool(
            workers=2, mode="process",
            initializer=_set_state, initargs=(1,),
        )
        if pool.mode != "process":
            pool.close()
            pytest.skip("process pools unavailable in this sandbox")
        try:
            assert set(pool.map(_get_state, range(8))) == {1}
            pool.reinitialize(2)
            assert set(pool.map(_get_state, range(8))) == {2}
            pool.reinitialize(3)
            assert set(pool.map(_get_state, range(8))) == {3}
        finally:
            pool.close()


_STATE = None


def _set_state(value):
    global _STATE
    _STATE = value


def _get_state(_payload):
    return _STATE
