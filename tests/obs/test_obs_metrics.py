"""Metrics registry: primitives, thread safety, merge laws, exposition."""

import json
import math
import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    log_buckets,
    parse_prometheus,
)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        c = registry.counter("requests_total", "Requests.")
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)

    def test_labels_are_independent_series(self):
        registry = MetricsRegistry()
        c = registry.counter("requests_total", labels=("route",))
        c.labels(route="warm").inc(3)
        c.labels(route="cold").inc()
        assert c.value(route="warm") == 3
        assert c.value(route="cold") == 1

    def test_unseen_series_reads_zero(self):
        registry = MetricsRegistry()
        c = registry.counter("requests_total", labels=("route",))
        assert c.value(route="never") == 0.0

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("n")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_labelled_metric_requires_labels(self):
        c = MetricsRegistry().counter("n", labels=("route",))
        with pytest.raises(ValueError, match="labels"):
            c.inc()

    def test_wrong_label_names_rejected(self):
        c = MetricsRegistry().counter("n", labels=("route",))
        with pytest.raises(ValueError):
            c.labels(nope="x")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("queue_depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a", labels=("x",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("a", labels=("y",))

    def test_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("bad-name")

    def test_thread_safety_counter_no_lost_updates(self):
        registry = MetricsRegistry()
        c = registry.counter("n", labels=("t",))

        def work(tag):
            for _ in range(2000):
                c.labels(t=tag).inc()
                c.labels(t="shared").inc()

        threads = [threading.Thread(target=work, args=(str(i),)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(t="shared") == 8 * 2000
        assert all(c.value(t=str(i)) == 2000 for i in range(8))


class TestHistogram:
    def test_buckets_are_log_spaced_and_fixed(self):
        bounds = log_buckets(1e-6, 1e2, per_decade=4)
        assert bounds == DEFAULT_BUCKETS
        ratios = [b2 / b1 for b1, b2 in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(10 ** 0.25, rel=1e-9) for r in ratios)

    def test_count_sum_mean(self):
        h = MetricsRegistry().histogram("lat")
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(0.006)
        assert h.mean() == pytest.approx(0.002)

    def test_percentile_single_sample_exact(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.0123)
        # clamped to observed min == max, so the estimate is the sample
        assert h.percentile(50) == pytest.approx(0.0123)
        assert h.percentile(99) == pytest.approx(0.0123)

    def test_percentile_error_bounded_by_bucket_width(self):
        h = MetricsRegistry().histogram("lat")
        rng = np.random.default_rng(0)
        samples = 10 ** rng.uniform(-4, 0, size=5000)  # 0.1ms .. 1s
        for v in samples:
            h.observe(float(v))
        for q in (50, 90, 99):
            exact = float(np.percentile(samples, q))
            estimate = h.percentile(q)
            # one bucket spans a factor of 10**0.25 ~ 1.78
            assert exact / 1.78 <= estimate <= exact * 1.78

    def test_percentile_empty_is_zero(self):
        assert MetricsRegistry().histogram("lat").percentile(50) == 0.0

    def test_overflow_bucket(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        h.observe(100.0)
        assert h.count() == 1
        assert h.percentile(50) == pytest.approx(100.0)  # clamped to max

    def test_timer_uses_injected_clock(self):
        ticks = iter([10.0, 12.5])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        h = registry.histogram("op_seconds")
        with h.time():
            pass
        assert h.sum() == pytest.approx(2.5)
        assert h.count() == 1


class TestMerge:
    def _observe_all(self, values):
        registry = MetricsRegistry()
        h = registry.histogram("lat")
        for v in values:
            h.observe(v)
        return registry

    def test_merge_equals_observing_everything(self):
        rng = np.random.default_rng(1)
        values = 10 ** rng.uniform(-5, 1, size=300)
        parts = np.array_split(values, 5)

        merged = MetricsRegistry()
        for part in parts:
            merged.merge(self._observe_all(part).to_json())
        reference = self._observe_all(values)

        h_merged = merged.get("lat")
        h_ref = reference.get("lat")
        assert h_merged.count() == h_ref.count()
        assert h_merged.sum() == pytest.approx(h_ref.sum())
        for q in (50, 90, 99):
            assert h_merged.percentile(q) == pytest.approx(h_ref.percentile(q))

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_associative_and_commutative(self, seed):
        rng = np.random.default_rng(seed)
        chunks = [10 ** rng.uniform(-5, 1, size=rng.integers(1, 40)) for _ in range(4)]
        a, b, c, d = [self._observe_all(chunk).to_json() for chunk in chunks]

        # (a + b) + (c + d)  ==  d + (c + (b + a))
        left = MetricsRegistry()
        for snap in (a, b, c, d):
            left.merge(snap)
        right = MetricsRegistry()
        for snap in (d, c, b, a):
            right.merge(snap)

        hl, hr = left.get("lat"), right.get("lat")
        assert hl.count() == hr.count()
        assert hl.sum() == pytest.approx(hr.sum())
        series_l = hl.items()[0][1]
        series_r = hr.items()[0][1]
        assert series_l.counts == series_r.counts
        assert series_l.min == series_r.min
        assert series_l.max == series_r.max

    def test_merge_counters_and_gauges(self):
        a = MetricsRegistry()
        a.counter("n", labels=("k",)).labels(k="x").inc(2)
        a.gauge("depth").set(7)
        b = MetricsRegistry()
        b.merge(a.to_json())
        b.merge(a.to_json())
        assert b.get("n").value(k="x") == 4  # counters add
        assert b.get("depth").value() == 7  # gauges take the value

    def test_merge_rejects_different_bucket_layouts(self):
        a = MetricsRegistry()
        a.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        b = MetricsRegistry()
        b.histogram("lat", buckets=(1.0, 2.0, 4.0)).observe(1.5)
        with pytest.raises(ValueError, match="bucket|layouts"):
            b.merge(a.to_json())

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("n", "help text", labels=("k",)).labels(k="x").inc()
        registry.histogram("lat").observe(0.5)
        round_tripped = json.loads(json.dumps(registry.to_json()))
        other = MetricsRegistry()
        other.merge(round_tripped)
        assert other.get("n").value(k="x") == 1


class TestExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Total requests.", labels=("route",)).labels(
            route="warm"
        ).inc(3)
        registry.gauge("depth", "Queue depth.").set(2)
        text = registry.to_prometheus()
        assert "# HELP requests_total Total requests." in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{route="warm"} 3.0' in text
        assert "# TYPE depth gauge" in text

    def test_histogram_cumulative_buckets_and_inf(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        samples = parse_prometheus(registry.to_prometheus())
        assert samples[("lat_bucket", (("le", "1.0"),))] == 1
        assert samples[("lat_bucket", (("le", "2.0"),))] == 2
        assert samples[("lat_bucket", (("le", "+Inf"),))] == 3
        assert samples[("lat_count", ())] == 3
        assert samples[("lat_sum", ())] == pytest.approx(101.0)

    def test_round_trip_through_parser(self):
        registry = MetricsRegistry()
        registry.counter("a_total", labels=("k",)).labels(k='we"ird\\val').inc(5)
        registry.histogram("h").observe(0.25)
        samples = parse_prometheus(registry.to_prometheus())
        assert samples[("a_total", (("k", 'we"ird\\val'),))] == 5
        total = [v for (name, _), v in samples.items() if name == "h_count"]
        assert total == [1]

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus("this is not exposition format\n")

    def test_parser_handles_inf_and_comments(self):
        samples = parse_prometheus("# a comment\n\nx_bucket{le=\"+Inf\"} 4\n")
        assert samples[("x_bucket", (("le", "+Inf"),))] == 4

    def test_exposition_always_reparses(self):
        # property: whatever the registry holds, its exposition is parseable
        registry = MetricsRegistry()
        registry.counter("c_total", "with\nnewline help").inc()
        registry.histogram("h", labels=("stage",)).labels(stage="fine").observe(0.1)
        registry.gauge("g").set(-3.5)
        samples = parse_prometheus(registry.to_prometheus())
        assert samples[("g", ())] == -3.5
        assert math.isfinite(samples[("c_total", ())])
