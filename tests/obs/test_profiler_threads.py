"""Profiler thread-safety regression: concurrent phases/counters lose nothing.

The pre-observability Profiler accumulated into bare dicts with
read-modify-write (`self._seconds[name] = self._seconds.get(name, 0.0) + s`),
which silently lost updates under the thread-mode worker pool.  The
registry-backed Profiler mutates under the registry lock; these tests pin
that exact totals survive heavy contention.
"""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.profiling import Profiler

N_THREADS = 8
N_ITERS = 2000


def _hammer(fn):
    threads = [threading.Thread(target=fn, args=(i,)) for i in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestProfilerThreadSafety:
    def test_concurrent_add_seconds_exact_total(self):
        profiler = Profiler()

        def work(_tag):
            for _ in range(N_ITERS):
                profiler.add_seconds("score", 0.001)
                profiler.add_seconds("merge", 0.002)

        _hammer(work)
        assert profiler.seconds("score") == pytest.approx(N_THREADS * N_ITERS * 0.001)
        assert profiler.seconds("merge") == pytest.approx(N_THREADS * N_ITERS * 0.002)
        assert profiler.summary()["phases"]["score"]["calls"] == N_THREADS * N_ITERS

    def test_concurrent_counters_exact_total(self):
        profiler = Profiler()

        def work(tag):
            for _ in range(N_ITERS):
                profiler.count("triples", 3)
                profiler.count(f"worker_{tag}")

        _hammer(work)
        assert profiler.counter("triples") == N_THREADS * N_ITERS * 3
        for tag in range(N_THREADS):
            assert profiler.counter(f"worker_{tag}") == N_ITERS

    def test_concurrent_phase_context_manager(self):
        profiler = Profiler()

        def work(_tag):
            for _ in range(200):
                with profiler.phase("fwd"):
                    pass

        _hammer(work)
        assert profiler.summary()["phases"]["fwd"]["calls"] == N_THREADS * 200
        assert profiler.seconds("fwd") > 0

    def test_shared_registry_aggregates_two_profilers(self):
        registry = MetricsRegistry()
        a = Profiler(registry=registry)
        b = Profiler(registry=registry)
        a.add_seconds("score", 1.0)
        b.add_seconds("score", 2.0)
        # both views read the same series
        assert a.seconds("score") == pytest.approx(3.0)
        assert b.seconds("score") == pytest.approx(3.0)

    def test_profiler_metrics_visible_on_registry_exposition(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry=registry)
        profiler.add_seconds("score", 0.5)
        profiler.count("triples", 10)
        text = registry.to_prometheus()
        assert 'profiler_phase_seconds_total{phase="score"} 0.5' in text
        assert 'profiler_events_total{event="triples"} 10.0' in text
