"""End-to-end observability: service + live endpoint + complete traces.

The contract the CI obs-smoke arm enforces, pinned here as a test: a
traced, registry-backed :class:`RecommenderService` serves requests whose
metrics scrape as strictly parseable Prometheus exposition over HTTP and
whose spans form one complete tree per request — admission → cache lookup
→ flush → batch → engine/topk — with process-mode worker spans landing in
the same Chrome trace.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.core import pup_full
from repro.data import SyntheticConfig, generate
from repro.obs import MetricsServer, Tracer, parse_prometheus
from repro.runtime import BatchRuntime, RuntimeConfig
from repro.serving import RecommenderService, export_index


@pytest.fixture(scope="module")
def index():
    config = SyntheticConfig(
        n_users=40, n_items=120, n_categories=4, n_price_levels=4,
        interactions_per_user=6, seed=11,
    )
    dataset = generate(config)[0]
    model = pup_full(dataset, global_dim=8, category_dim=4, rng=np.random.default_rng(5))
    model.eval()
    return export_index(model, dataset)


def _fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read()


class TestServiceEndpoint:
    def test_scrape_is_parseable_and_has_core_series(self, index):
        tracer = Tracer(process_name="test-serve")
        service = RecommenderService(index, default_k=5, tracer=tracer)
        with MetricsServer(
            service.registry,
            stats_fn=service.stats.extended_snapshot,
            update_fn=service._sync_gauges,
        ) as server:
            service.recommend_many([0, 1, 2, index.n_users + 99])
            samples = parse_prometheus(_fetch(server.url("/metrics")).decode())
            names = {name for name, _ in samples}
            assert samples[("serving_requests_total", (("route", "warm"),))] == 3
            assert samples[("serving_requests_total", (("route", "cold"),))] == 1
            assert ("serving_request_latency_seconds_count", ()) in samples
            assert ("serving_queue_depth", ()) in samples
            assert any(n.startswith("serving_queue_wait_seconds") for n in names)

            stats = json.loads(_fetch(server.url("/stats")))
            assert stats["requests"] == 4
            assert "queue_wait_p99_ms" in stats

            health = json.loads(_fetch(server.url("/healthz")))
            assert health == {"status": "ok"}

    def test_update_fn_refreshes_gauges_per_scrape(self, index):
        service = RecommenderService(index, default_k=5, max_batch_size=64)
        with MetricsServer(
            service.registry, update_fn=service._sync_gauges
        ) as server:
            service.submit(0)
            service.submit(1)
            samples = parse_prometheus(_fetch(server.url("/metrics")).decode())
            assert samples[("serving_queue_depth", ())] == 2
            service.flush()
            samples = parse_prometheus(_fetch(server.url("/metrics")).decode())
            assert samples[("serving_queue_depth", ())] == 0
            assert samples[("serving_cache_entries", ())] == 2


class TestRequestSpanTree:
    def test_every_request_has_a_complete_span_tree(self, index):
        tracer = Tracer(process_name="test-serve")
        service = RecommenderService(index, default_k=5, tracer=tracer)
        service.recommend_many([0, 1, 2])
        service.recommend(0)  # second hit: served from cache

        trace = tracer.to_chrome_trace()
        complete = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        by_id = {e["args"]["span_id"]: e for e in complete}
        requests = [e for e in complete if e["name"] == "request"]
        assert len(requests) == 4
        request_ids = {e["args"]["span_id"] for e in requests}

        lookups = [e for e in complete if e["name"] == "cache.lookup"]
        assert len(lookups) == 4
        assert all(e["args"]["parent_id"] in request_ids for e in lookups)
        # the cached answer is marked on both the lookup and the request
        assert sum(bool(e["args"]["hit"]) for e in lookups) == 1
        assert sum(bool(e["args"].get("cached")) for e in requests) == 1

        # flush → batch.warm → engine.topk chain is recorded and linked
        names = {e["name"] for e in complete}
        assert {"flush", "batch.warm", "engine.topk"} <= names
        topk = next(e for e in complete if e["name"] == "engine.topk")
        batch = by_id[topk["args"]["parent_id"]]
        assert batch["name"] == "batch.warm"
        assert by_id[batch["args"]["parent_id"]]["name"] == "flush"
        # no dangling parent ids anywhere in the tree
        assert all(
            e["args"]["parent_id"] is None or e["args"]["parent_id"] in by_id
            for e in complete
        )

    def test_cache_disabled_drops_lookup_stage(self, index):
        tracer = Tracer()
        service = RecommenderService(index, default_k=5, cache_capacity=0, tracer=tracer)
        service.recommend_many([0, 1])
        names = [r["name"] for r in tracer.records()]
        assert "cache.lookup" not in names
        assert names.count("request") == 2


class TestProcessModeTrace:
    def test_worker_spans_land_in_the_chrome_trace(self, index):
        tracer = Tracer(process_name="parent")
        config = RuntimeConfig(workers=2, mode="process", user_chunk=16)
        with BatchRuntime(index, config) as runtime:
            if runtime.mode != "process":
                pytest.skip("process pool unavailable in this sandbox")
            runtime.rank(np.arange(32), k=5, tracer=tracer)
        trace = tracer.to_chrome_trace()
        complete = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        pids = {e["pid"] for e in complete}
        assert len(pids) >= 2  # parent + at least one worker track
        metas = [e for e in trace["traceEvents"] if e.get("ph") == "M"]
        assert {m["pid"] for m in metas} == pids
        chunk_spans = [e for e in complete if e["name"] == "chunk.rank"]
        rank_id = next(e for e in complete if e["name"] == "runtime.rank")["args"]["span_id"]
        assert all(e["args"]["parent_id"] == rank_id for e in chunk_spans)
