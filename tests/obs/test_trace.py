"""Tracer: deterministic spans, linkage, Chrome-trace schema, merging."""

import json
import os
import threading

import pytest

from repro.obs.trace import SPAN_FIELDS, Tracer, maybe_span


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        self.t += 0.25
        return self.t


class TestSpans:
    def test_span_records_start_end_with_injected_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work"):
            pass
        (record,) = tracer.records()
        assert record["name"] == "work"
        assert record["start"] == pytest.approx(100.25)
        assert record["end"] == pytest.approx(100.50)
        assert record["pid"] == os.getpid()

    def test_nesting_builds_parent_child_linkage(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.parent_id == parent.span_id
            with tracer.span("sibling") as sibling:
                pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["child"]["parent_id"] == records["parent"]["span_id"]
        assert records["sibling"]["parent_id"] == records["parent"]["span_id"]
        assert records["parent"]["parent_id"] is None

    def test_begin_finish_crosses_calls_without_touching_stack(self):
        tracer = Tracer(clock=FakeClock())
        request = tracer.begin("request", attrs={"user": 7})
        with tracer.span("flush") as flush:
            assert flush.parent_id is None  # begin() did not join the stack
        request.finish(source="warm")
        records = {r["name"]: r for r in tracer.records()}
        assert records["request"]["attrs"] == {"user": 7, "source": "warm"}
        assert records["request"]["end"] > records["request"]["start"]

    def test_finish_is_idempotent(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.begin("x")
        span.finish()
        end = tracer.records()[0]["end"]
        span.finish()
        assert len(tracer) == 1
        assert tracer.records()[0]["end"] == end

    def test_explicit_parent_and_trace_id(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("child", parent_id="foreign-1", trace_id="req-9"):
            pass
        (record,) = tracer.records()
        assert record["parent_id"] == "foreign-1"
        assert record["trace_id"] == "req-9"

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work") as span:
            span.set_attr("k", 1)
        assert tracer.begin("x").span_id is None
        assert len(tracer) == 0

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        seen = {}

        def work(tag):
            with tracer.span(f"root-{tag}"):
                seen[tag] = tracer.current_span_id

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen.values())) == 4
        assert all(r["parent_id"] is None for r in tracer.records())


class TestMerging:
    def test_extend_accepts_foreign_records(self):
        worker = Tracer(clock=FakeClock())
        with worker.span("chunk", attrs={"chunk_id": 3}):
            pass
        parent = Tracer()
        assert parent.extend(worker.records()) == 1
        assert parent.records()[0]["attrs"]["chunk_id"] == 3

    def test_extend_rejects_malformed_records(self):
        with pytest.raises(ValueError, match="missing fields"):
            Tracer().extend([{"name": "x"}])

    def test_span_fields_cover_records(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("x"):
            pass
        assert set(tracer.records()[0]) == set(SPAN_FIELDS)


class TestExport:
    def _tracer_with_tree(self):
        tracer = Tracer(clock=FakeClock(), process_name="svc")
        with tracer.span("flush", attrs={"n": 2}):
            with tracer.span("batch"):
                pass
        return tracer

    def test_chrome_trace_schema(self, tmp_path):
        tracer = self._tracer_with_tree()
        path = tracer.write_chrome_trace(str(tmp_path / "trace.json"))
        with open(path) as handle:
            payload = json.load(handle)
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 2
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(event)
            assert event["dur"] > 0
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        by_name = {e["name"]: e for e in complete}
        assert by_name["batch"]["args"]["parent_id"] == by_name["flush"]["args"]["span_id"]
        # microsecond timestamps: 0.25 fake-clock ticks = 250_000 us
        assert by_name["batch"]["dur"] == pytest.approx(250_000)
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "svc"

    def test_unfinished_spans_are_excluded_from_chrome_trace(self):
        tracer = Tracer(clock=FakeClock())
        tracer.begin("open-forever")
        with tracer.span("done"):
            pass
        events = [e for e in tracer.to_chrome_trace()["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in events] == ["done"]

    def test_jsonl_round_trip(self, tmp_path):
        tracer = self._tracer_with_tree()
        path = tracer.write(str(tmp_path / "trace.jsonl"))
        lines = [json.loads(line) for line in open(path)]
        assert len(lines) == 2
        other = Tracer()
        other.extend(lines)
        assert len(other) == 2

    def test_write_dispatches_on_extension(self, tmp_path):
        tracer = self._tracer_with_tree()
        chrome = tracer.write(str(tmp_path / "t.json"))
        assert "traceEvents" in json.load(open(chrome))


class TestMaybeSpan:
    def test_none_tracer_yields_null_span(self):
        with maybe_span(None, "x") as span:
            span.set_attr("k", 1)  # must not raise

    def test_real_tracer_records(self):
        tracer = Tracer(clock=FakeClock())
        with maybe_span(tracer, "x", attrs={"a": 1}):
            pass
        assert tracer.records()[0]["attrs"] == {"a": 1}
