"""MetricsServer: live /metrics, /stats, /healthz over a registry."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry, parse_prometheus
from repro.obs.server import MetricsServer


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("serving_requests_total", "Requests.", labels=("route",)).labels(
        route="warm"
    ).inc(5)
    registry.histogram("serving_request_latency_seconds", "Latency.").observe(0.004)
    return registry


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


class TestMetricsServer:
    def test_metrics_endpoint_serves_parseable_exposition(self, registry):
        with MetricsServer(registry, port=0) as server:
            status, content_type, body = _get(server.url("/metrics"))
        assert status == 200
        assert content_type.startswith("text/plain")
        samples = parse_prometheus(body.decode())
        assert samples[("serving_requests_total", (("route", "warm"),))] == 5
        assert ("serving_request_latency_seconds_count", ()) in samples

    def test_stats_endpoint_default_json(self, registry):
        with MetricsServer(registry, port=0) as server:
            status, content_type, body = _get(server.url("/stats"))
        assert status == 200 and content_type == "application/json"
        payload = json.loads(body)
        assert payload["serving_requests_total"]["type"] == "counter"

    def test_stats_endpoint_custom_fn(self, registry):
        with MetricsServer(registry, port=0, stats_fn=lambda: {"qps": 12.5}) as server:
            _, _, body = _get(server.url("/stats"))
        assert json.loads(body) == {"qps": 12.5}

    def test_healthz(self, registry):
        with MetricsServer(registry, port=0) as server:
            status, _, body = _get(server.url("/healthz"))
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_unknown_route_404(self, registry):
        with MetricsServer(registry, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url("/nope"))
            assert excinfo.value.code == 404

    def test_update_fn_runs_before_each_scrape(self, registry):
        calls = []
        gauge = registry.gauge("depth")

        def refresh():
            calls.append(1)
            gauge.set(len(calls))

        with MetricsServer(registry, port=0, update_fn=refresh) as server:
            _get(server.url("/metrics"))
            _, _, body = _get(server.url("/metrics"))
        samples = parse_prometheus(body.decode())
        assert samples[("depth", ())] == 2

    def test_ephemeral_port_is_reported(self, registry):
        server = MetricsServer(registry, port=0)
        try:
            assert server.port > 0
        finally:
            server.stop()
