"""Resilience policies: transient-error taxonomy, retry/backoff, circuit breaker.

The service treats a backend exception in one of three ways, decided here:

* **Non-transient** (``ValueError``/``TypeError``/... — a malformed request
  or a programming error): propagate raw, immediately.  Retrying cannot
  help, degrading would hide a bug, and the breaker must not trip — a bad
  request says nothing about backend health.
* **Transient** (everything else — flaky worker, injected fault, I/O
  hiccup): retry with exponential backoff up to ``retries`` times, feeding
  the circuit breaker, then hand the batch to the degradation ladder.
* **Breaker open**: skip the backend entirely and degrade up front, so a
  struggling backend gets breathing room instead of a retry storm.

The :class:`CircuitBreaker` is the classic three-state machine — *closed*
(normal), *open* (error rate over ``error_threshold`` across the last
``window`` calls; everything degrades for ``open_s``), *half-open* (up to
``half_open_probes`` trial requests; all must succeed to close, one failure
re-opens).  Its state is published as the ``gateway_breaker_state`` gauge
(0 = closed, 1 = open, 2 = half-open) with transitions counted by target
state, so a dashboard can see every trip and recovery.

All timing is injectable (clock + sleep) so breaker and backoff behavior is
unit-testable without wall-clock waits.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from ..obs.metrics import MetricsRegistry

#: breaker states, and their gauge encoding
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"
BREAKER_STATES = (CLOSED, OPEN, HALF_OPEN)
_STATE_CODE = {CLOSED: 0.0, OPEN: 1.0, HALF_OPEN: 2.0}

#: degradation-ladder stages (pre-seeded on the fallbacks counter)
FALLBACK_STAGES = (
    "ann_exact",        # ANN search failed -> exact blocked search (bit-identical)
    "breaker_cache",    # breaker open -> stale LRU-cached result
    "breaker_profile",  # breaker open -> price-profile fallback ranking
    "error_cache",      # retries exhausted -> stale LRU-cached result
    "error_profile",    # retries exhausted -> price-profile fallback ranking
)

#: exception types retrying can never fix (caller/programming errors)
NON_TRANSIENT_ERRORS = (
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    AssertionError,
    NotImplementedError,
)


def is_transient(error: BaseException) -> bool:
    """True if ``error`` is worth retrying / degrading around."""
    return not isinstance(error, NON_TRANSIENT_ERRORS)


@dataclass
class ResilienceConfig:
    """Knobs for retries, backoff, the breaker, and degradation.

    Defaults are tuned for a microsecond-scale in-process backend: short
    backoff (milliseconds), a small error window, and a sub-second open
    period.  ``degrade=False`` turns the ladder off — exhausted retries
    then fail with :class:`~repro.serving.errors.BackendError` instead of
    serving a fallback answer.
    """

    retries: int = 2
    backoff_s: float = 0.005
    backoff_multiplier: float = 2.0
    breaker_window: int = 32
    breaker_error_threshold: float = 0.5
    breaker_min_samples: int = 8
    breaker_open_s: float = 0.25
    breaker_half_open_probes: int = 2
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.breaker_window < 1:
            raise ValueError(f"breaker_window must be >= 1, got {self.breaker_window}")
        if not 0.0 < self.breaker_error_threshold <= 1.0:
            raise ValueError(
                "breaker_error_threshold must be in (0, 1], got "
                f"{self.breaker_error_threshold}"
            )
        if self.breaker_min_samples < 1:
            raise ValueError(
                f"breaker_min_samples must be >= 1, got {self.breaker_min_samples}"
            )
        if self.breaker_open_s < 0:
            raise ValueError(f"breaker_open_s must be >= 0, got {self.breaker_open_s}")
        if self.breaker_half_open_probes < 1:
            raise ValueError(
                "breaker_half_open_probes must be >= 1, got "
                f"{self.breaker_half_open_probes}"
            )


class CircuitBreaker:
    """Closed → open (error-rate window) → half-open (probes) → closed.

    Thread-safe; every decision happens under one lock.  ``on_transition``
    (if given) is called with the new state name whenever the state
    changes — while the lock is held, so keep it cheap (the policy uses it
    to set a gauge).
    """

    def __init__(
        self,
        window: int = 32,
        error_threshold: float = 0.5,
        min_samples: int = 8,
        open_s: float = 0.25,
        half_open_probes: int = 2,
        clock: Optional[Callable[[], float]] = None,
        on_transition: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.window = int(window)
        self.error_threshold = float(error_threshold)
        self.min_samples = int(min_samples)
        self.open_s = float(open_s)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock or time.perf_counter
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=self.window)  # 1 = failure
        self._state = CLOSED
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probe_successes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _set_state(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        if state == HALF_OPEN:
            self._probes_issued = 0
            self._probe_successes = 0
        elif state == OPEN:
            self._opened_at = self._clock()
        elif state == CLOSED:
            self._events.clear()
        if self._on_transition is not None:
            self._on_transition(state)

    def allow(self) -> bool:
        """May the next backend call proceed?  (Counts half-open probes.)"""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.open_s:
                    return False
                self._set_state(HALF_OPEN)
            if self._probes_issued < self.half_open_probes:
                self._probes_issued += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._events.append(0)
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._set_state(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._events.append(1)
            if self._state == HALF_OPEN:
                self._set_state(OPEN)
            elif self._state == CLOSED:
                if len(self._events) < self.min_samples:
                    return
                rate = sum(self._events) / len(self._events)
                if rate >= self.error_threshold:
                    self._set_state(OPEN)

    def error_rate(self) -> float:
        with self._lock:
            if not self._events:
                return 0.0
            return sum(self._events) / len(self._events)


class ResiliencePolicy:
    """A configured breaker + backoff schedule, wired to obs metrics.

    Owned by one :class:`~repro.serving.service.RecommenderService`; the
    service consults :meth:`allow` before each batch group, feeds
    :meth:`record_success` / :meth:`record_failure` after, and sleeps
    :meth:`sleep_backoff` between retry attempts.  The breaker state gauge
    and transition counter live in the service's registry so ``/metrics``
    scrapes see them next to the fallback counters.
    """

    def __init__(
        self,
        config: Optional[ResilienceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.config = config or ResilienceConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._sleep = sleep or time.sleep
        self._state_gauge = self.registry.gauge(
            "gateway_breaker_state",
            "Circuit breaker state: 0 closed, 1 open, 2 half-open.",
        )
        self._transitions = self.registry.counter(
            "gateway_breaker_transitions_total",
            "Breaker state transitions, by target state.",
            labels=("to",),
        )
        for state in BREAKER_STATES:
            self._transitions.labels_key((state,), 0)
        self.breaker = CircuitBreaker(
            window=self.config.breaker_window,
            error_threshold=self.config.breaker_error_threshold,
            min_samples=self.config.breaker_min_samples,
            open_s=self.config.breaker_open_s,
            half_open_probes=self.config.breaker_half_open_probes,
            clock=clock,
            on_transition=self._note_transition,
        )
        self._state_gauge.set(_STATE_CODE[CLOSED])

    def _note_transition(self, state: str) -> None:
        self._state_gauge.set(_STATE_CODE[state])
        self._transitions.labels_key((state,), 1)

    # -- breaker delegation --------------------------------------------
    @property
    def state(self) -> str:
        return self.breaker.state

    def allow(self) -> bool:
        return self.breaker.allow()

    def record_success(self) -> None:
        self.breaker.record_success()

    def record_failure(self) -> None:
        self.breaker.record_failure()

    # -- backoff -------------------------------------------------------
    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based): exponential."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.config.backoff_s * self.config.backoff_multiplier ** (attempt - 1)

    def sleep_backoff(self, attempt: int) -> float:
        delay = self.backoff_delay(attempt)
        if delay > 0:
            self._sleep(delay)
        return delay
