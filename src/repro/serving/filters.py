"""Composable candidate filters for retrieval requests.

A :class:`Filter` restricts the item pool a request may recommend from.
Filters compose by intersection (:func:`combine_mask` / the ``&`` operator)
and every filter exposes a stable :meth:`signature` so the service can use
filtered requests as cache keys and batch requests with identical pools
together.

Masks are boolean ``(n_items,)`` arrays evaluated against an
:class:`~repro.serving.index.EmbeddingIndex`; they depend only on the item
catalog, so the engine caches them per signature.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from .index import EmbeddingIndex


class Filter:
    """Base class: a predicate over the item catalog."""

    def mask(self, index: EmbeddingIndex) -> np.ndarray:
        """Boolean ``(n_items,)`` array, True where the item is allowed."""
        raise NotImplementedError

    def signature(self) -> Tuple:
        """Hashable identity used for caching and request batching."""
        raise NotImplementedError

    def __and__(self, other: "Filter") -> "AllOf":
        return AllOf([self, other])


class PriceBandFilter(Filter):
    """Items whose price level lies in ``[min_level, max_level]`` (inclusive).

    With ``use_raw_prices`` the band is interpreted against the catalog's
    continuous prices instead of quantized levels.
    """

    def __init__(
        self,
        min_level: Optional[float] = None,
        max_level: Optional[float] = None,
        use_raw_prices: bool = False,
    ) -> None:
        if min_level is None and max_level is None:
            raise ValueError("price band needs at least one bound")
        self.min_level = min_level
        self.max_level = max_level
        self.use_raw_prices = use_raw_prices

    def mask(self, index: EmbeddingIndex) -> np.ndarray:
        if self.use_raw_prices:
            if index.item_raw_prices is None:
                raise ValueError("index was exported without raw prices")
            values = index.item_raw_prices
        else:
            values = index.item_price_levels
        allowed = np.ones(index.n_items, dtype=bool)
        if self.min_level is not None:
            allowed &= values >= self.min_level
        if self.max_level is not None:
            allowed &= values <= self.max_level
        return allowed

    def signature(self) -> Tuple:
        return ("price_band", self.min_level, self.max_level, self.use_raw_prices)


class CategoryFilter(Filter):
    """Items belonging to any of the given categories."""

    def __init__(self, categories: Iterable[int]) -> None:
        self.categories = tuple(sorted(int(c) for c in categories))
        if not self.categories:
            raise ValueError("category filter needs at least one category")

    def mask(self, index: EmbeddingIndex) -> np.ndarray:
        return np.isin(index.item_categories, self.categories)

    def signature(self) -> Tuple:
        return ("category", self.categories)


class AllowListFilter(Filter):
    """Only the listed item ids are eligible."""

    def __init__(self, items: Sequence[int]) -> None:
        self.items = tuple(sorted(int(i) for i in items))

    def mask(self, index: EmbeddingIndex) -> np.ndarray:
        allowed = np.zeros(index.n_items, dtype=bool)
        if self.items:
            allowed[list(self.items)] = True
        return allowed

    def signature(self) -> Tuple:
        return ("allow", self.items)


class DenyListFilter(Filter):
    """The listed item ids are never recommended (out of stock, banned...)."""

    def __init__(self, items: Sequence[int]) -> None:
        self.items = tuple(sorted(int(i) for i in items))

    def mask(self, index: EmbeddingIndex) -> np.ndarray:
        allowed = np.ones(index.n_items, dtype=bool)
        if self.items:
            allowed[list(self.items)] = False
        return allowed

    def signature(self) -> Tuple:
        return ("deny", self.items)


class AllOf(Filter):
    """Intersection of several filters."""

    def __init__(self, filters: Sequence[Filter]) -> None:
        flattened = []
        for item in filters:
            if isinstance(item, AllOf):
                flattened.extend(item.filters)
            else:
                flattened.append(item)
        self.filters = tuple(flattened)

    def mask(self, index: EmbeddingIndex) -> np.ndarray:
        allowed = np.ones(index.n_items, dtype=bool)
        for item in self.filters:
            allowed &= item.mask(index)
        return allowed

    def signature(self) -> Tuple:
        return ("all_of", tuple(f.signature() for f in self.filters))


def combine_signature(filters: Sequence[Filter]) -> Tuple:
    """Canonical hashable signature for an (ordered) filter set."""
    return tuple(f.signature() for f in filters)


def combine_mask(filters: Sequence[Filter], index: EmbeddingIndex) -> Optional[np.ndarray]:
    """Intersect the filters' masks; ``None`` when unrestricted."""
    if not filters:
        return None
    return AllOf(filters).mask(index)
