"""The always-on concurrent request runtime in front of the service.

:class:`~repro.serving.service.RecommenderService` is a *library*: it
batches whatever one caller pushes through it, and only flushes when a
synchronous caller happens to cross ``max_batch_size``.
:class:`ServingGateway` turns it into a *service* — the piece that absorbs
heavy concurrent traffic:

* **Admission control.**  ``submit()`` is safe from any number of threads;
  the queue depth is strictly bounded (admission is serialized on one
  condition variable, so the bound cannot be raced past).  When the queue
  is full the request is *shed* with a typed :class:`Overloaded` error —
  the caller backs off; the requests already queued keep their latency.

* **Per-tenant rate limits.**  A classic token bucket per tenant
  (``rate_limit`` requests/s sustained, ``rate_burst`` peak), rejecting
  with :class:`RateLimited`.  Tenants are admission-control identities
  only; the service below never sees them.

* **Dual-trigger dynamic batching.**  A batch flushes when it reaches
  ``max_batch_size`` *or* when its oldest request has waited
  ``max_wait_ms`` — whichever comes first.  The size trigger fires inline
  on the submitting thread; the deadline trigger fires on a background
  flusher thread that sleeps exactly until the oldest request's deadline.
  The gateway takes over the service's internal size trigger while
  attached, so every flush happens under a ``gateway.batch`` span with its
  trigger recorded.

* **Response demux.**  Callers hold the same
  :class:`~repro.serving.service.PendingRecommendation` futures the
  service hands out; ``result(timeout=...)`` waits without forcing a
  flush, which is what keeps batches large under concurrent load.

* **Graceful drain.**  ``close()`` stops admission (:class:`GatewayClosed`
  shed), retires the flusher thread, answers everything still queued, and
  detaches from the service.  :meth:`swap_index` cooperates with the
  service's hot-swap: in-flight requests drain against the old index
  under the service's flush lock, so swap-under-load never deadlocks the
  flusher or produces neither-index results.

Everything the gateway decides is observable: ``gateway_requests_total``
(by tenant), ``gateway_shed_total`` (by reason), ``gateway_flushes_total``
(by trigger), the ``gateway_batch_size`` histogram, and the
``gateway_queue_depth`` gauge, plus ``gateway.admit`` / ``gateway.batch``
spans when a tracer is attached.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..faults import FLUSHER_CRASH, FaultPlan
from ..obs.metrics import MetricsRegistry, log_buckets
from ..obs.trace import Tracer, maybe_span
from .errors import (  # noqa: F401 - historical import location, re-exported
    BackendError,
    DeadlineExceeded,
    FlusherCrashed,
    GatewayClosed,
    GatewayError,
    Overloaded,
    RateLimited,
)
from .filters import Filter
from .service import PendingRecommendation, RecommenderService

#: a size trigger that can never fire: the gateway owns batching while attached
_NEVER = sys.maxsize

#: shed reasons (pre-seeded so the series exist on /metrics from scrape one)
SHED_REASONS = ("queue_full", "rate_limited", "closed")

#: flush triggers (pre-seeded likewise)
FLUSH_TRIGGERS = ("size", "deadline", "drain")


class TokenBucket:
    """Token bucket: ``rate`` tokens/s refill, at most ``burst`` stored.

    ``try_acquire`` is lock-free from the caller's perspective — the
    gateway serializes admission anyway — but keeps its own lock so the
    bucket is independently thread-safe.
    """

    def __init__(self, rate: float, burst: float, clock) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate
            )
            self._refilled_at = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


@dataclass
class GatewayConfig:
    """Gateway knobs (none of them can change results, only behavior under load).

    ``max_batch_size=None`` inherits the service's; ``rate_limit=None``
    disables rate limiting; ``rate_burst=None`` defaults to one second of
    sustained rate (minimum 1).  ``deadline_ms`` is the default per-request
    deadline stamped at admission (``None`` = no deadline); ``submit`` can
    override it per request.
    """

    max_queue_depth: int = 1024
    max_wait_ms: float = 2.0
    max_batch_size: Optional[int] = None
    rate_limit: Optional[float] = None
    rate_burst: Optional[float] = None
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.max_wait_ms <= 0:
            raise ValueError(f"max_wait_ms must be > 0, got {self.max_wait_ms}")
        if self.max_batch_size is not None and self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError(f"rate_limit must be > 0, got {self.rate_limit}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")


class ServingGateway:
    """Bounded, rate-limited, dual-trigger front-end over one service.

    The gateway assumes *sole ownership* of its service's batching while
    attached: it sets the service's internal size trigger aside (restored
    at :meth:`close`) so that every flush — size, deadline, or drain —
    goes through :meth:`_flush` and is accounted once.  Synchronous
    helpers on the service (``recommend``, ``recommend_many``,
    ``pending.result()`` with no timeout) still work: they force a flush
    through the service, which is thread-safe; they simply bypass the
    gateway's trigger accounting.
    """

    def __init__(
        self,
        service: RecommenderService,
        config: Optional[GatewayConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.service = service
        self.fault_plan = fault_plan if fault_plan is not None else service.fault_plan
        self.config = config or GatewayConfig()
        self.registry = registry if registry is not None else service.registry
        self.tracer = service.tracer if tracer is None else tracer
        self._clock = service._clock
        self.max_batch_size = (
            self.config.max_batch_size
            if self.config.max_batch_size is not None
            else service.max_batch_size
        )
        # Take over the size trigger (restored by close()).
        self._service_batch_size = service.max_batch_size
        service.max_batch_size = _NEVER

        self._cond = threading.Condition()
        self._closed = False
        self._buckets: Dict[str, TokenBucket] = {}

        self._admitted = self.registry.counter(
            "gateway_requests_total", "Requests admitted past the gateway, by tenant.",
            labels=("tenant",),
        )
        self._admitted.labels_key(("default",), 0)
        self._shed = self.registry.counter(
            "gateway_shed_total", "Requests rejected at admission, by reason.",
            labels=("reason",),
        )
        for reason in SHED_REASONS:
            self._shed.labels_key((reason,), 0)
        self._flushes = self.registry.counter(
            "gateway_flushes_total", "Batch flushes executed, by trigger.",
            labels=("trigger",),
        )
        for trigger in FLUSH_TRIGGERS:
            self._flushes.labels_key((trigger,), 0)
        self._batch_size_hist = self.registry.histogram(
            "gateway_batch_size", "Requests answered per gateway flush.",
            buckets=log_buckets(1.0, 4096.0, per_decade=8),
        )
        self._depth_gauge = self.registry.gauge(
            "gateway_queue_depth", "Requests waiting in the admission queue."
        )
        self._flusher_restarts = self.registry.counter(
            "gateway_flusher_restarts_total",
            "Background flusher threads restarted after an uncaught exception.",
        )

        self._flusher = self._start_flusher()

    def _start_flusher(self) -> threading.Thread:
        flusher = threading.Thread(
            target=self._flusher_main, name="repro-gateway-flusher", daemon=True
        )
        flusher.start()
        return flusher

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        if self.config.rate_limit is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            burst = self.config.rate_burst
            if burst is None:
                burst = max(1.0, self.config.rate_limit)
            bucket = self._buckets[tenant] = TokenBucket(
                self.config.rate_limit, burst, self._clock
            )
        return bucket

    def _shed_request(self, reason: str) -> None:
        self._shed.labels_key((reason,), 1)

    def submit(
        self,
        user: int,
        k: Optional[int] = None,
        exclude_train: bool = True,
        filters: Sequence[Filter] = (),
        price_profile: Optional[np.ndarray] = None,
        tenant: str = "default",
        deadline_ms: Optional[float] = None,
    ) -> PendingRecommendation:
        """Admit one request; returns the service's pending future.

        Raises :class:`GatewayClosed` / :class:`RateLimited` /
        :class:`Overloaded` instead of queuing when admission control says
        no — a shed request costs the caller one exception and the service
        nothing at all.  ``deadline_ms`` (default: the config's) bounds the
        request's queue wait; an expired request fails with
        :class:`DeadlineExceeded` at flush time.
        """
        if deadline_ms is None:
            deadline_ms = self.config.deadline_ms
        with maybe_span(
            self.tracer, "gateway.admit", cat="gateway", attrs={"tenant": tenant}
        ) as admit_span:
            with self._cond:
                if self._closed:
                    self._shed_request("closed")
                    admit_span.set_attr("outcome", "closed")
                    raise GatewayClosed("gateway is draining; no new requests")
                if not self._flusher.is_alive():
                    # Defense in depth: the supervisor should never let the
                    # flusher die, but admission must not depend on that.
                    self._flusher = self._start_flusher()
                bucket = self._bucket(tenant)
                if bucket is not None and not bucket.try_acquire():
                    self._shed_request("rate_limited")
                    admit_span.set_attr("outcome", "rate_limited")
                    raise RateLimited(
                        f"tenant {tenant!r} exceeded {self.config.rate_limit:g} req/s"
                    )
                if self.service.queue_depth >= self.config.max_queue_depth:
                    self._shed_request("queue_full")
                    admit_span.set_attr("outcome", "queue_full")
                    raise Overloaded(
                        f"admission queue at max depth {self.config.max_queue_depth}"
                    )
                pending = self.service.submit(
                    user, k=k, exclude_train=exclude_train, filters=filters,
                    price_profile=price_profile,
                    deadline_s=None if deadline_ms is None else deadline_ms / 1e3,
                )
                self._admitted.labels_key((tenant,), 1)
                admit_span.set_attr("outcome", "admitted")
                queued = not pending.done
                if queued:
                    # Wake the flusher so it can (re)arm the deadline timer.
                    self._cond.notify()
                should_flush = queued and self.service.queue_depth >= self.max_batch_size
            if should_flush:
                self._flush("size")
            return pending

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def _flush(self, trigger: str) -> int:
        with maybe_span(
            self.tracer, "gateway.batch", cat="gateway", attrs={"trigger": trigger}
        ) as span:
            flushed = self.service.flush()
            span.set_attr("n_requests", flushed)
        if flushed:
            self._flushes.labels_key((trigger,), 1)
            self._batch_size_hist.observe(flushed)
        self.sync_gauges()
        return flushed

    def _flusher_main(self) -> None:
        """Thread target: the flusher loop under a supervisor.

        An uncaught exception in the loop used to kill the thread silently —
        the deadline trigger was gone for good, and with no size trigger in
        reach every queued request (and every future one) hung until a
        client timeout.  The supervisor converts that into a loud, bounded
        event: pending requests fail with the typed
        :class:`FlusherCrashed`, ``gateway_flusher_restarts_total`` counts
        the incident, and the loop restarts immediately.
        """
        while True:
            try:
                self._flusher_loop()
                return  # clean exit: the gateway closed
            except Exception as error:  # noqa: BLE001 - supervised restart
                self._flusher_restarts.inc()
                self.service.fail_pending(
                    FlusherCrashed(
                        f"gateway flusher crashed ({error!r}); queued requests "
                        "failed, flusher restarted"
                    )
                )
                with self._cond:
                    if self._closed:
                        return

    def _flusher_loop(self) -> None:
        max_wait = self.config.max_wait_ms / 1e3
        while True:
            with self._cond:
                while not self._closed and self.service.queue_depth == 0:
                    self._cond.wait()
                if self._closed:
                    return
            if self.fault_plan is not None:
                # Injected with requests queued, so the drill proves both
                # halves: fail-pending-loudly and keep-serving-afterwards.
                self.fault_plan.maybe_fail(FLUSHER_CRASH)
            oldest = self.service.oldest_enqueued_at()
            if oldest is None:
                continue  # a racing flush emptied the queue; go back to sleep
            delay = oldest + max_wait - self._clock()
            if delay > 0:
                with self._cond:
                    # Early notifies (new submits, close) just re-evaluate;
                    # the loop converges on the oldest request's deadline.
                    if self._closed:
                        return
                    self._cond.wait(timeout=delay)
                continue
            self._flush("deadline")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def drain(self) -> int:
        """Flush everything queued right now (the gateway stays open)."""
        return self._flush("drain")

    def close(self) -> int:
        """Stop admission, retire the flusher, answer the stragglers.

        Returns how many queued requests the final drain resolved.
        Idempotent; afterwards the service's own size trigger is restored,
        so it behaves exactly as it did before the gateway attached.
        """
        with self._cond:
            if self._closed:
                return 0
            self._closed = True
            self._cond.notify_all()
        self._flusher.join(timeout=30)
        drained = self._flush("drain")
        self.service.max_batch_size = self._service_batch_size
        return drained

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Index lifecycle + observability
    # ------------------------------------------------------------------
    def swap_index(self, index, ann=None) -> int:
        """Hot-swap the index while the gateway keeps serving.

        Delegates to :meth:`RecommenderService.swap_index`, which drains
        in-flight requests against the old index under the service's flush
        lock; requests admitted during the swap are answered wholly by the
        new index.  The flusher thread needs no coordination — its flushes
        serialize on the same lock.
        """
        evicted = self.service.swap_index(index, ann=ann)
        self.sync_gauges()
        return evicted

    @property
    def queue_depth(self) -> int:
        return self.service.queue_depth

    @property
    def resilience(self):
        """The service's resilience policy (None when not configured)."""
        return self.service.resilience

    @property
    def breaker_state(self) -> Optional[str]:
        """Circuit breaker state, or None without a resilience policy."""
        policy = self.service.resilience
        return None if policy is None else policy.state

    def flusher_restarts(self) -> int:
        """How many times the flusher supervisor restarted a crashed loop."""
        return int(self._flusher_restarts.value())

    def sync_gauges(self) -> None:
        """Refresh point-in-time gauges (also the /metrics per-scrape hook)."""
        self._depth_gauge.set(self.service.queue_depth)
        self.service._sync_gauges()

    def shed_count(self, reason: Optional[str] = None) -> int:
        """Requests shed so far (one reason, or all of them)."""
        if reason is not None:
            return int(self._shed.value(reason=reason))
        return sum(int(self._shed.value(reason=r)) for r in SHED_REASONS)

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of the gateway's own counters (for reports/CLI)."""
        out: Dict[str, float] = {
            "queue_depth": float(self.service.queue_depth),
            "max_queue_depth": float(self.config.max_queue_depth),
            "admitted": float(
                sum(series.value for _, series in self._admitted.items())
            ),
        }
        for reason in SHED_REASONS:
            out[f"shed_{reason}"] = float(self._shed.value(reason=reason))
        for trigger in FLUSH_TRIGGERS:
            out[f"flushes_{trigger}"] = float(self._flushes.value(trigger=trigger))
        out["flusher_restarts"] = float(self.flusher_restarts())
        return out
