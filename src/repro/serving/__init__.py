"""Serving: offline embedding export + online batched top-K recommendation.

The offline/online split mirrors how graph recommenders deploy in practice:
graph propagation — the only expensive part of PUP-style inference — runs
once at export time (:func:`export_index`), producing a frozen
:class:`EmbeddingIndex`; the online path (:class:`RecommenderService` over
a :class:`RetrievalEngine`) answers queries with dense matmuls, candidate
filters, train-item exclusion, micro-batching, and an LRU result cache.

Quickstart::

    from repro.serving import export_index, RecommenderService, PriceBandFilter

    index = export_index(trained_model, dataset)
    index.save("artifacts/pup_index")           # or EmbeddingIndex.load(...)
    service = RecommenderService(index, default_k=10)

    service.recommend(user=42).items                        # warm user
    service.recommend(user=10**9).items                     # cold -> fallback
    service.recommend(7, filters=[PriceBandFilter(0, 2)])   # budget items only
"""

from .index import EmbeddingIndex, INDEX_KIND
from .export import ExportError, export_index, export_index_from_checkpoint
from .ann import IVFIndex, QuantizedIndex, build_ivf
from .filters import (
    AllOf,
    AllowListFilter,
    CategoryFilter,
    DenyListFilter,
    Filter,
    PriceBandFilter,
    combine_mask,
    combine_signature,
)
from .fallback import PriceProfileFallback
from .errors import (
    BackendError,
    DeadlineExceeded,
    FlusherCrashed,
    GatewayClosed,
    GatewayError,
    Overloaded,
    RateLimited,
)
from .resilience import (
    FALLBACK_STAGES,
    CircuitBreaker,
    ResilienceConfig,
    ResiliencePolicy,
    is_transient,
)
from .retrieval import RetrievalEngine, RetrievalResult
from .service import (
    COLD,
    WARM,
    DegradedResponse,
    PendingRecommendation,
    Recommendation,
    RecommenderService,
    Request,
    ResultTimeout,
)
from .gateway import (
    GatewayConfig,
    ServingGateway,
    TokenBucket,
)
from .stats import LatencyRecorder, ServingStats

__all__ = [
    "EmbeddingIndex",
    "INDEX_KIND",
    "IVFIndex",
    "QuantizedIndex",
    "build_ivf",
    "ExportError",
    "export_index",
    "export_index_from_checkpoint",
    "Filter",
    "PriceBandFilter",
    "CategoryFilter",
    "AllowListFilter",
    "DenyListFilter",
    "AllOf",
    "combine_mask",
    "combine_signature",
    "PriceProfileFallback",
    "RetrievalEngine",
    "RetrievalResult",
    "RecommenderService",
    "Recommendation",
    "DegradedResponse",
    "PendingRecommendation",
    "Request",
    "ResultTimeout",
    "ServingGateway",
    "GatewayConfig",
    "GatewayError",
    "Overloaded",
    "RateLimited",
    "GatewayClosed",
    "DeadlineExceeded",
    "FlusherCrashed",
    "BackendError",
    "TokenBucket",
    "CircuitBreaker",
    "ResilienceConfig",
    "ResiliencePolicy",
    "FALLBACK_STAGES",
    "is_transient",
    "WARM",
    "COLD",
    "LatencyRecorder",
    "ServingStats",
]
