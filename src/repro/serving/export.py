"""Offline export: trained model (or checkpoint) → :class:`EmbeddingIndex`.

This is the one-time expensive step of the serving pipeline: graph
propagation runs once here, after which the index answers queries with
dense matmuls only.  Works for every model whose score factorizes into
:class:`~repro.core.base.ScoreBranch` terms (PUP and all its variants,
BPR-MF, LightGCN, NGCF, GC-MC, FM, PaDQ, ItemPop); models with
non-factorizable scorers (DeepFM's MLP tower) raise
:class:`ExportError` with an explanation.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.base import Recommender
from ..data.dataset import Dataset
from ..train.persistence import load_checkpoint
from .index import EmbeddingIndex


class ExportError(RuntimeError):
    """The model cannot be frozen into an embedding index."""


def export_index(
    model: Recommender,
    dataset: Dataset,
    extra: Optional[Dict] = None,
) -> EmbeddingIndex:
    """Freeze ``model`` into a serving index over ``dataset``'s catalog."""
    was_training = model.training
    model.eval()
    try:
        # frozen_copy: exported branches may alias live weights (models like
        # BPR-MF hand out their embedding tables); the frozen index must not.
        branches = [branch.frozen_copy() for branch in model.export_embeddings()]
    except NotImplementedError as error:
        raise ExportError(str(error)) from error
    finally:
        if was_training:
            model.train()

    if branches[0].user.shape[0] != dataset.n_users or branches[0].item.shape[0] != dataset.n_items:
        raise ExportError(
            f"model factors cover {branches[0].user.shape[0]} users / "
            f"{branches[0].item.shape[0]} items but dataset has "
            f"{dataset.n_users}/{dataset.n_items}"
        )

    indptr, indices = dataset.train_exclusion_csr()
    return EmbeddingIndex(
        branches=branches,
        item_categories=dataset.item_categories,
        item_price_levels=dataset.item_price_levels,
        n_price_levels=dataset.n_price_levels,
        n_categories=dataset.n_categories,
        exclude_indptr=indptr,
        exclude_indices=indices,
        item_popularity=dataset.item_popularity(),
        item_raw_prices=dataset.catalog.raw_prices,
        model_name=model.name,
        extra=extra,
    )


def export_index_from_checkpoint(
    checkpoint_path: str,
    model: Recommender,
    dataset: Dataset,
    strict: bool = True,
    extra: Optional[Dict] = None,
) -> EmbeddingIndex:
    """Load a ``.npz`` checkpoint into ``model``, then export it.

    ``model`` must be constructed with the architecture the checkpoint was
    saved from (checkpoints store weights, not hyperparameters).  The
    checkpoint's metadata is carried into the index's ``extra`` under
    ``"checkpoint"``.
    """
    metadata = load_checkpoint(model, checkpoint_path, strict=strict)
    merged = dict(extra or {})
    merged.setdefault("checkpoint", {k: v for k, v in metadata.items() if k != "parameter_names"})
    return export_index(model, dataset, extra=merged)
