"""Typed error taxonomy for the serving stack.

Every way a request can fail to produce a normal answer has a named class
here, so callers (and the loadgen's outcome accounting) can distinguish
*shed* (admission said no), *failed* (the backend gave up), and
*infrastructure* (the gateway itself broke) without string-matching.

The admission errors used to live in ``serving/gateway.py``; they moved
here so the service layer can raise gateway-visible errors (deadlines,
backend failures) without importing the gateway — ``gateway.py`` re-exports
every name, so existing ``from repro.serving.gateway import Overloaded``
imports keep working.
"""

from __future__ import annotations


class GatewayError(RuntimeError):
    """Base class for gateway admission rejections and serving failures."""


class Overloaded(GatewayError):
    """The admission queue is at ``max_queue_depth``: request shed.

    Load shedding, not failure — the requests already admitted keep their
    latency budget; this caller should back off and retry.
    """


class RateLimited(GatewayError):
    """The tenant's token bucket is empty: request rejected at admission."""


class GatewayClosed(GatewayError):
    """Submitted after :meth:`ServingGateway.close` began."""


class DeadlineExceeded(GatewayError):
    """The request's deadline passed before its batch ran.

    Raised at flush time, not admission time: a request that waited out its
    deadline in the queue is failed instead of being scored — serving a
    result nobody is waiting for only steals compute from live requests.
    """


class FlusherCrashed(GatewayError):
    """The gateway's background flusher died while this request was queued.

    The flusher supervisor fails every pending request with this error and
    restarts the flusher — the queue never silently hangs.  The caller may
    simply retry; admission stays open throughout.
    """


class BackendError(GatewayError):
    """The backend (scorer/engine) failed after retries were exhausted.

    Only raised when a resilience policy is attached; without one the raw
    backend exception propagates unchanged (the historical contract).  The
    original error is preserved as ``__cause__``.
    """


# Related error types that live with their owning layers (the serving
# package must stay importable without dragging those layers' errors here):
#   repro.runtime.pool.WorkerCrashed   — process worker died, retries exhausted
#   repro.train.persistence.ArchiveCorrupted — archive checksum mismatch on load
