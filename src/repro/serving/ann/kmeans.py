"""Pure-NumPy k-means, the coarse quantizer behind :class:`IVFIndex`.

Lloyd's algorithm with k-means++ seeding, run entirely in float64 for
stable centroid updates regardless of the index precision.  Everything is
deterministic given ``seed``: initialization draws from one
``default_rng`` stream, assignment ties break toward the lowest cluster
id (``argmin``), and empty clusters are reseeded to the point currently
worst-served by its centroid — so rebuilding an IVF index from the same
embeddings always yields the same partition.

This is an offline, build-time kernel: clustering a few hundred thousand
item vectors takes seconds, and the online path only ever multiplies
queries against the resulting ``(n_clusters, dim)`` centroid matrix.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """``(n_points, n_centroids)`` squared euclidean distances.

    The ``|x|^2 - 2 x.c + |c|^2`` expansion turns the distance table into
    one BLAS matmul; tiny negative values from cancellation are clipped so
    downstream ``sqrt``/comparisons never see ``-0.0000...1``.
    """
    cross = points @ centroids.T
    sq = (
        np.einsum("ij,ij->i", points, points)[:, None]
        - 2.0 * cross
        + np.einsum("ij,ij->i", centroids, centroids)[None, :]
    )
    return np.maximum(sq, 0.0)


def _kmeanspp_init(points: np.ndarray, n_clusters: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = points.shape[0]
    centroids = np.empty((n_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest = _squared_distances(points, centroids[:1])[:, 0]
    for i in range(1, n_clusters):
        total = closest.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; any choice works.
            pick = int(rng.integers(n))
        else:
            pick = int(rng.choice(n, p=closest / total))
        centroids[i] = points[pick]
        np.minimum(closest, _squared_distances(points, centroids[i : i + 1])[:, 0], out=closest)
    return centroids


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    seed: int = 0,
    iters: int = 25,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster ``points`` into ``n_clusters``; returns ``(centroids, labels)``.

    ``centroids`` is ``(n_clusters, dim)`` float64, ``labels`` is
    ``(n_points,)`` int64.  ``n_clusters`` is clipped to the number of
    points.  Iteration stops early once an assignment pass changes nothing.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if n < 1:
        raise ValueError("need at least one point")
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    n_clusters = min(int(n_clusters), n)
    rng = np.random.default_rng(seed)

    centroids = _kmeanspp_init(points, n_clusters, rng)
    labels = np.full(n, -1, dtype=np.int64)
    for _ in range(max(1, int(iters))):
        distances = _squared_distances(points, centroids)
        new_labels = distances.argmin(axis=1).astype(np.int64)

        # Reseed empty clusters to the points their current centroids serve
        # worst — deterministic, and it keeps every list non-degenerate so
        # `nprobe` always buys real candidates.  A point only moves if its
        # current cluster keeps at least one member, so reseeding can never
        # create a fresh empty cluster (and the 0/0 NaN centroid it would
        # produce); since empties exist only when some cluster has >= 2
        # points, a donor always exists.
        counts = np.bincount(new_labels, minlength=n_clusters)
        empty = np.flatnonzero(counts == 0)
        if len(empty):
            assigned = distances[np.arange(n), new_labels]
            worst = np.argsort(-assigned, kind="stable")
            pointer = 0
            for cluster in empty:
                while pointer < n:
                    point = worst[pointer]
                    pointer += 1
                    donor = new_labels[point]
                    if counts[donor] > 1:
                        counts[donor] -= 1
                        counts[cluster] += 1
                        new_labels[point] = cluster
                        break

        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        sums = np.zeros((n_clusters, points.shape[1]), dtype=np.float64)
        np.add.at(sums, labels, points)
        centroids = sums / counts[:, None]
    return centroids, labels
