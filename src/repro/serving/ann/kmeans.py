"""Pure-NumPy k-means, the coarse quantizer behind :class:`IVFIndex`.

Lloyd's algorithm with k-means++ seeding, run entirely in float64 for
stable centroid updates regardless of the index precision.  Everything is
deterministic given ``seed``: initialization draws from one
``default_rng`` stream, assignment ties break toward the lowest cluster
id (``argmin``), and empty clusters are reseeded to the point currently
worst-served by its centroid — so rebuilding an IVF index from the same
embeddings always yields the same partition.

This is an offline, build-time kernel: clustering a few hundred thousand
item vectors takes seconds, and the online path only ever multiplies
queries against the resulting ``(n_clusters, dim)`` centroid matrix.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: cap on the (rows x centroids) distance-table size one assignment chunk
#: may allocate (float64 entries); above it the table is computed in row
#: chunks — bit-identical per row, bounded peak memory for 1M+ catalogs
_ASSIGN_CHUNK_ENTRIES = 16_000_000


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """``(n_points, n_centroids)`` squared euclidean distances.

    The ``|x|^2 - 2 x.c + |c|^2`` expansion turns the distance table into
    one BLAS matmul; tiny negative values from cancellation are clipped so
    downstream ``sqrt``/comparisons never see ``-0.0000...1``.
    """
    cross = points @ centroids.T
    sq = (
        np.einsum("ij,ij->i", points, points)[:, None]
        - 2.0 * cross
        + np.einsum("ij,ij->i", centroids, centroids)[None, :]
    )
    return np.maximum(sq, 0.0)


def _kmeanspp_init(points: np.ndarray, n_clusters: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling.

    One running min-distance array is maintained across seeds: each new
    centroid contributes a single ``points @ c`` pass folded in with
    ``np.minimum``, and the points' self-norms are computed once up front
    instead of once per seed — the per-seed cost is one matmul, not a full
    distance-table rebuild against every chosen centroid.  The arithmetic
    (matmul shape included) matches :func:`_squared_distances` exactly, so
    seeding is bit-compatible with the historical per-seed recomputation.
    """
    n = points.shape[0]
    centroids = np.empty((n_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    point_norms = np.einsum("ij,ij->i", points, points)
    closest = _seed_distances(points, point_norms, centroids[0:1])
    for i in range(1, n_clusters):
        total = closest.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; any choice works.
            pick = int(rng.integers(n))
        else:
            pick = int(rng.choice(n, p=closest / total))
        centroids[i] = points[pick]
        np.minimum(closest, _seed_distances(points, point_norms, centroids[i : i + 1]), out=closest)
    return centroids


def _seed_distances(
    points: np.ndarray, point_norms: np.ndarray, centroid: np.ndarray
) -> np.ndarray:
    """Squared distances to one ``(1, dim)`` centroid, reusing point norms.

    Keeps the ``(n, 1)`` matmul shape and the ``|x|^2 - 2 x.c + |c|^2``
    evaluation order of :func:`_squared_distances` so results stay
    bit-identical to the full-table path.
    """
    cross = (points @ centroid.T)[:, 0]
    sq = point_norms - 2.0 * cross + np.einsum("ij,ij->i", centroid, centroid)[0]
    return np.maximum(sq, 0.0)


def assign_labels(
    points: np.ndarray,
    centroids: np.ndarray,
    point_norms: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment: ``(labels, assigned_sq_distance)``.

    Row-chunked when the full ``(n_points, n_centroids)`` table would
    exceed the chunk budget — each row's distances are the same expression
    either way, so labels and distances are bit-identical to the one-shot
    table.  Ties break toward the lowest cluster id (``argmin``).
    """
    points = np.asarray(points, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    n = points.shape[0]
    n_clusters = centroids.shape[0]
    labels = np.empty(n, dtype=np.int64)
    assigned = np.empty(n, dtype=np.float64)
    chunk = max(1, _ASSIGN_CHUNK_ENTRIES // max(n_clusters, 1))
    if point_norms is None:
        point_norms = np.einsum("ij,ij->i", points, points)
    centroid_norms = np.einsum("ij,ij->i", centroids, centroids)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        cross = points[start:stop] @ centroids.T
        sq = np.maximum(
            point_norms[start:stop, None] - 2.0 * cross + centroid_norms[None, :], 0.0
        )
        rows = sq.argmin(axis=1)
        labels[start:stop] = rows
        assigned[start:stop] = sq[np.arange(stop - start), rows]
    return labels, assigned


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    seed: int = 0,
    iters: int = 25,
    tol: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster ``points`` into ``n_clusters``; returns ``(centroids, labels)``.

    ``centroids`` is ``(n_clusters, dim)`` float64, ``labels`` is
    ``(n_points,)`` int64.  ``n_clusters`` is clipped to the number of
    points.  Iteration stops early once an assignment pass changes nothing,
    or — when ``tol > 0`` — once the mean squared centroid shift drops to
    ``tol`` times the mean point squared norm (a scale-free convergence
    check; PQ codebook training uses it to cut the long converged tail on
    large catalogs).  ``tol=0`` keeps the historical exact behaviour.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if n < 1:
        raise ValueError("need at least one point")
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    n_clusters = min(int(n_clusters), n)
    rng = np.random.default_rng(seed)

    centroids = _kmeanspp_init(points, n_clusters, rng)
    point_norms = np.einsum("ij,ij->i", points, points)
    shift_floor = float(tol) * float(point_norms.mean()) if tol > 0 else 0.0
    labels = np.full(n, -1, dtype=np.int64)
    for _ in range(max(1, int(iters))):
        new_labels, assigned = assign_labels(points, centroids, point_norms)

        # Reseed empty clusters to the points their current centroids serve
        # worst — deterministic, and it keeps every list non-degenerate so
        # `nprobe` always buys real candidates.  A point only moves if its
        # current cluster keeps at least one member, so reseeding can never
        # create a fresh empty cluster (and the 0/0 NaN centroid it would
        # produce); since empties exist only when some cluster has >= 2
        # points, a donor always exists.
        counts = np.bincount(new_labels, minlength=n_clusters)
        empty = np.flatnonzero(counts == 0)
        if len(empty):
            worst = np.argsort(-assigned, kind="stable")
            pointer = 0
            for cluster in empty:
                while pointer < n:
                    point = worst[pointer]
                    pointer += 1
                    donor = new_labels[point]
                    if counts[donor] > 1:
                        counts[donor] -= 1
                        counts[cluster] += 1
                        new_labels[point] = cluster
                        break

        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        sums = np.zeros((n_clusters, points.shape[1]), dtype=np.float64)
        np.add.at(sums, labels, points)
        new_centroids = sums / counts[:, None]
        if shift_floor > 0.0:
            shift = float(np.mean(np.sum((new_centroids - centroids) ** 2, axis=1)))
            centroids = new_centroids
            if shift <= shift_floor:
                break
        else:
            centroids = new_centroids
    return centroids, labels
