"""IVF two-stage approximate retrieval over a frozen factorization.

The catalog is partitioned by a pure-NumPy k-means (:mod:`.kmeans`) over
the items' *combined* score vectors — the per-branch factors concatenated,
plus one column carrying the weighted item constants — so that a query
vector built the same way satisfies ``q . x == exact score - user-constant
terms``.  User-constant terms are per-user offsets that cannot change a
ranking, which makes the coarse stage a faithful inner-product geometry
for PUP's multi-branch layout, not a heuristic on one branch.

Search is two-stage:

1. **coarse** — one ``(batch, D) @ (D, n_lists)`` matmul against the
   centroids; each user probes its top-``nprobe`` lists;
2. **fine** — the probed lists' items are scored *exactly* in the index
   dtype.  Item factors are stored contiguously per list (a permuted copy
   of each branch's factor matrix), so the fine stage is a
   :func:`~repro.core.base.score_branches` call per (list, probing-users)
   group — THE scoring kernel, no gathers on the request path — and the
   per-user candidate pools merge through
   :func:`~repro.eval.topk.topk_pairs_rows`, the same deterministic
   (score desc, item id asc) order every exact path uses.

Because stage 2 is exact and the lists partition the catalog, probing all
lists (``nprobe >= n_lists``) makes the candidate pool the full catalog
and the result bit-identical to exact search — the property the test
suite pins (the usual 1-ULP caveat for degenerate matmul shapes noted in
:mod:`repro.serving.retrieval` applies here too).  Smaller ``nprobe``
trades recall for time along a measured curve (``BENCH_ann.json``).

An optional :class:`~.quantize.QuantizedIndex` companion supplies an
``int8`` fine-stage scorer (integer-accumulated, approximate) next to the
default exact one, and an optional :class:`~.pq.PQIndex` companion
supplies a ``pq`` scorer: each probed list is scored by ADC table
lookups (16-64x smaller item payload) and keeps its ADC top
``rerank_factor * k``, and *every* survivor is then re-scored exactly
before the final top-``k`` — ADC chooses candidates per list, exact
scoring orders them, so recall depends only on an item's ADC rank inside
its own (bounded-width) list and keeps holding as catalogs grow.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...core.base import ScoreBranch, branches_dtype, score_branches
from ...data.dataset import expand_csr_rows
from ...eval.topk import NEG_INF, partition_topk_rows, topk_pairs_rows
from ...obs.trace import maybe_span
from ...train import persistence
from .kmeans import assign_labels, kmeans
from .pq import (
    PQBranch,
    PQIndex,
    build_pq_branch,
    score_candidates_exact,
    score_pq_block,
)
from .quantize import QuantizedBranch, QuantizedIndex, score_quantized_block

IVF_KIND = "ivf_index"

#: bump when the array layout changes incompatibly; v2 adds the optional
#: PQ companion and the optional permuted item payload (tiered layouts) —
#: v1 archives still load
FORMAT_VERSION = 3

SCORERS = ("exact", "int8", "pq")


def default_n_lists(n_items: int) -> int:
    """Default list count: ~sqrt(n)/2 — fewer, larger lists than the
    classic 4-sqrt(n) heuristic, because on this numpy substrate each
    probed list costs a Python-level dispatch and the fine stage is BLAS
    (dense-friendly), so compute density per list wins over finer pruning
    (measured in BENCH_ann.json)."""
    return max(1, min(int(n_items), int(round(math.sqrt(max(n_items, 1)) / 2.0))))


def default_nprobe(n_lists: int) -> int:
    """Default operating point: probe 1/8 of the lists (min 1)."""
    return max(1, int(math.ceil(n_lists / 8)))


def _local_topk_set(scores: np.ndarray, k: int) -> np.ndarray:
    """The row-wise top-``k`` *set* under (score desc, index asc) — unordered.

    The fine stage only needs set membership per probed list (the global
    merge re-sorts everything), so this skips the per-row ordering that
    :func:`~repro.eval.topk.topk_indices_rows` pays for.  Ties at the
    k-th score are still repaired to the lowest indices — through the
    shared :func:`~repro.eval.topk.partition_topk_rows` diagnostics — which
    is what keeps full-probe search bit-identical to exact selection.
    """
    part, part_scores, ambiguous = partition_topk_rows(scores, k)
    for row in ambiguous:
        threshold = part_scores[row].min()
        above = np.flatnonzero(scores[row] > threshold)
        tied = np.flatnonzero(scores[row] == threshold)
        part[row] = np.concatenate([above, tied[: k - len(above)]])
    return part


def combined_item_vectors(branches: Sequence[ScoreBranch]) -> np.ndarray:
    """``(n_items, D)`` vectors whose inner product with a combined query
    reproduces the user-dependent part of the exact score (float64)."""
    parts = [np.asarray(b.item, dtype=np.float64) for b in branches]
    const: Optional[np.ndarray] = None
    for branch in branches:
        if branch.item_const is not None:
            term = branch.weight * np.asarray(branch.item_const, dtype=np.float64)
            const = term if const is None else const + term
    if const is not None:
        parts.append(const[:, None])
    return np.hstack(parts)


class IVFIndex:
    """Cluster-pruned two-stage search over an :class:`EmbeddingIndex`.

    Wraps the source index (user factors and catalog metadata are shared);
    owns the coarse centroids, the list layout, and contiguous permuted
    copies of the item-side arrays.  ``nprobe`` is the default operating
    point; every :meth:`search` can override it per call.
    """

    def __init__(
        self,
        index,
        centroids: np.ndarray,
        list_indptr: np.ndarray,
        list_items: np.ndarray,
        nprobe: int,
        quantized: Optional[QuantizedIndex] = None,
        seed: int = 0,
        pq: Optional[PQIndex] = None,
        default_scorer: Optional[str] = None,
        rerank_factor: int = 8,
        perm_items: Optional[Sequence[Tuple[np.ndarray, Optional[np.ndarray]]]] = None,
        pq_list_means: Optional[Sequence[np.ndarray]] = None,
    ) -> None:
        self.index = index
        self.n_users = index.n_users
        self.n_items = index.n_items
        self.dtype = branches_dtype(index.branches)
        self.seed = int(seed)

        self.centroids = np.ascontiguousarray(centroids, dtype=np.float64)
        self.list_indptr = np.asarray(list_indptr, dtype=np.int64)
        self.n_lists = len(self.list_indptr) - 1
        if self.centroids.shape[0] != self.n_lists:
            raise ValueError("centroid count disagrees with the list layout")
        #: permutation: global item id of each slot in list-contiguous order
        self.list_items = np.asarray(list_items, dtype=np.int64)
        if self.list_items.shape != (self.n_items,):
            raise ValueError("list_items must be a permutation of the catalog")
        self.nprobe = int(nprobe)
        if not 1 <= self.nprobe <= self.n_lists:
            raise ValueError(f"nprobe must be in [1, {self.n_lists}], got {nprobe}")

        # Inverse layout maps: for any global item id, which list holds it
        # and at which slot of the permuted storage — O(1) lookups that let
        # exclusion masks scatter straight into the fine stage's scored
        # blocks instead of key-searching every candidate.
        self._item_position = np.empty(self.n_items, dtype=np.int64)
        self._item_position[self.list_items] = np.arange(self.n_items)
        self._item_list = np.empty(self.n_items, dtype=np.int64)
        self._item_list[self.list_items] = np.repeat(
            np.arange(self.n_lists), np.diff(self.list_indptr)
        )

        # Contiguous per-list item-side storage: the fine stage slices these
        # instead of gathering scattered rows per request.  A caller that
        # already has the permuted arrays — a tiered loader holding mmap
        # views of an ``include_items`` archive — passes them as
        # ``perm_items`` so no gathered RAM copy is ever made.
        perm = self.list_items
        if perm_items is not None:
            if len(perm_items) != len(index.branches):
                raise ValueError("one permuted item array pair per branch")
            self._perm_branches = [
                ScoreBranch(
                    user=branch.user,
                    item=item,
                    item_const=item_const,
                    user_const=branch.user_const,
                    weight=branch.weight,
                )
                for branch, (item, item_const) in zip(index.branches, perm_items)
            ]
        else:
            self._perm_branches = [
                ScoreBranch(
                    user=branch.user,
                    item=branch.item[perm],
                    item_const=None if branch.item_const is None else branch.item_const[perm],
                    user_const=branch.user_const,
                    weight=branch.weight,
                )
                for branch in index.branches
            ]
        self.quantized = quantized
        if quantized is not None:
            if quantized.n_items != self.n_items:
                raise ValueError("quantized companion was built for a different catalog")
            self._perm_codes = [qb.q_item[perm] for qb in quantized.quantized]
        else:
            self._perm_codes = None
        self.pq = pq
        if pq is not None:
            if pq.n_items != self.n_items:
                raise ValueError("PQ companion was built for a different catalog")
            self._perm_pq_codes = [pb.codes[perm] for pb in pq.pq]
        else:
            self._perm_pq_codes = None
        # Residual-PQ anchor: per branch, each list's mean factor row.  The
        # codes then encode item − mean(list) — within-list differences,
        # which is where ADC precision matters — and the fine stage adds
        # u·mean(list) back per probed list (see score_pq_block).
        self._pq_list_means: Optional[List[np.ndarray]] = None
        if pq_list_means is not None:
            if pq is None:
                raise ValueError("pq_list_means without a PQ companion")
            if len(pq_list_means) != len(index.branches):
                raise ValueError("one list-mean matrix per branch")
            self._pq_list_means = []
            for branch, m in zip(index.branches, pq_list_means):
                m = np.ascontiguousarray(m, dtype=np.float64)
                if m.shape != (self.n_lists, branch.item.shape[1]):
                    raise ValueError(
                        f"list means must be ({self.n_lists}, "
                        f"{branch.item.shape[1]}), got {m.shape}"
                    )
                self._pq_list_means.append(m)
        self.rerank_factor = max(1, int(rerank_factor))
        if default_scorer is None:
            # A PQ companion exists to be *used*: it becomes the default
            # operating point, with exact re-rank keeping recall honest.
            default_scorer = "pq" if pq is not None else "exact"
        if default_scorer not in self.scorers:
            raise ValueError(
                f"default scorer {default_scorer!r} is not available "
                f"(have {self.scorers})"
            )
        self.default_scorer = default_scorer

    # ------------------------------------------------------------------
    @property
    def scorers(self) -> Tuple[str, ...]:
        """Fine-stage scorers this index supports."""
        available = ["exact"]
        if self.quantized is not None:
            available.append("int8")
        if self.pq is not None:
            available.append("pq")
        return tuple(available)

    @property
    def kind(self) -> str:
        """Index-kind label for memory reports and gauges."""
        return "ivf-pq" if self.pq is not None else "ivf"

    def list_sizes(self) -> np.ndarray:
        return np.diff(self.list_indptr)

    def memory_bytes(self) -> int:
        """Footprint of the IVF-owned arrays (permuted factors + centroids)."""
        total = self.centroids.nbytes + self.list_indptr.nbytes + self.list_items.nbytes
        for branch in self._perm_branches:
            total += branch.item.nbytes
            if branch.item_const is not None:
                total += branch.item_const.nbytes
        if self._perm_codes is not None:
            total += sum(codes.nbytes for codes in self._perm_codes)
        if self.pq is not None:
            total += sum(codes.nbytes for codes in self._perm_pq_codes)
            total += sum(pb.table_bytes() for pb in self.pq.pq)
            if self._pq_list_means is not None:
                total += sum(m.nbytes for m in self._pq_list_means)
        return total

    @property
    def bytes_total(self) -> int:
        """Everything this index owns (alias of :meth:`memory_bytes`)."""
        return int(self.memory_bytes())

    @property
    def bytes_per_item(self) -> float:
        """Item-side bytes per catalog item for the *default* fine scorer
        (f32/f64 factors for ``exact``, int8 codes for ``int8``, uint8 PQ
        codes for ``pq``) — the number the compression ladder compares."""
        if self.default_scorer == "pq":
            payload = sum(codes.nbytes for codes in self._perm_pq_codes)
        elif self.default_scorer == "int8":
            payload = sum(codes.nbytes for codes in self._perm_codes)
        else:
            payload = sum(b.item.nbytes for b in self._perm_branches)
        return payload / max(1, self.n_items)

    def memory_report(self) -> dict:
        total = self.bytes_total
        return {
            "kind": self.kind,
            "bytes_total": int(total),
            "bytes_per_item": float(self.bytes_per_item),
            "tiers": {"hot": int(total), "cold": 0},
        }

    # ------------------------------------------------------------------
    def queries(self, users: np.ndarray) -> np.ndarray:
        """Combined coarse-stage query vectors (float64, one row per user)."""
        users = np.asarray(users, dtype=np.int64)
        parts = [
            branch.weight * np.asarray(branch.user[users], dtype=np.float64)
            for branch in self.index.branches
        ]
        if self.centroids.shape[1] > sum(p.shape[1] for p in parts):
            parts.append(np.ones((len(users), 1)))
        return np.hstack(parts)

    def probe(self, users: np.ndarray, nprobe: Optional[int] = None) -> np.ndarray:
        """The ``(len(users), nprobe)`` list ids each user would search."""
        nprobe = self._resolve_nprobe(nprobe)
        coarse = self.queries(users) @ self.centroids.T
        if nprobe >= self.n_lists:
            return np.tile(np.arange(self.n_lists), (coarse.shape[0], 1))
        return np.argpartition(-coarse, nprobe - 1, axis=1)[:, :nprobe]

    def _resolve_nprobe(self, nprobe: Optional[int]) -> int:
        nprobe = self.nprobe if nprobe is None else int(nprobe)
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        return min(nprobe, self.n_lists)

    # ------------------------------------------------------------------
    def search(
        self,
        users: np.ndarray,
        k: int,
        nprobe: Optional[int] = None,
        scorer: Optional[str] = None,
        exclude_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        candidate_mask: Optional[np.ndarray] = None,
        tracer=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Two-stage top-``k`` for a batch of users.

        ``scorer`` defaults to the index's :attr:`default_scorer` —
        ``exact`` unless a PQ companion is attached.  ``exclude_csr`` is
        the per-user train-positive mask as ``(indptr, indices)``;
        ``candidate_mask`` a boolean ``(n_items,)`` filter mask.  Both
        apply at the fine stage: probed candidates that are excluded or
        filtered are pushed to ``-inf`` *after* scoring, so masking never
        changes which lists are probed (a filtered request probes the same
        geometry as an unfiltered one), and — for the ``pq`` scorer —
        *before* candidate selection, so the exact re-rank can never
        resurrect a masked item.

        Returns dense ``(len(users), k)`` ``(ids, scores)`` in the index
        dtype; slots past a user's surviving candidate pool carry the
        ``-1`` / ``-inf`` sentinel (same contract as the batch runtime).
        For the ``pq`` scorer the returned scores are exact (re-ranked).
        """
        scorer = self.default_scorer if scorer is None else scorer
        if scorer not in SCORERS:
            raise ValueError(f"scorer must be one of {SCORERS}, got {scorer!r}")
        if scorer == "int8" and self.quantized is None:
            raise ValueError(
                "this IVF index was built without a quantized companion; "
                "rebuild with quantize=True for int8 fine scoring"
            )
        if scorer == "pq" and self.pq is None:
            raise ValueError(
                "this IVF index was built without a PQ companion; "
                "rebuild with pq=True for PQ fine scoring"
            )
        users = np.asarray(users, dtype=np.int64)
        k = min(int(k), self.n_items)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if len(users) == 0:
            return np.empty((0, k), dtype=np.int64), np.empty((0, k), dtype=self.dtype)

        with maybe_span(tracer, "ann.coarse", cat="ann", attrs={"n_users": len(users)}):
            probes = self.probe(users, nprobe)
        n = len(users)

        # Masks apply at the re-rank stage, per probed list, *before* the
        # local selection — so a filtered request keeps the full fine
        # ranking of its allowed pool (never crowded out by filtered
        # items), while the probe geometry stays mask-independent.
        mask_perm = (
            None
            if candidate_mask is None
            else np.asarray(candidate_mask, dtype=bool)[self.list_items]
        )
        # Exclusion pairs, grouped by the list that holds the excluded item:
        # each (user, item) exclusion can only surface in that one list, so
        # the fine stage scatters exclusions per segment in O(1) per pair.
        ex_by_list = None
        if exclude_csr is not None:
            ex_rows, ex_cols = expand_csr_rows(*exclude_csr, users)
            if ex_rows is not None:
                ex_lists = self._item_list[ex_cols]
                group = np.argsort(ex_lists, kind="stable")
                ex_by_list = (
                    ex_lists[group],
                    ex_rows[group],
                    self._item_position[ex_cols[group]],
                )
        row_local = np.full(n, -1, dtype=np.int64)

        # Each probed list contributes at most `local_cap` survivors (its
        # masked local top-k — selection is monotone under the (score desc,
        # id asc) order, so a user's global top-k item is always inside its
        # own list's local top-k, the ShardedIndex argument).  That bounds
        # the merge pool at nprobe * cap instead of the full probed width.
        # The pq scorer over-fetches: ADC ranks are approximate, so each
        # list keeps rerank_factor * k survivors and the exact re-rank
        # below decides the final order.
        local_cap = k if scorer != "pq" else min(self.rerank_factor * k, self.n_items)
        sizes = self.list_sizes()
        pool_sizes = np.minimum(sizes, local_cap)[probes].sum(axis=1)
        width_max = int(pool_sizes.max())

        # Padded per-user candidate pools.  The id sentinel is n_items (not
        # -1) so topk_pairs_rows' (score desc, id asc) order puts padding
        # after every real item; it converts to the public -1 at the end.
        ids = np.full((n, width_max), self.n_items, dtype=np.int64)
        scores = np.full((n, width_max), NEG_INF, dtype=self.dtype)
        cursor = np.zeros(n, dtype=np.int64)

        # Group (user, probed list) pairs by list: each probed list is
        # scored once for all the users that probed it — one contiguous
        # score_branches slice per group, vectorized across those users.
        flat_rows = np.repeat(np.arange(n), probes.shape[1])
        order = np.argsort(probes.ravel(), kind="stable")
        sorted_lists = probes.ravel()[order]
        sorted_rows = flat_rows[order]
        starts = np.flatnonzero(np.r_[True, sorted_lists[1:] != sorted_lists[:-1]])
        bounds = np.r_[starts, len(sorted_lists)]

        # begin()/finish() rather than a with-block: the loop is long and
        # an exception mid-fine leaves the span unfinished, which exporters
        # simply drop.  ADC table-lookup scoring gets its own span name so
        # traces distinguish it from the exact/int8 fine stages.
        fine_span = (
            tracer.begin(
                "ann.fine.adc" if scorer == "pq" else "ann.fine", cat="ann",
                attrs={"n_segments": len(starts), "scorer": scorer},
            )
            if tracer is not None
            else None
        )
        for seg in range(len(starts)):
            lo, hi = bounds[seg], bounds[seg + 1]
            lst = int(sorted_lists[lo])
            start, stop = int(self.list_indptr[lst]), int(self.list_indptr[lst + 1])
            width = stop - start
            if width == 0:
                continue
            rows = sorted_rows[lo:hi]
            part = self._score_segment(scorer, users[rows], lst, start, stop)
            seg_ids = self.list_items[start:stop]
            if mask_perm is not None:
                part[:, ~mask_perm[start:stop]] = NEG_INF
            if ex_by_list is not None:
                ex_lists, ex_users, ex_positions = ex_by_list
                a, b = np.searchsorted(ex_lists, [lst, lst + 1])
                if b > a:
                    row_local[rows] = np.arange(len(rows))
                    local = row_local[ex_users[a:b]]
                    inside = local >= 0  # pairs whose user probed this list
                    if inside.any():
                        part[local[inside], ex_positions[a:b][inside] - start] = NEG_INF
                    row_local[rows] = -1

            if width > local_cap:
                local = _local_topk_set(part, local_cap)
                seg_out_ids = seg_ids[local]
                seg_out_scores = np.take_along_axis(part, local, axis=1)
                width = local_cap
            else:
                seg_out_ids = np.broadcast_to(seg_ids[None, :], part.shape)
                seg_out_scores = part
            cols = cursor[rows][:, None] + np.arange(width)[None, :]
            rix = rows[:, None]
            ids[rix, cols] = seg_out_ids
            scores[rix, cols] = seg_out_scores
            cursor[rows] += width

        if fine_span is not None:
            fine_span.finish()

        if scorer == "pq":
            # Exact re-rank of EVERY ADC survivor: the per-list cap above is
            # the only approximation, so recall depends on an item's ADC rank
            # within its own list (bounded width), never on its ADC rank
            # across the whole probe pool (which grows with nprobe and
            # catalog size — cutting there collapses recall at scale).
            # Masked/padding entries carry -inf ADC scores, so `valid` keeps
            # them out — re-ranking can never resurrect an excluded item.
            with maybe_span(
                tracer, "ann.rerank", cat="ann",
                attrs={"candidates": int(ids.shape[1])},
            ):
                valid = scores > NEG_INF
                exact = self._rerank_exact(users, np.where(valid, ids, 0))
                scores = np.where(valid, exact, self.dtype.type(NEG_INF))
                ids = np.where(valid, ids, self.n_items)

        with maybe_span(tracer, "ann.merge", cat="ann"):
            sel = topk_pairs_rows(ids, scores, k)
            top_ids = np.take_along_axis(ids, sel, axis=1)
            top_scores = np.take_along_axis(scores, sel, axis=1)
            top_ids = np.where(top_scores > NEG_INF, top_ids, -1)
        if top_ids.shape[1] < k:  # pool smaller than k: pad to the dense contract
            pad = k - top_ids.shape[1]
            top_ids = np.hstack([top_ids, np.full((n, pad), -1, dtype=np.int64)])
            top_scores = np.hstack(
                [top_scores, np.full((n, pad), NEG_INF, dtype=self.dtype)]
            )
        return top_ids, top_scores

    # ------------------------------------------------------------------
    # Fine-stage storage hooks (tiered layouts override these)
    # ------------------------------------------------------------------
    def _score_segment(
        self, scorer: str, users_sel: np.ndarray, lst: int, start: int, stop: int
    ) -> np.ndarray:
        """Fine-stage scores of one probed list for its probing users.

        Storage access is funneled through this hook (and
        :meth:`_rerank_exact`) so :class:`~.tiered.TieredIVFIndex` can swap
        what backs a list — hot resident copy vs cold mmap page — without
        touching the search loop above.
        """
        if scorer == "exact":
            return score_branches(self._perm_branches, users_sel, start, stop)
        if scorer == "pq":
            return score_pq_block(
                self._perm_branches,
                self.pq.pq,
                [codes[start:stop] for codes in self._perm_pq_codes],
                # item_const of a _perm_branch is already in permuted
                # order — slice it, never re-permute it
                [
                    None if b.item_const is None else b.item_const[start:stop]
                    for b in self._perm_branches
                ],
                users_sel,
                self.dtype,
                means=(
                    None
                    if self._pq_list_means is None
                    else [m[lst] for m in self._pq_list_means]
                ),
            )
        return score_quantized_block(
            self._perm_branches,
            self.quantized.quantized,
            [codes[start:stop] for codes in self._perm_codes],
            [
                None if b.item_const is None else b.item_const[start:stop]
                for b in self._perm_branches
            ],
            users_sel,
            self.dtype,
        )

    def _rerank_exact(self, users: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """Exact scores for ``(len(users), m)`` global candidate ids.

        Gathers from the permuted storage through ``_item_position`` — the
        same arrays the fine stage slices, so for a tiered index a cold
        candidate costs one page fault, not a resident copy.
        """
        positions = self._item_position[np.asarray(candidates, dtype=np.int64)]
        return score_candidates_exact(self._perm_branches, users, positions, self.dtype)

    # ------------------------------------------------------------------
    # Serialization (same archive layer as EmbeddingIndex / checkpoints)
    # ------------------------------------------------------------------
    def save(self, path: str, format: str = "npz", include_items: bool = False) -> str:
        """Persist the IVF structure (and int8/PQ codes); the source index
        is referenced by shape/name, not duplicated.

        ``include_items=True`` additionally stores the *permuted* item-side
        factor arrays — self-contained list-contiguous storage that a
        tiered loader can mmap and page per list instead of re-gathering
        from the source index (see :mod:`.tiered`).  Pair it with
        ``format="dir"`` so each array is its own mmap-able ``.npy``.
        """
        if format not in ("npz", "dir"):
            raise ValueError(f"format must be 'npz' or 'dir', got {format!r}")
        arrays = {
            "centroids": self.centroids,
            "list_indptr": self.list_indptr,
            "list_items": self.list_items,
        }
        quantized_meta: Optional[List] = None
        if self.quantized is not None:
            quantized_meta = self.quantized.quantization_params()
            for i, qb in enumerate(self.quantized.quantized):
                arrays[f"branch{i}.q_item"] = qb.q_item
        pq_meta = None
        if self.pq is not None:
            pq_branch_meta = []
            for i, pb in enumerate(self.pq.pq):
                arrays[f"pq.branch{i}.codes"] = pb.codes
                for m, cb in enumerate(pb.codebooks):
                    arrays[f"pq.branch{i}.codebook{m}"] = cb
                if pb.rotation is not None:
                    arrays[f"pq.branch{i}.rotation"] = pb.rotation
                pq_branch_meta.append(
                    {
                        "n_subspaces": pb.n_subspaces,
                        "splits": [[int(lo), int(hi)] for lo, hi in pb.splits],
                        "rotation": pb.rotation is not None,
                    }
                )
            if self._pq_list_means is not None:
                for i, m in enumerate(self._pq_list_means):
                    arrays[f"pq.means{i}"] = m
            pq_meta = {
                "branches": pq_branch_meta,
                "rerank_factor": self.pq.rerank_factor,
                "residual": self._pq_list_means is not None,
            }
        if include_items:
            for i, branch in enumerate(self._perm_branches):
                arrays[f"perm.branch{i}.item"] = branch.item
                if branch.item_const is not None:
                    arrays[f"perm.branch{i}.item_const"] = branch.item_const
        metadata = {
            persistence.KIND_KEY: IVF_KIND,
            "format_version": FORMAT_VERSION,
            "model_name": self.index.model_name,
            "n_users": self.n_users,
            "n_items": self.n_items,
            "n_lists": self.n_lists,
            "nprobe": self.nprobe,
            "seed": self.seed,
            "quantized": quantized_meta,
            "pq": pq_meta,
            "default_scorer": self.default_scorer,
            "rerank_factor": self.rerank_factor,
            "include_items": bool(include_items),
        }
        if format == "dir":
            return persistence.write_archive_dir(path, arrays, metadata)
        return persistence.write_archive(path, arrays, metadata)

    @staticmethod
    def _load_pq(metadata: dict, arrays, index):
        """Reconstruct the PQ companion (codes in *global* item order).

        Returns ``(pq_index, pq_list_means)`` — means are ``None`` for
        pre-residual archives, whose codes encode raw factors.
        """
        pq_meta = metadata.get("pq")
        if pq_meta is None:
            return None, None
        branches = [
            PQBranch(
                codebooks=[
                    np.asarray(arrays[f"pq.branch{i}.codebook{m}"], dtype=np.float64)
                    for m in range(int(meta["n_subspaces"]))
                ],
                codes=np.ascontiguousarray(arrays[f"pq.branch{i}.codes"]),
                rotation=(
                    np.asarray(arrays[f"pq.branch{i}.rotation"], dtype=np.float64)
                    if meta.get("rotation")
                    else None
                ),
                splits=[(int(lo), int(hi)) for lo, hi in meta["splits"]],
            )
            for i, meta in enumerate(pq_meta["branches"])
        ]
        residual = bool(pq_meta.get("residual"))
        means = None
        if residual:
            means = [
                np.ascontiguousarray(arrays[f"pq.means{i}"], dtype=np.float64)
                for i in range(len(branches))
            ]
        pq = PQIndex(
            index,
            branches,
            rerank_factor=int(pq_meta.get("rerank_factor", 8)),
            residual=residual,
        )
        return pq, means

    @classmethod
    def load(cls, path: str, index, mmap: bool = False) -> "IVFIndex":
        """Re-attach a saved IVF structure to its source index."""
        metadata = persistence.read_archive_metadata(path)
        kind = persistence.archive_kind(metadata)
        if kind != IVF_KIND:
            raise ValueError(f"{path} holds a {kind!r} artifact, not an IVF index")
        if metadata["format_version"] > FORMAT_VERSION:
            raise ValueError(
                f"IVF format v{metadata['format_version']} is newer than this "
                f"reader (v{FORMAT_VERSION})"
            )
        if metadata["n_items"] != index.n_items or metadata["n_users"] != index.n_users:
            raise ValueError(
                f"IVF index was built for {metadata['n_users']} users x "
                f"{metadata['n_items']} items, not this index's "
                f"{index.n_users} x {index.n_items}"
            )
        arrays = persistence.read_archive_arrays(path, mmap=mmap)
        quantized = None
        if metadata.get("quantized") is not None:
            quantized = QuantizedIndex(
                index,
                [
                    QuantizedBranch(
                        q_item=np.ascontiguousarray(arrays[f"branch{i}.q_item"]),
                        scale=float(meta["scale"]),
                        zero=int(meta["zero"]),
                    )
                    for i, meta in enumerate(metadata["quantized"])
                ],
            )
        pq, pq_list_means = cls._load_pq(metadata, arrays, index)
        return cls(
            index,
            centroids=arrays["centroids"],
            list_indptr=arrays["list_indptr"],
            list_items=arrays["list_items"],
            nprobe=int(metadata["nprobe"]),
            quantized=quantized,
            seed=int(metadata.get("seed", 0)),
            pq=pq,
            default_scorer=metadata.get("default_scorer"),
            rerank_factor=int(metadata.get("rerank_factor", 8)),
            pq_list_means=pq_list_means,
        )


def build_ivf(
    index,
    n_lists: Optional[int] = None,
    nprobe: Optional[int] = None,
    seed: int = 0,
    iters: int = 25,
    quantize: bool = True,
    pq: bool = False,
    pq_subspace_dim: int = 4,
    pq_centroids: int = 256,
    pq_rotation: bool = False,
    rerank_factor: int = 8,
    tol: float = 0.0,
    train_sample: Optional[int] = None,
) -> IVFIndex:
    """Build an :class:`IVFIndex` (and its int8/PQ companions) from an index.

    ``n_lists`` defaults to ``~sqrt(n_items)/2`` (see
    :func:`default_n_lists` for why this substrate prefers fewer, larger
    lists) and ``nprobe`` to an eighth of the lists — the default
    operating point the recall-gated benchmark (``BENCH_ann.json``)
    measures.  ``pq=True`` trains per-branch *residual* product
    quantization (codes encode each item minus its list's mean — the
    IVFADC construction) and makes ``pq`` the default fine scorer (ADC
    candidates + exact re-rank).  ``train_sample`` caps how many item vectors the
    k-means stages train on (a seeded subsample; the full catalog is still
    assigned in one chunked pass) and ``tol`` enables centroid-shift early
    stopping — both are what keep 1M+ item builds tractable.
    Deterministic given ``seed``.
    """
    n_lists = default_n_lists(index.n_items) if n_lists is None else int(n_lists)
    if n_lists < 1:
        raise ValueError(f"n_lists must be >= 1, got {n_lists}")
    n_lists = min(n_lists, index.n_items)
    vectors = combined_item_vectors(index.branches)
    if train_sample is not None and vectors.shape[0] > int(train_sample):
        rng = np.random.default_rng(seed)
        sample = np.sort(rng.choice(vectors.shape[0], int(train_sample), replace=False))
        centroids, _ = kmeans(
            vectors[sample], min(n_lists, len(sample)), seed=seed, iters=iters, tol=tol
        )
        labels, _ = assign_labels(vectors, centroids)
    else:
        centroids, labels = kmeans(vectors, n_lists, seed=seed, iters=iters, tol=tol)
    n_lists = centroids.shape[0]

    # Contiguous list layout, item ids ascending within each list so the
    # fine stage's tie-breaking matches exact search deterministically.
    perm = np.lexsort((np.arange(index.n_items), labels))
    counts = np.bincount(labels, minlength=n_lists)
    indptr = np.zeros(n_lists + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    nprobe = default_nprobe(n_lists) if nprobe is None else int(nprobe)
    nprobe = max(1, min(nprobe, n_lists))
    quantized = QuantizedIndex.build(index) if quantize else None
    pq_index = None
    pq_list_means = None
    if pq:
        # Residual PQ (the IVFADC construction): codebooks quantize each
        # item *minus its list's mean factor row*.  Items in one list are
        # similar by construction, so raw-vector codebooks would spend
        # their 8 bits re-describing the coarse structure the list
        # assignment already captured — residuals put all the precision on
        # the within-list differences that decide ADC candidate ranks.
        pq_branches = []
        pq_list_means = []
        for b, branch in enumerate(index.branches):
            item = np.asarray(branch.item, dtype=np.float64)
            perm_item = item[perm]
            means = np.zeros((n_lists, item.shape[1]))
            for lst in range(n_lists):
                lo, hi = int(indptr[lst]), int(indptr[lst + 1])
                if hi > lo:  # a list can be empty under subsampled training
                    means[lst] = perm_item[lo:hi].mean(axis=0)
            pq_branches.append(
                build_pq_branch(
                    item - means[labels],
                    subspace_dim=pq_subspace_dim,
                    n_centroids=pq_centroids,
                    rotation=pq_rotation,
                    seed=seed + 104729 * b,
                    iters=iters,
                    tol=tol if tol > 0 else 1e-4,
                    train_sample=train_sample,
                )
            )
            pq_list_means.append(means)
        pq_index = PQIndex(
            index, pq_branches, rerank_factor=rerank_factor, residual=True
        )
    return IVFIndex(
        index,
        centroids=centroids,
        list_indptr=indptr,
        list_items=perm,
        nprobe=nprobe,
        quantized=quantized,
        seed=seed,
        pq=pq_index,
        rerank_factor=rerank_factor,
        pq_list_means=pq_list_means,
    )
