"""IVF two-stage approximate retrieval over a frozen factorization.

The catalog is partitioned by a pure-NumPy k-means (:mod:`.kmeans`) over
the items' *combined* score vectors — the per-branch factors concatenated,
plus one column carrying the weighted item constants — so that a query
vector built the same way satisfies ``q . x == exact score - user-constant
terms``.  User-constant terms are per-user offsets that cannot change a
ranking, which makes the coarse stage a faithful inner-product geometry
for PUP's multi-branch layout, not a heuristic on one branch.

Search is two-stage:

1. **coarse** — one ``(batch, D) @ (D, n_lists)`` matmul against the
   centroids; each user probes its top-``nprobe`` lists;
2. **fine** — the probed lists' items are scored *exactly* in the index
   dtype.  Item factors are stored contiguously per list (a permuted copy
   of each branch's factor matrix), so the fine stage is a
   :func:`~repro.core.base.score_branches` call per (list, probing-users)
   group — THE scoring kernel, no gathers on the request path — and the
   per-user candidate pools merge through
   :func:`~repro.eval.topk.topk_pairs_rows`, the same deterministic
   (score desc, item id asc) order every exact path uses.

Because stage 2 is exact and the lists partition the catalog, probing all
lists (``nprobe >= n_lists``) makes the candidate pool the full catalog
and the result bit-identical to exact search — the property the test
suite pins (the usual 1-ULP caveat for degenerate matmul shapes noted in
:mod:`repro.serving.retrieval` applies here too).  Smaller ``nprobe``
trades recall for time along a measured curve (``BENCH_ann.json``).

An optional :class:`~.quantize.QuantizedIndex` companion supplies an
``int8`` fine-stage scorer (integer-accumulated, approximate) next to the
default exact one.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...core.base import ScoreBranch, branches_dtype, score_branches
from ...data.dataset import expand_csr_rows
from ...eval.topk import NEG_INF, partition_topk_rows, topk_pairs_rows
from ...obs.trace import maybe_span
from ...train import persistence
from .kmeans import kmeans
from .quantize import QuantizedBranch, QuantizedIndex, score_quantized_block

IVF_KIND = "ivf_index"

#: bump when the array layout changes incompatibly
FORMAT_VERSION = 1

SCORERS = ("exact", "int8")


def default_n_lists(n_items: int) -> int:
    """Default list count: ~sqrt(n)/2 — fewer, larger lists than the
    classic 4-sqrt(n) heuristic, because on this numpy substrate each
    probed list costs a Python-level dispatch and the fine stage is BLAS
    (dense-friendly), so compute density per list wins over finer pruning
    (measured in BENCH_ann.json)."""
    return max(1, min(int(n_items), int(round(math.sqrt(max(n_items, 1)) / 2.0))))


def default_nprobe(n_lists: int) -> int:
    """Default operating point: probe 1/8 of the lists (min 1)."""
    return max(1, int(math.ceil(n_lists / 8)))


def _local_topk_set(scores: np.ndarray, k: int) -> np.ndarray:
    """The row-wise top-``k`` *set* under (score desc, index asc) — unordered.

    The fine stage only needs set membership per probed list (the global
    merge re-sorts everything), so this skips the per-row ordering that
    :func:`~repro.eval.topk.topk_indices_rows` pays for.  Ties at the
    k-th score are still repaired to the lowest indices — through the
    shared :func:`~repro.eval.topk.partition_topk_rows` diagnostics — which
    is what keeps full-probe search bit-identical to exact selection.
    """
    part, part_scores, ambiguous = partition_topk_rows(scores, k)
    for row in ambiguous:
        threshold = part_scores[row].min()
        above = np.flatnonzero(scores[row] > threshold)
        tied = np.flatnonzero(scores[row] == threshold)
        part[row] = np.concatenate([above, tied[: k - len(above)]])
    return part


def combined_item_vectors(branches: Sequence[ScoreBranch]) -> np.ndarray:
    """``(n_items, D)`` vectors whose inner product with a combined query
    reproduces the user-dependent part of the exact score (float64)."""
    parts = [np.asarray(b.item, dtype=np.float64) for b in branches]
    const: Optional[np.ndarray] = None
    for branch in branches:
        if branch.item_const is not None:
            term = branch.weight * np.asarray(branch.item_const, dtype=np.float64)
            const = term if const is None else const + term
    if const is not None:
        parts.append(const[:, None])
    return np.hstack(parts)


class IVFIndex:
    """Cluster-pruned two-stage search over an :class:`EmbeddingIndex`.

    Wraps the source index (user factors and catalog metadata are shared);
    owns the coarse centroids, the list layout, and contiguous permuted
    copies of the item-side arrays.  ``nprobe`` is the default operating
    point; every :meth:`search` can override it per call.
    """

    def __init__(
        self,
        index,
        centroids: np.ndarray,
        list_indptr: np.ndarray,
        list_items: np.ndarray,
        nprobe: int,
        quantized: Optional[QuantizedIndex] = None,
        seed: int = 0,
    ) -> None:
        self.index = index
        self.n_users = index.n_users
        self.n_items = index.n_items
        self.dtype = branches_dtype(index.branches)
        self.seed = int(seed)

        self.centroids = np.ascontiguousarray(centroids, dtype=np.float64)
        self.list_indptr = np.asarray(list_indptr, dtype=np.int64)
        self.n_lists = len(self.list_indptr) - 1
        if self.centroids.shape[0] != self.n_lists:
            raise ValueError("centroid count disagrees with the list layout")
        #: permutation: global item id of each slot in list-contiguous order
        self.list_items = np.asarray(list_items, dtype=np.int64)
        if self.list_items.shape != (self.n_items,):
            raise ValueError("list_items must be a permutation of the catalog")
        self.nprobe = int(nprobe)
        if not 1 <= self.nprobe <= self.n_lists:
            raise ValueError(f"nprobe must be in [1, {self.n_lists}], got {nprobe}")

        # Inverse layout maps: for any global item id, which list holds it
        # and at which slot of the permuted storage — O(1) lookups that let
        # exclusion masks scatter straight into the fine stage's scored
        # blocks instead of key-searching every candidate.
        self._item_position = np.empty(self.n_items, dtype=np.int64)
        self._item_position[self.list_items] = np.arange(self.n_items)
        self._item_list = np.empty(self.n_items, dtype=np.int64)
        self._item_list[self.list_items] = np.repeat(
            np.arange(self.n_lists), np.diff(self.list_indptr)
        )

        # Contiguous per-list item-side storage: the fine stage slices these
        # instead of gathering scattered rows per request.
        perm = self.list_items
        self._perm_branches = [
            ScoreBranch(
                user=branch.user,
                item=branch.item[perm],
                item_const=None if branch.item_const is None else branch.item_const[perm],
                user_const=branch.user_const,
                weight=branch.weight,
            )
            for branch in index.branches
        ]
        self.quantized = quantized
        if quantized is not None:
            if quantized.n_items != self.n_items:
                raise ValueError("quantized companion was built for a different catalog")
            self._perm_codes = [qb.q_item[perm] for qb in quantized.quantized]
        else:
            self._perm_codes = None

    # ------------------------------------------------------------------
    @property
    def scorers(self) -> Tuple[str, ...]:
        """Fine-stage scorers this index supports."""
        return SCORERS if self.quantized is not None else ("exact",)

    def list_sizes(self) -> np.ndarray:
        return np.diff(self.list_indptr)

    def memory_bytes(self) -> int:
        """Footprint of the IVF-owned arrays (permuted factors + centroids)."""
        total = self.centroids.nbytes + self.list_indptr.nbytes + self.list_items.nbytes
        for branch in self._perm_branches:
            total += branch.item.nbytes
            if branch.item_const is not None:
                total += branch.item_const.nbytes
        if self._perm_codes is not None:
            total += sum(codes.nbytes for codes in self._perm_codes)
        return total

    # ------------------------------------------------------------------
    def queries(self, users: np.ndarray) -> np.ndarray:
        """Combined coarse-stage query vectors (float64, one row per user)."""
        users = np.asarray(users, dtype=np.int64)
        parts = [
            branch.weight * np.asarray(branch.user[users], dtype=np.float64)
            for branch in self.index.branches
        ]
        if self.centroids.shape[1] > sum(p.shape[1] for p in parts):
            parts.append(np.ones((len(users), 1)))
        return np.hstack(parts)

    def probe(self, users: np.ndarray, nprobe: Optional[int] = None) -> np.ndarray:
        """The ``(len(users), nprobe)`` list ids each user would search."""
        nprobe = self._resolve_nprobe(nprobe)
        coarse = self.queries(users) @ self.centroids.T
        if nprobe >= self.n_lists:
            return np.tile(np.arange(self.n_lists), (coarse.shape[0], 1))
        return np.argpartition(-coarse, nprobe - 1, axis=1)[:, :nprobe]

    def _resolve_nprobe(self, nprobe: Optional[int]) -> int:
        nprobe = self.nprobe if nprobe is None else int(nprobe)
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        return min(nprobe, self.n_lists)

    # ------------------------------------------------------------------
    def search(
        self,
        users: np.ndarray,
        k: int,
        nprobe: Optional[int] = None,
        scorer: str = "exact",
        exclude_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        candidate_mask: Optional[np.ndarray] = None,
        tracer=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Two-stage top-``k`` for a batch of users.

        ``exclude_csr`` is the per-user train-positive mask as
        ``(indptr, indices)``; ``candidate_mask`` a boolean ``(n_items,)``
        filter mask.  Both apply at the re-rank stage: probed candidates
        that are excluded or filtered are pushed to ``-inf`` *after* exact
        scoring, so masking never changes which lists are probed (a
        filtered request probes the same geometry as an unfiltered one).

        Returns dense ``(len(users), k)`` ``(ids, scores)`` in the index
        dtype; slots past a user's surviving candidate pool carry the
        ``-1`` / ``-inf`` sentinel (same contract as the batch runtime).
        """
        if scorer not in SCORERS:
            raise ValueError(f"scorer must be one of {SCORERS}, got {scorer!r}")
        if scorer == "int8" and self.quantized is None:
            raise ValueError(
                "this IVF index was built without a quantized companion; "
                "rebuild with quantize=True for int8 fine scoring"
            )
        users = np.asarray(users, dtype=np.int64)
        k = min(int(k), self.n_items)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if len(users) == 0:
            return np.empty((0, k), dtype=np.int64), np.empty((0, k), dtype=self.dtype)

        with maybe_span(tracer, "ann.coarse", cat="ann", attrs={"n_users": len(users)}):
            probes = self.probe(users, nprobe)
        n = len(users)

        # Masks apply at the re-rank stage, per probed list, *before* the
        # local selection — so a filtered request keeps the full fine
        # ranking of its allowed pool (never crowded out by filtered
        # items), while the probe geometry stays mask-independent.
        mask_perm = (
            None
            if candidate_mask is None
            else np.asarray(candidate_mask, dtype=bool)[self.list_items]
        )
        # Exclusion pairs, grouped by the list that holds the excluded item:
        # each (user, item) exclusion can only surface in that one list, so
        # the fine stage scatters exclusions per segment in O(1) per pair.
        ex_by_list = None
        if exclude_csr is not None:
            ex_rows, ex_cols = expand_csr_rows(*exclude_csr, users)
            if ex_rows is not None:
                ex_lists = self._item_list[ex_cols]
                group = np.argsort(ex_lists, kind="stable")
                ex_by_list = (
                    ex_lists[group],
                    ex_rows[group],
                    self._item_position[ex_cols[group]],
                )
        row_local = np.full(n, -1, dtype=np.int64)

        # Each probed list contributes at most k survivors (its masked
        # local top-k — selection is monotone under the (score desc, id
        # asc) order, so a user's global top-k item is always inside its
        # own list's local top-k, the ShardedIndex argument).  That bounds
        # the merge pool at nprobe * k instead of the full probed width.
        sizes = self.list_sizes()
        pool_sizes = np.minimum(sizes, k)[probes].sum(axis=1)
        width_max = int(pool_sizes.max())

        # Padded per-user candidate pools.  The id sentinel is n_items (not
        # -1) so topk_pairs_rows' (score desc, id asc) order puts padding
        # after every real item; it converts to the public -1 at the end.
        ids = np.full((n, width_max), self.n_items, dtype=np.int64)
        scores = np.full((n, width_max), NEG_INF, dtype=self.dtype)
        cursor = np.zeros(n, dtype=np.int64)

        # Group (user, probed list) pairs by list: each probed list is
        # scored once for all the users that probed it — one contiguous
        # score_branches slice per group, vectorized across those users.
        flat_rows = np.repeat(np.arange(n), probes.shape[1])
        order = np.argsort(probes.ravel(), kind="stable")
        sorted_lists = probes.ravel()[order]
        sorted_rows = flat_rows[order]
        starts = np.flatnonzero(np.r_[True, sorted_lists[1:] != sorted_lists[:-1]])
        bounds = np.r_[starts, len(sorted_lists)]

        # begin()/finish() rather than a with-block: the loop is long and
        # an exception mid-fine leaves the span unfinished, which exporters
        # simply drop.
        fine_span = (
            tracer.begin(
                "ann.fine", cat="ann",
                attrs={"n_segments": len(starts), "scorer": scorer},
            )
            if tracer is not None
            else None
        )
        for seg in range(len(starts)):
            lo, hi = bounds[seg], bounds[seg + 1]
            lst = int(sorted_lists[lo])
            start, stop = int(self.list_indptr[lst]), int(self.list_indptr[lst + 1])
            width = stop - start
            if width == 0:
                continue
            rows = sorted_rows[lo:hi]
            if scorer == "exact":
                part = score_branches(self._perm_branches, users[rows], start, stop)
            else:
                part = score_quantized_block(
                    self._perm_branches,
                    self.quantized.quantized,
                    [codes[start:stop] for codes in self._perm_codes],
                    # item_const of a _perm_branch is already in permuted
                    # order — slice it, never re-permute it
                    [
                        None if b.item_const is None else b.item_const[start:stop]
                        for b in self._perm_branches
                    ],
                    users[rows],
                    self.dtype,
                )
            seg_ids = self.list_items[start:stop]
            if mask_perm is not None:
                part[:, ~mask_perm[start:stop]] = NEG_INF
            if ex_by_list is not None:
                ex_lists, ex_users, ex_positions = ex_by_list
                a, b = np.searchsorted(ex_lists, [lst, lst + 1])
                if b > a:
                    row_local[rows] = np.arange(len(rows))
                    local = row_local[ex_users[a:b]]
                    inside = local >= 0  # pairs whose user probed this list
                    if inside.any():
                        part[local[inside], ex_positions[a:b][inside] - start] = NEG_INF
                    row_local[rows] = -1

            if width > k:
                local = _local_topk_set(part, k)
                seg_out_ids = seg_ids[local]
                seg_out_scores = np.take_along_axis(part, local, axis=1)
                width = k
            else:
                seg_out_ids = np.broadcast_to(seg_ids[None, :], part.shape)
                seg_out_scores = part
            cols = cursor[rows][:, None] + np.arange(width)[None, :]
            rix = rows[:, None]
            ids[rix, cols] = seg_out_ids
            scores[rix, cols] = seg_out_scores
            cursor[rows] += width

        if fine_span is not None:
            fine_span.finish()

        with maybe_span(tracer, "ann.merge", cat="ann"):
            sel = topk_pairs_rows(ids, scores, k)
            top_ids = np.take_along_axis(ids, sel, axis=1)
            top_scores = np.take_along_axis(scores, sel, axis=1)
            top_ids = np.where(top_scores > NEG_INF, top_ids, -1)
        if top_ids.shape[1] < k:  # pool smaller than k: pad to the dense contract
            pad = k - top_ids.shape[1]
            top_ids = np.hstack([top_ids, np.full((n, pad), -1, dtype=np.int64)])
            top_scores = np.hstack(
                [top_scores, np.full((n, pad), NEG_INF, dtype=self.dtype)]
            )
        return top_ids, top_scores

    # ------------------------------------------------------------------
    # Serialization (same archive layer as EmbeddingIndex / checkpoints)
    # ------------------------------------------------------------------
    def save(self, path: str, format: str = "npz") -> str:
        """Persist the IVF structure (and int8 codes); the source index is
        referenced by shape/name, not duplicated."""
        if format not in ("npz", "dir"):
            raise ValueError(f"format must be 'npz' or 'dir', got {format!r}")
        arrays = {
            "centroids": self.centroids,
            "list_indptr": self.list_indptr,
            "list_items": self.list_items,
        }
        quantized_meta: Optional[List] = None
        if self.quantized is not None:
            quantized_meta = self.quantized.quantization_params()
            for i, qb in enumerate(self.quantized.quantized):
                arrays[f"branch{i}.q_item"] = qb.q_item
        metadata = {
            persistence.KIND_KEY: IVF_KIND,
            "format_version": FORMAT_VERSION,
            "model_name": self.index.model_name,
            "n_users": self.n_users,
            "n_items": self.n_items,
            "n_lists": self.n_lists,
            "nprobe": self.nprobe,
            "seed": self.seed,
            "quantized": quantized_meta,
        }
        if format == "dir":
            return persistence.write_archive_dir(path, arrays, metadata)
        return persistence.write_archive(path, arrays, metadata)

    @classmethod
    def load(cls, path: str, index, mmap: bool = False) -> "IVFIndex":
        """Re-attach a saved IVF structure to its source index."""
        metadata = persistence.read_archive_metadata(path)
        kind = persistence.archive_kind(metadata)
        if kind != IVF_KIND:
            raise ValueError(f"{path} holds a {kind!r} artifact, not an IVF index")
        if metadata["format_version"] > FORMAT_VERSION:
            raise ValueError(
                f"IVF format v{metadata['format_version']} is newer than this "
                f"reader (v{FORMAT_VERSION})"
            )
        if metadata["n_items"] != index.n_items or metadata["n_users"] != index.n_users:
            raise ValueError(
                f"IVF index was built for {metadata['n_users']} users x "
                f"{metadata['n_items']} items, not this index's "
                f"{index.n_users} x {index.n_items}"
            )
        arrays = persistence.read_archive_arrays(path, mmap=mmap)
        quantized = None
        if metadata.get("quantized") is not None:
            quantized = QuantizedIndex(
                index,
                [
                    QuantizedBranch(
                        q_item=np.ascontiguousarray(arrays[f"branch{i}.q_item"]),
                        scale=float(meta["scale"]),
                        zero=int(meta["zero"]),
                    )
                    for i, meta in enumerate(metadata["quantized"])
                ],
            )
        return cls(
            index,
            centroids=arrays["centroids"],
            list_indptr=arrays["list_indptr"],
            list_items=arrays["list_items"],
            nprobe=int(metadata["nprobe"]),
            quantized=quantized,
            seed=int(metadata.get("seed", 0)),
        )


def build_ivf(
    index,
    n_lists: Optional[int] = None,
    nprobe: Optional[int] = None,
    seed: int = 0,
    iters: int = 25,
    quantize: bool = True,
) -> IVFIndex:
    """Build an :class:`IVFIndex` (and its int8 companion) from an index.

    ``n_lists`` defaults to ``~sqrt(n_items)/2`` (see
    :func:`default_n_lists` for why this substrate prefers fewer, larger
    lists) and ``nprobe`` to an eighth of the lists — the default
    operating point the recall-gated benchmark (``BENCH_ann.json``)
    measures.  Deterministic given ``seed``.
    """
    n_lists = default_n_lists(index.n_items) if n_lists is None else int(n_lists)
    if n_lists < 1:
        raise ValueError(f"n_lists must be >= 1, got {n_lists}")
    n_lists = min(n_lists, index.n_items)
    vectors = combined_item_vectors(index.branches)
    centroids, labels = kmeans(vectors, n_lists, seed=seed, iters=iters)
    n_lists = centroids.shape[0]

    # Contiguous list layout, item ids ascending within each list so the
    # fine stage's tie-breaking matches exact search deterministically.
    perm = np.lexsort((np.arange(index.n_items), labels))
    counts = np.bincount(labels, minlength=n_lists)
    indptr = np.zeros(n_lists + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    nprobe = default_nprobe(n_lists) if nprobe is None else int(nprobe)
    nprobe = max(1, min(nprobe, n_lists))
    quantized = QuantizedIndex.build(index) if quantize else None
    return IVFIndex(
        index,
        centroids=centroids,
        list_indptr=indptr,
        list_items=perm,
        nprobe=nprobe,
        quantized=quantized,
        seed=seed,
    )
