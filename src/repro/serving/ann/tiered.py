"""Hot/cold tiered memory layout for IVF indexes.

A plain :class:`~.ivf.IVFIndex` keeps its whole permuted item payload
resident — fine at 48k items, not at 1M+.  A :class:`TieredIVFIndex`
loads an ``include_items`` **dir archive** (one mmap-able ``.npy`` per
array, the PR-4 format) and splits the catalog's IVF lists into two
tiers:

* **hot** — lists carrying the most probe traffic are materialized into
  RAM (contiguous per-list copies of the permuted factor slices), so the
  exact fine stage for popular lists never touches the page cache;
* **cold** — every other list stays an mmap view; the first probe of a
  cold list page-faults it in and the OS pages it back out under memory
  pressure.  No code path ever gathers a full-catalog copy.

Hot selection is by **access mass**: probe a deterministic sample of
users at the index's default ``nprobe``, count how often each list is
probed, and admit lists in (mass desc, list id asc) order until the
budget — :class:`TieredIndexConfig.hot_fraction` of the item payload, or
an explicit ``memory_ceiling_bytes`` for *everything resident* — is
exhausted.  The always-resident floor (centroids, list layout, inverse
maps, int8/PQ codes and codebooks) is charged against the ceiling first,
so the reported hot tier is an honest upper bound on what this index
keeps in RAM.

The small arrays stay resident on purpose: PQ codes for a 1M-item
catalog are ~16 MB where the f32 factors are ~256 MB, which is exactly
the compression-ladder argument (``docs/performance.md``) — ADC scoring
runs entirely against resident codes, and only the exact re-rank of the
final candidate pool touches (pages) the cold factor slices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ...core.base import ScoreBranch, score_branches
from ...train import persistence
from .ivf import IVF_KIND, FORMAT_VERSION, IVFIndex
from .quantize import QuantizedBranch, QuantizedIndex

#: deterministic seed offset for the access-mass probe sample, so tier
#: selection never aliases the build seed's other draws
_PROBE_SEED_OFFSET = 0x7EA5


@dataclass
class TieredIndexConfig:
    """How much of a tiered index may stay resident.

    Exactly one of ``hot_fraction`` (fraction of the item payload bytes
    to pin hot, in ``[0, 1]``) or ``memory_ceiling_bytes`` (hard ceiling
    on *all* resident bytes: the fixed floor plus hot copies) must be
    set.  ``probe_sample`` sizes the deterministic user sample whose
    probe counts define each list's access mass.
    """

    hot_fraction: Optional[float] = None
    memory_ceiling_bytes: Optional[int] = None
    probe_sample: int = 4096

    def __post_init__(self) -> None:
        if (self.hot_fraction is None) == (self.memory_ceiling_bytes is None):
            raise ValueError(
                "set exactly one of hot_fraction or memory_ceiling_bytes"
            )
        if self.hot_fraction is not None and not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction must be in [0, 1], got {self.hot_fraction}")
        if self.memory_ceiling_bytes is not None and self.memory_ceiling_bytes < 0:
            raise ValueError("memory_ceiling_bytes must be >= 0")
        if self.probe_sample < 1:
            raise ValueError("probe_sample must be >= 1")


class TieredIVFIndex(IVFIndex):
    """IVF search over mmap-backed storage with a resident hot tier.

    Built by :meth:`load` from a dir archive saved with
    ``IVFIndex.save(path, format="dir", include_items=True)``.  Search
    semantics are identical to the parent (same scorers, same masks, same
    sentinels — the storage hooks only change *where* a list's bytes live,
    never their values), so results are bit-identical to the non-tiered
    index built from the same archive.
    """

    def __init__(self, *args, config: TieredIndexConfig, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.config = config
        # Per-branch byte size of one item row (factors + optional const).
        self._row_bytes = [
            branch.item.itemsize * branch.item.shape[1]
            + (branch.item_const.itemsize if branch.item_const is not None else 0)
            for branch in self._perm_branches
        ]
        self._select_hot()

    # ------------------------------------------------------------------
    # Tier selection
    # ------------------------------------------------------------------
    def access_mass(self) -> np.ndarray:
        """Probe-hit counts per list over a deterministic user sample."""
        rng = np.random.default_rng(self.seed + _PROBE_SEED_OFFSET)
        sample = min(int(self.config.probe_sample), self.n_users)
        users = np.sort(rng.choice(self.n_users, sample, replace=False))
        probes = self.probe(users)
        return np.bincount(probes.ravel(), minlength=self.n_lists)

    def _list_bytes(self) -> np.ndarray:
        """Item-payload bytes each list would cost to make resident."""
        sizes = self.list_sizes()
        per_row = sum(self._row_bytes)
        return sizes.astype(np.int64) * per_row

    def fixed_resident_bytes(self) -> int:
        """The always-resident floor: everything but the factor payload."""
        total = (
            self.centroids.nbytes
            + self.list_indptr.nbytes
            + self.list_items.nbytes
            + self._item_position.nbytes
            + self._item_list.nbytes
        )
        if self._perm_codes is not None:
            total += sum(codes.nbytes for codes in self._perm_codes)
        if self.pq is not None:
            total += sum(codes.nbytes for codes in self._perm_pq_codes)
            total += sum(pb.table_bytes() for pb in self.pq.pq)
            if self._pq_list_means is not None:
                total += sum(m.nbytes for m in self._pq_list_means)
        return int(total)

    def _select_hot(self) -> None:
        mass = self.access_mass()
        list_bytes = self._list_bytes()
        if self.config.memory_ceiling_bytes is not None:
            budget = max(0, int(self.config.memory_ceiling_bytes) - self.fixed_resident_bytes())
        else:
            budget = int(self.config.hot_fraction * int(list_bytes.sum()))
        # (mass desc, id asc): heaviest lists first, deterministic on ties.
        order = np.lexsort((np.arange(self.n_lists), -mass))
        hot: List[int] = []
        spent = 0
        for lst in order:
            cost = int(list_bytes[lst])
            if spent + cost > budget:
                continue
            spent += cost
            hot.append(int(lst))
        self.is_hot = np.zeros(self.n_lists, dtype=bool)
        self.is_hot[hot] = True
        self.hot_lists = np.sort(np.asarray(hot, dtype=np.int64))
        self._hot_bytes = spent
        # Materialize the hot lists: one contiguous RAM copy per
        # (list, branch) of the permuted slice, prebuilt as ScoreBranch
        # objects so the fine stage costs zero per-request setup.
        self._hot_branches: Dict[int, List[ScoreBranch]] = {}
        for lst in hot:
            start, stop = int(self.list_indptr[lst]), int(self.list_indptr[lst + 1])
            self._hot_branches[lst] = [
                ScoreBranch(
                    user=branch.user,
                    item=np.array(branch.item[start:stop], copy=True),
                    item_const=(
                        None
                        if branch.item_const is None
                        else np.array(branch.item_const[start:stop], copy=True)
                    ),
                    user_const=branch.user_const,
                    weight=branch.weight,
                )
                for branch in self._perm_branches
            ]

    # ------------------------------------------------------------------
    # Storage hooks (the only behavioural difference from IVFIndex)
    # ------------------------------------------------------------------
    def _score_segment(
        self, scorer: str, users_sel: np.ndarray, lst: int, start: int, stop: int
    ) -> np.ndarray:
        # ADC/int8 codes are always resident: only the exact fine stage
        # distinguishes hot (resident slice) from cold (mmap page-in).
        if scorer == "exact" and self.is_hot[lst]:
            return score_branches(self._hot_branches[lst], users_sel, 0, stop - start)
        return super()._score_segment(scorer, users_sel, lst, start, stop)

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return "tiered-" + super().kind

    def memory_report(self) -> dict:
        fixed = self.fixed_resident_bytes()
        cold = int(self._list_bytes()[~self.is_hot].sum())
        hot = fixed + self._hot_bytes
        return {
            "kind": self.kind,
            "bytes_total": int(hot + cold),
            "bytes_per_item": float(super().bytes_per_item),
            "tiers": {"hot": int(hot), "cold": cold},
            "hot_lists": int(self.is_hot.sum()),
            "n_lists": int(self.n_lists),
            "memory_ceiling_bytes": self.config.memory_ceiling_bytes,
        }

    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        path: str,
        index,
        config: TieredIndexConfig,
        mmap: bool = True,
    ) -> "TieredIVFIndex":
        """Open an ``include_items`` dir archive as a tiered index.

        ``mmap=True`` (the default, and the point) keeps the permuted
        factor payload on disk; only the selected hot lists are copied
        into RAM.
        """
        metadata = persistence.read_archive_metadata(path)
        kind = persistence.archive_kind(metadata)
        if kind != IVF_KIND:
            raise ValueError(f"{path} holds a {kind!r} artifact, not an IVF index")
        if metadata["format_version"] > FORMAT_VERSION:
            raise ValueError(
                f"IVF format v{metadata['format_version']} is newer than this "
                f"reader (v{FORMAT_VERSION})"
            )
        if not metadata.get("include_items"):
            raise ValueError(
                "tiered loading needs an archive saved with include_items=True "
                "(it holds the permuted item payload the cold tier pages)"
            )
        if metadata["n_items"] != index.n_items or metadata["n_users"] != index.n_users:
            raise ValueError(
                f"IVF index was built for {metadata['n_users']} users x "
                f"{metadata['n_items']} items, not this index's "
                f"{index.n_users} x {index.n_items}"
            )
        arrays = persistence.read_archive_arrays(path, mmap=mmap)
        quantized = None
        if metadata.get("quantized") is not None:
            quantized = QuantizedIndex(
                index,
                [
                    QuantizedBranch(
                        q_item=np.ascontiguousarray(arrays[f"branch{i}.q_item"]),
                        scale=float(meta["scale"]),
                        zero=int(meta["zero"]),
                    )
                    for i, meta in enumerate(metadata["quantized"])
                ],
            )
        pq, pq_list_means = cls._load_pq(metadata, arrays, index)
        perm_items = [
            (
                arrays[f"perm.branch{i}.item"],
                arrays.get(f"perm.branch{i}.item_const"),
            )
            for i in range(len(index.branches))
        ]
        return cls(
            index,
            centroids=arrays["centroids"],
            list_indptr=arrays["list_indptr"],
            list_items=arrays["list_items"],
            nprobe=int(metadata["nprobe"]),
            quantized=quantized,
            seed=int(metadata.get("seed", 0)),
            pq=pq,
            default_scorer=metadata.get("default_scorer"),
            rerank_factor=int(metadata.get("rerank_factor", 8)),
            perm_items=perm_items,
            pq_list_means=pq_list_means,
            config=config,
        )
