"""Int8 scalar quantization of frozen item factors.

A :class:`QuantizedIndex` compresses the item side of an
:class:`~repro.serving.index.EmbeddingIndex` to int8 — one affine
``scale`` / ``zero_point`` pair per score branch, so PUP's multi-branch
``score_branches`` layout (global + category branches with different value
ranges) quantizes each branch against its own range instead of the union.
User factors, branch constants, and weights stay in the index's float
dtype: they are tiny compared to the catalog, and keeping the constants
exact means quantization error comes only from the item-factor dot
products.

Scoring is **integer-accumulated**: queries are quantized symmetrically
per user row (scale ``max|u|/127``, zero point 0), and the dot product
accumulates products of the int8 codes exactly.  For factor dims up to
1024 the accumulation runs through float32 BLAS — every partial sum is an
integer below 2^24 (``127 * 128 * 1024 < 2^24``), so float32 represents it
exactly and the result is bit-identical to int64 accumulation while
keeping sgemm speed.  Wider factorizations fall back to an int64 matmul.

The quantized scores dequantize as

    u . v_hat  =  s_u * s_v * (acc - z_v * sum(q_u))

with per-element item error bounded by ``s_v / 2`` and per-row query error
by ``s_u / 2``, which bounds the score error of a ``d``-dim branch by
``~d/2 * (s_u * |v|_max + s_v * |u|_max)`` — small against typical score
gaps, and measured (not assumed) by the recall harness in
:mod:`repro.eval.ann`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...core.base import ScoreBranch, branches_dtype
from ...data.dataset import expand_csr_rows
from ...eval.topk import NEG_INF, topk_indices_rows
from ...obs.trace import maybe_span
from ...train import persistence

QUANTIZED_KIND = "quantized_index"

#: bump when the array layout changes incompatibly
FORMAT_VERSION = 1

#: widest factor dim for which float32 accumulation of int8 products is
#: exact: 127 * 128 * 1024 = 16,646,144 < 2^24 = 16,777,216
_EXACT_F32_DIM = 1024


@dataclass
class QuantizedBranch:
    """Int8 codes for one branch's item factors.

    ``v_hat = scale * (q - zero)`` reconstructs the factor values; ``zero``
    lives in the quantized domain (it may exceed int8 range for factor
    distributions far from zero — it is metadata, not a stored code).
    """

    q_item: np.ndarray  # (n_items, d) int8
    scale: float
    zero: int

    @property
    def max_abs_error(self) -> float:
        """Worst-case per-element reconstruction error (half a step)."""
        return self.scale / 2.0

    def dequantized(self, dtype=np.float64) -> np.ndarray:
        """Reconstructed item factors (for tests and error analysis)."""
        return (self.q_item.astype(dtype) - dtype(self.zero)) * dtype(self.scale)


def quantize_items(item: np.ndarray) -> QuantizedBranch:
    """Affine int8 quantization of one branch's ``(n_items, d)`` factors.

    The code range is symmetric (``[-127, 127]``) so the query-side
    symmetric quantization and the item-side affine quantization share the
    same integer magnitude bound in the accumulator.
    """
    item = np.asarray(item)
    lo = float(item.min()) if item.size else 0.0
    hi = float(item.max()) if item.size else 0.0
    if hi <= lo:
        # Constant factors (including all-zero): one code represents them
        # exactly with zero = -value/scale.
        scale = 1.0 if lo == 0.0 else abs(lo) / 127.0
        zero = int(round(-lo / scale))
        codes = np.clip(np.rint(item / scale) + zero, -127, 127).astype(np.int8)
        return QuantizedBranch(q_item=codes, scale=scale, zero=zero)
    scale = (hi - lo) / 254.0
    zero = int(round(-127.0 - lo / scale))
    codes = np.clip(np.rint(item / scale) + zero, -127, 127).astype(np.int8)
    return QuantizedBranch(q_item=codes, scale=scale, zero=zero)


def quantize_queries(rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-row int8 quantization of query (user factor) rows.

    Returns ``(codes, scales)`` where ``codes`` is float32 holding integer
    values in ``[-127, 127]`` (float32 so the accumulation matmul runs in
    BLAS) and ``rows ~= scales[:, None] * codes``.  All-zero rows get scale
    1 and all-zero codes.
    """
    rows = np.asarray(rows)
    peak = np.abs(rows).max(axis=1) if rows.size else np.zeros(rows.shape[0])
    scale = np.where(peak > 0, peak / 127.0, 1.0)
    codes = np.rint(rows / scale[:, None]).astype(np.float32)
    return codes, scale


def accumulate_codes(query_codes: np.ndarray, item_codes: np.ndarray) -> np.ndarray:
    """Exact integer dot products ``query_codes @ item_codes.T``.

    ``query_codes`` is ``(rows, d)`` float32 integers, ``item_codes`` is
    ``(width, d)`` int8.  Up to ``d = 1024`` the product runs through
    float32 BLAS (exact — see module docstring); beyond that it falls back
    to an int64 matmul, slower but still exact.
    """
    d = item_codes.shape[1]
    if d <= _EXACT_F32_DIM:
        return query_codes @ item_codes.astype(np.float32).T
    return (
        query_codes.astype(np.int64) @ item_codes.astype(np.int64).T
    ).astype(np.float64)


def score_quantized_block(
    branches: Sequence[ScoreBranch],
    quantized: Sequence[QuantizedBranch],
    item_codes: Sequence[np.ndarray],
    item_consts: Sequence[Optional[np.ndarray]],
    users: np.ndarray,
    dtype: np.dtype,
) -> np.ndarray:
    """Approximate scores of ``users`` against pre-sliced item code blocks.

    ``item_codes[b]`` / ``item_consts[b]`` are the branch-``b`` codes and
    (exact, unquantized) item constants for the block being scored — a
    contiguous catalog slice for :meth:`QuantizedIndex.score_block`, a
    permuted per-list slice for the IVF fine stage.  The branch loop
    mirrors :func:`~repro.core.base.score_branches` (weights, item_const,
    user_const applied per branch, branches summed) so quantized and exact
    scores differ only by the factor-product quantization error.
    """
    users = np.asarray(users, dtype=np.int64)
    dtype = np.dtype(dtype)
    total: Optional[np.ndarray] = None
    for branch, qb, codes, const in zip(branches, quantized, item_codes, item_consts):
        query_codes, query_scales = quantize_queries(branch.user[users])
        acc = accumulate_codes(query_codes, codes)
        dequant = (query_scales * qb.scale).astype(dtype)
        part = dequant[:, None] * (
            acc.astype(dtype)
            - dtype.type(qb.zero) * query_codes.sum(axis=1).astype(dtype)[:, None]
        )
        if const is not None:
            part = part + const[None, :].astype(dtype, copy=False)
        if branch.user_const is not None:
            part = part + branch.user_const[users].astype(dtype, copy=False)[:, None]
        if branch.weight != 1.0:
            part = branch.weight * part
        total = part if total is None else total + part
    assert total is not None, "need at least one branch"
    return total


class QuantizedIndex:
    """Int8-compressed item factors over a source :class:`EmbeddingIndex`.

    Wraps (not copies) the source index: user factors, branch constants,
    catalog metadata, and exclusions are shared; only the item factors are
    replaced by int8 codes — a ~4x (float32) / ~8x (float64) item-side
    memory reduction.  Used standalone it is a full-scan approximate ANN
    index (:meth:`search`); inside :class:`~repro.serving.ann.IVFIndex` it
    supplies the ``int8`` fine-stage scorer.
    """

    def __init__(self, index, quantized: List[QuantizedBranch]) -> None:
        if len(quantized) != len(index.branches):
            raise ValueError(
                f"{len(quantized)} quantized branches for an index with "
                f"{len(index.branches)}"
            )
        for branch, qb in zip(index.branches, quantized):
            if qb.q_item.shape != branch.item.shape:
                raise ValueError("quantized codes disagree with branch factor shapes")
            if qb.q_item.dtype != np.dtype(np.int8):
                raise ValueError("quantized codes must be int8")
        self.index = index
        self.quantized = quantized
        self.n_users = index.n_users
        self.n_items = index.n_items
        self.dtype = branches_dtype(index.branches)

    @classmethod
    def build(cls, index) -> "QuantizedIndex":
        """Quantize every branch of ``index`` (per-branch scale/zero-point)."""
        return cls(index, [quantize_items(branch.item) for branch in index.branches])

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, users: np.ndarray) -> np.ndarray:
        """Approximate dense ``(len(users), n_items)`` scores, index dtype."""
        return self.score_block(users, 0, self.n_items)

    def score_block(self, users: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Approximate scores against the item block ``[start, stop)``."""
        return score_quantized_block(
            self.index.branches,
            self.quantized,
            [qb.q_item[start:stop] for qb in self.quantized],
            [
                None if b.item_const is None else b.item_const[start:stop]
                for b in self.index.branches
            ],
            users,
            self.dtype,
        )

    # ------------------------------------------------------------------
    # ANN search surface (shared contract with IVFIndex.search)
    # ------------------------------------------------------------------
    def search(
        self,
        users: np.ndarray,
        k: int,
        nprobe: Optional[int] = None,
        exclude_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        candidate_mask: Optional[np.ndarray] = None,
        tracer=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Full-scan approximate top-``k``; ``nprobe`` is accepted and ignored.

        Returns dense ``(len(users), k)`` ``(ids, scores)``; entries past a
        user's unmasked pool are padded with id ``-1`` / score ``-inf``,
        the same sentinel contract as the batch runtime.
        """
        users = np.asarray(users, dtype=np.int64)
        k = min(int(k), self.n_items)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if len(users) == 0:
            return np.empty((0, k), dtype=np.int64), np.empty((0, k), dtype=self.dtype)
        with maybe_span(tracer, "ann.fine", cat="ann", attrs={"scorer": "int8"}):
            scores = self.score(users)
            if candidate_mask is not None:
                scores[:, ~np.asarray(candidate_mask, dtype=bool)] = NEG_INF
            if exclude_csr is not None:
                rows, cols = expand_csr_rows(*exclude_csr, users)
                if rows is not None:
                    scores[rows, cols] = NEG_INF
        with maybe_span(tracer, "ann.merge", cat="ann"):
            top = topk_indices_rows(scores, k).astype(np.int64, copy=False)
            top_scores = np.take_along_axis(scores, top, axis=1)
        masked = candidate_mask is not None or exclude_csr is not None
        if masked:
            top = np.where(top_scores > NEG_INF, top, -1)
        return top, top_scores

    # ------------------------------------------------------------------
    # Memory accounting (shared report shape across ANN index kinds)
    # ------------------------------------------------------------------
    kind = "int8"

    def memory_bytes(self) -> int:
        """Item-side footprint of the int8 codes."""
        return sum(qb.q_item.nbytes for qb in self.quantized)

    @property
    def bytes_total(self) -> int:
        """Everything this index owns (the codes; scales/zeros are scalars)."""
        return int(self.memory_bytes())

    @property
    def bytes_per_item(self) -> float:
        """Item-side bytes per catalog item."""
        return self.memory_bytes() / max(1, self.n_items)

    def memory_report(self) -> dict:
        total = self.bytes_total
        return {
            "kind": self.kind,
            "bytes_total": int(total),
            "bytes_per_item": float(self.bytes_per_item),
            "tiers": {"hot": int(total), "cold": 0},
        }

    def quantization_params(self) -> List[Dict]:
        return [
            {"scale": float(qb.scale), "zero": int(qb.zero)} for qb in self.quantized
        ]

    # ------------------------------------------------------------------
    # Serialization (same archive layer as EmbeddingIndex)
    # ------------------------------------------------------------------
    def save(self, path: str, format: str = "npz") -> str:
        """Persist the codes; user-side data stays with the source index."""
        if format not in ("npz", "dir"):
            raise ValueError(f"format must be 'npz' or 'dir', got {format!r}")
        arrays = {f"branch{i}.q_item": qb.q_item for i, qb in enumerate(self.quantized)}
        metadata = {
            persistence.KIND_KEY: QUANTIZED_KIND,
            "format_version": FORMAT_VERSION,
            "model_name": self.index.model_name,
            "n_users": self.n_users,
            "n_items": self.n_items,
            "branches": self.quantization_params(),
        }
        if format == "dir":
            return persistence.write_archive_dir(path, arrays, metadata)
        return persistence.write_archive(path, arrays, metadata)

    @classmethod
    def load(cls, path: str, index, mmap: bool = False) -> "QuantizedIndex":
        """Re-attach saved codes to their source :class:`EmbeddingIndex`."""
        metadata = persistence.read_archive_metadata(path)
        kind = persistence.archive_kind(metadata)
        if kind != QUANTIZED_KIND:
            raise ValueError(f"{path} holds a {kind!r} artifact, not a quantized index")
        if metadata["format_version"] > FORMAT_VERSION:
            raise ValueError(
                f"quantized-index format v{metadata['format_version']} is newer "
                f"than this reader (v{FORMAT_VERSION})"
            )
        if metadata["n_items"] != index.n_items or metadata["n_users"] != index.n_users:
            raise ValueError(
                f"quantized index was built for {metadata['n_users']} users x "
                f"{metadata['n_items']} items, not this index's "
                f"{index.n_users} x {index.n_items}"
            )
        arrays = persistence.read_archive_arrays(path, mmap=mmap)
        quantized = [
            QuantizedBranch(
                q_item=arrays[f"branch{i}.q_item"],
                scale=float(meta["scale"]),
                zero=int(meta["zero"]),
            )
            for i, meta in enumerate(metadata["branches"])
        ]
        return cls(index, quantized)
