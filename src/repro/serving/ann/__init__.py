"""Approximate retrieval: int8-quantized embeddings + IVF two-stage search.

Exact full-catalog retrieval costs one dense matmul over every item per
request — linear in catalog size, which caps throughput no matter how
parallel the runtime gets.  This package is the standard production
answer, built natively on the repo's numpy substrate:

* :class:`QuantizedIndex` — int8 scalar quantization of the item factors
  (per-branch scale/zero-point, integer-accumulated scoring): ~4-8x less
  item-side memory, usable standalone as a full-scan approximate index or
  as the IVF fine-stage ``int8`` scorer;
* :class:`IVFIndex` (:func:`build_ivf`) — a k-means coarse quantizer with
  contiguous per-list storage and a two-stage search that re-ranks the
  probed pool *exactly* in the index dtype, so ``nprobe`` trades recall
  for time along a measured curve and full probe is bit-identical to
  exact search.

Quickstart::

    from repro.serving import RecommenderService, export_index
    from repro.serving.ann import build_ivf

    index = export_index(trained_model, dataset)
    ann = build_ivf(index)                     # ~sqrt(n)/2 lists, nprobe = 1/8
    service = RecommenderService(index, ann=ann)
    service.recommend(user=42)                 # two-stage, filters at re-rank

``benchmarks/bench_ann.py`` sweeps ``nprobe`` x {exact, int8} fine scoring
and commits the recall/speedup curve (``BENCH_ann.json``); CI gates the
default operating point at recall@50 >= 0.95 and fails on speed
regressions.
"""

from .ivf import IVFIndex, build_ivf, combined_item_vectors, default_n_lists, default_nprobe
from .kmeans import kmeans
from .quantize import (
    QuantizedBranch,
    QuantizedIndex,
    accumulate_codes,
    quantize_items,
    quantize_queries,
)

__all__ = [
    "IVFIndex",
    "build_ivf",
    "combined_item_vectors",
    "default_n_lists",
    "default_nprobe",
    "kmeans",
    "QuantizedBranch",
    "QuantizedIndex",
    "accumulate_codes",
    "quantize_items",
    "quantize_queries",
]
