"""Approximate retrieval: quantized embeddings + IVF two-stage search.

Exact full-catalog retrieval costs one dense matmul over every item per
request — linear in catalog size, which caps throughput no matter how
parallel the runtime gets.  This package is the standard production
answer, built natively on the repo's numpy substrate, as a compression
ladder:

* :class:`QuantizedIndex` — int8 scalar quantization of the item factors
  (per-branch scale/zero-point, integer-accumulated scoring): ~4-8x less
  item-side memory, usable standalone as a full-scan approximate index or
  as the IVF fine-stage ``int8`` scorer;
* :class:`PQIndex` (:func:`build_pq`) — per-branch product-quantization
  codebooks (subspace k-means, uint8 codes, ADC lookup-table scoring
  with a mandatory exact re-rank): 16-64x less item-side memory, plus an
  optional learned OPQ-style rotation;
* :class:`IVFIndex` (:func:`build_ivf`) — a k-means coarse quantizer with
  contiguous per-list storage and a two-stage search that re-ranks the
  probed pool *exactly* in the index dtype, so ``nprobe`` trades recall
  for time along a measured curve and full probe is bit-identical to
  exact search; ``build_ivf(..., pq=True)`` makes PQ the fine stage;
* :class:`TieredIVFIndex` (:class:`TieredIndexConfig`) — the same IVF
  search over an mmap dir archive, with the heaviest-probed lists
  resident in RAM and everything else OS-paged under an explicit memory
  ceiling: the 1M+ item layout.

Quickstart::

    from repro.serving import RecommenderService, export_index
    from repro.serving.ann import build_ivf

    index = export_index(trained_model, dataset)
    ann = build_ivf(index, pq=True)            # ADC candidates + exact re-rank
    service = RecommenderService(index, ann=ann)
    service.recommend(user=42)                 # two-stage, filters at re-rank

``benchmarks/bench_ann.py`` sweeps ``nprobe`` x {exact, int8, pq} fine
scoring plus the tiered 1M-item layout and commits the
recall/speedup/memory curve (``BENCH_ann.json``); CI gates the default
operating point at recall@50 >= 0.95, recall@10 per arm, the declared
memory ceiling, and fails on speed regressions.
"""

from .ivf import IVFIndex, build_ivf, combined_item_vectors, default_n_lists, default_nprobe
from .kmeans import assign_labels, kmeans
from .pq import (
    PQBranch,
    PQIndex,
    build_pq,
    score_candidates_exact,
    score_pq_block,
    subspace_splits,
)
from .quantize import (
    QuantizedBranch,
    QuantizedIndex,
    accumulate_codes,
    quantize_items,
    quantize_queries,
)
from .tiered import TieredIndexConfig, TieredIVFIndex

__all__ = [
    "IVFIndex",
    "build_ivf",
    "combined_item_vectors",
    "default_n_lists",
    "default_nprobe",
    "assign_labels",
    "kmeans",
    "PQBranch",
    "PQIndex",
    "build_pq",
    "score_candidates_exact",
    "score_pq_block",
    "subspace_splits",
    "QuantizedBranch",
    "QuantizedIndex",
    "accumulate_codes",
    "quantize_items",
    "quantize_queries",
    "TieredIndexConfig",
    "TieredIVFIndex",
]
