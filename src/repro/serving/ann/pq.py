"""Product quantization of frozen item factors.

Scalar int8 (:mod:`.quantize`) compresses each item-factor *element* to
one byte — a 4-8x ceiling.  Product quantization compresses whole
*subvectors*: each branch's ``(n_items, d)`` factors are split into
``M = ceil(d / subspace_dim)`` subspaces, a k-means codebook of at most
256 centroids is trained per subspace (the existing pure-NumPy
:func:`~.kmeans.kmeans` with kmeans++ seeding), and every item is stored
as ``M`` uint8 codes — ``M`` bytes instead of ``4d``/``8d``, a 16-64x
item-side reduction at ``subspace_dim`` 4-8.

Scoring is **ADC** (asymmetric distance computation): the query stays
exact, and per query row one lookup table per subspace is built as
``LUT_m = u_m @ codebook_m.T``; the approximate inner product of a block
of items is then ``sum_m LUT_m[:, codes[:, m]]`` — pure table gathers, no
per-item arithmetic in ``d``.  Branch constants and weights are applied
exactly, mirroring :func:`~repro.core.base.score_branches`, so PQ error
comes only from the factor-product term.

PQ error is larger than int8 error, which is why a :class:`PQIndex` (and
the ``pq`` fine-stage arm of :class:`~.ivf.IVFIndex`) always **re-ranks**
an over-fetched candidate pool with the exact ``score_branches`` kernel
before returning: ADC decides *which* ``rerank_factor * k`` candidates to
look at, exact scoring decides their order.  The recall harness in
:mod:`repro.eval.ann` measures (not assumes) what survives.

An optional OPQ-style **learned rotation** per branch aligns the factor
axes with the subspace grid before splitting: alternate PQ training with
the orthogonal-Procrustes solution ``R = U V^T`` of
``SVD(X^T X_hat)``.  Rotations are orthogonal, so rotating both queries
and items preserves inner products exactly and only the quantization
error changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...core.base import ScoreBranch, branches_dtype
from ...data.dataset import expand_csr_rows
from ...eval.topk import NEG_INF, topk_indices_rows, topk_pairs_rows
from ...obs.trace import maybe_span
from ...train import persistence
from .kmeans import assign_labels, kmeans

PQ_KIND = "pq_index"

#: bump when the array layout changes incompatibly
FORMAT_VERSION = 1

#: uint8 codes: a codebook can never exceed this many centroids
MAX_CENTROIDS = 256

#: cap on the (users x candidates x dim) gather one exact re-rank chunk
#: may materialize (index-dtype elements)
_RERANK_CHUNK_ELEMENTS = 8_000_000


def subspace_splits(d: int, subspace_dim: int) -> List[Tuple[int, int]]:
    """``[(start, stop), ...]`` column ranges splitting ``d`` dims into
    ``ceil(d / subspace_dim)`` near-equal subspaces (first ones wider when
    ``d`` does not divide evenly — the :func:`numpy.array_split` layout)."""
    if subspace_dim < 1:
        raise ValueError(f"subspace_dim must be >= 1, got {subspace_dim}")
    n_sub = max(1, -(-d // int(subspace_dim)))
    bounds = np.linspace(0, d, n_sub + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(n_sub)]


@dataclass
class PQBranch:
    """PQ codebooks + codes for one branch's item factors.

    ``codebooks[m]`` is ``(n_centroids_m, sub_dim_m)`` float64;
    ``codes`` is ``(n_items, M)`` uint8.  ``rotation`` (optional,
    ``(d, d)`` float64, orthogonal) was applied to the item factors
    *before* splitting — queries must be rotated the same way, which
    :func:`score_pq_block` does.  Reconstruction lives in the rotated
    space; ``dequantized`` rotates it back.
    """

    codebooks: List[np.ndarray]
    codes: np.ndarray
    rotation: Optional[np.ndarray] = None
    splits: List[Tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.codes.dtype != np.dtype(np.uint8):
            raise ValueError("PQ codes must be uint8")
        if self.codes.shape[1] != len(self.codebooks):
            raise ValueError("one code column per codebook")
        if not self.splits:
            start = 0
            self.splits = []
            for cb in self.codebooks:
                self.splits.append((start, start + cb.shape[1]))
                start += cb.shape[1]

    @property
    def n_subspaces(self) -> int:
        return len(self.codebooks)

    @property
    def d(self) -> int:
        return self.splits[-1][1]

    def code_bytes(self) -> int:
        return int(self.codes.nbytes)

    def table_bytes(self) -> int:
        total = sum(cb.nbytes for cb in self.codebooks)
        if self.rotation is not None:
            total += self.rotation.nbytes
        return int(total)

    def dequantized(self, dtype=np.float64) -> np.ndarray:
        """Reconstructed item factors in the *original* (unrotated) axes."""
        out = np.empty((self.codes.shape[0], self.d), dtype=np.float64)
        for m, cb in enumerate(self.codebooks):
            lo, hi = self.splits[m]
            out[:, lo:hi] = cb[self.codes[:, m]]
        if self.rotation is not None:
            out = out @ self.rotation.T
        return out.astype(dtype, copy=False)


def _train_codebooks(
    train: np.ndarray,
    splits: Sequence[Tuple[int, int]],
    n_centroids: int,
    seed: int,
    iters: int,
    tol: float,
) -> List[np.ndarray]:
    """One k-means codebook per subspace of the (already rotated) sample.

    Each subspace gets its own derived seed so codebooks are independent
    draws but the whole training run stays deterministic in ``seed``.
    """
    codebooks = []
    for m, (lo, hi) in enumerate(splits):
        centroids, _ = kmeans(
            np.ascontiguousarray(train[:, lo:hi]),
            min(int(n_centroids), train.shape[0]),
            seed=seed + 7919 * (m + 1),
            iters=iters,
            tol=tol,
        )
        codebooks.append(centroids)
    return codebooks


def _assign_codes(
    items: np.ndarray, codebooks: Sequence[np.ndarray], splits: Sequence[Tuple[int, int]]
) -> np.ndarray:
    """Nearest-centroid codes for the full (rotated) catalog, uint8."""
    codes = np.empty((items.shape[0], len(codebooks)), dtype=np.uint8)
    for m, (lo, hi) in enumerate(splits):
        labels, _ = assign_labels(np.ascontiguousarray(items[:, lo:hi]), codebooks[m])
        codes[:, m] = labels.astype(np.uint8)
    return codes


def _reconstruct(codes: np.ndarray, codebooks, splits) -> np.ndarray:
    out = np.empty((codes.shape[0], splits[-1][1]), dtype=np.float64)
    for m, (lo, hi) in enumerate(splits):
        out[:, lo:hi] = codebooks[m][codes[:, m]]
    return out


def _train_rotation(
    train: np.ndarray,
    splits: Sequence[Tuple[int, int]],
    n_centroids: int,
    seed: int,
    iters: int,
    tol: float,
    rounds: int = 3,
) -> np.ndarray:
    """OPQ-style alternating optimization of an orthogonal rotation.

    Alternates (a) PQ codebook training on the rotated sample with (b) the
    orthogonal-Procrustes update ``R = U V^T`` from ``SVD(X^T X_hat)``,
    which minimizes ``|X R - X_hat|_F`` over orthogonal ``R``.  A few
    rounds capture most of the gain; training is offline, so this stays
    deliberately simple.
    """
    d = train.shape[1]
    rotation = np.eye(d)
    for _ in range(max(1, int(rounds))):
        rotated = train @ rotation
        codebooks = _train_codebooks(rotated, splits, n_centroids, seed, iters, tol)
        codes = _assign_codes(rotated, codebooks, splits)
        reconstructed = _reconstruct(codes, codebooks, splits)
        u, _, vt = np.linalg.svd(train.T @ reconstructed)
        rotation = u @ vt
    return rotation


def build_pq_branch(
    item: np.ndarray,
    subspace_dim: int = 4,
    n_centroids: int = 256,
    rotation: bool = False,
    seed: int = 0,
    iters: int = 25,
    tol: float = 1e-4,
    train_sample: Optional[int] = None,
) -> PQBranch:
    """Train PQ (optionally OPQ) for one branch's ``(n_items, d)`` factors.

    Codebooks are trained on at most ``train_sample`` rows (a seeded
    uniform subsample) and the *full* catalog is then coded in one chunked
    assignment pass — training cost stays bounded for 1M+ catalogs while
    every item still gets its true nearest centroid.
    """
    if not 1 <= n_centroids <= MAX_CENTROIDS:
        raise ValueError(f"n_centroids must be in [1, {MAX_CENTROIDS}], got {n_centroids}")
    item = np.asarray(item, dtype=np.float64)
    n, d = item.shape
    splits = subspace_splits(d, subspace_dim)
    rng = np.random.default_rng(seed)
    if train_sample is not None and n > int(train_sample):
        sample = np.sort(rng.choice(n, int(train_sample), replace=False))
        train = item[sample]
    else:
        train = item
    rot = None
    if rotation:
        rot = _train_rotation(train, splits, n_centroids, seed, iters, tol)
        train = train @ rot
        item = item @ rot
    codebooks = _train_codebooks(train, splits, n_centroids, seed, iters, tol)
    codes = _assign_codes(item, codebooks, splits)
    return PQBranch(codebooks=codebooks, codes=codes, rotation=rot, splits=splits)


def score_pq_block(
    branches: Sequence[ScoreBranch],
    pq_branches: Sequence[PQBranch],
    code_blocks: Sequence[np.ndarray],
    item_consts: Sequence[Optional[np.ndarray]],
    users: np.ndarray,
    dtype: np.dtype,
    means: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> np.ndarray:
    """ADC scores of ``users`` against pre-sliced item code blocks.

    ``code_blocks[b]`` / ``item_consts[b]`` are the branch-``b`` codes and
    (exact) item constants of the block being scored — a catalog slice for
    :meth:`PQIndex.score_block`, a permuted per-list slice for the IVF
    fine stage.  Per branch, one float64 lookup table per subspace is
    built from the exact user rows (rotated first when the branch carries
    an OPQ rotation), the block score is the gathered table sum, and
    constants/weights are applied exactly — the same shape as
    :func:`~.quantize.score_quantized_block`.

    ``means[b]``, when given, is a ``(d,)`` vector the branch-``b`` codes
    were *residual-encoded* against (IVF fine stage: the probed list's
    mean factor row).  Every item in the block then scores as
    ``u·mean + ADC(residual codes)`` — the mean dot uses the unrotated
    user row, since an OPQ rotation applies to the residual space only.
    """
    users = np.asarray(users, dtype=np.int64)
    dtype = np.dtype(dtype)
    total: Optional[np.ndarray] = None
    if means is None:
        means = [None] * len(branches)
    for branch, pb, codes, const, mean in zip(
        branches, pq_branches, code_blocks, item_consts, means
    ):
        u_raw = np.asarray(branch.user[users], dtype=np.float64)
        u = u_raw @ pb.rotation if pb.rotation is not None else u_raw
        part64: Optional[np.ndarray] = None
        for m, cb in enumerate(pb.codebooks):
            lo, hi = pb.splits[m]
            lut = u[:, lo:hi] @ cb.T  # (rows, n_centroids_m)
            term = lut[:, codes[:, m]]
            part64 = term if part64 is None else part64 + term
        if mean is not None:
            part64 = part64 + (u_raw @ np.asarray(mean, dtype=np.float64))[:, None]
        part = part64.astype(dtype, copy=False)
        if const is not None:
            part = part + const[None, :].astype(dtype, copy=False)
        if branch.user_const is not None:
            part = part + branch.user_const[users].astype(dtype, copy=False)[:, None]
        if branch.weight != 1.0:
            part = branch.weight * part
        total = part if total is None else total + part
    assert total is not None, "need at least one branch"
    return total


def score_candidates_exact(
    branches: Sequence[ScoreBranch],
    users: np.ndarray,
    candidates: np.ndarray,
    dtype: np.dtype,
) -> np.ndarray:
    """Exact scores of per-user candidate id matrices (the re-rank kernel).

    ``candidates`` is ``(len(users), m)`` global item ids.  Semantics
    mirror :func:`~repro.core.base.score_branches` — per-branch gathered
    dot products plus exact constants and weights — but against a ragged
    per-user candidate set instead of a contiguous block, so the product
    is a gather-einsum.  Chunked over users to bound the ``(chunk, m, d)``
    gather.
    """
    users = np.asarray(users, dtype=np.int64)
    candidates = np.asarray(candidates, dtype=np.int64)
    dtype = np.dtype(dtype)
    n, m = candidates.shape
    out = np.zeros((n, m), dtype=dtype)
    widest = max(int(b.item.shape[1]) for b in branches)
    chunk = max(1, _RERANK_CHUNK_ELEMENTS // max(m * widest, 1))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        u_sel = users[start:stop]
        cand = candidates[start:stop]
        total: Optional[np.ndarray] = None
        for branch in branches:
            u = branch.user[u_sel].astype(dtype, copy=False)
            gathered = branch.item[cand].astype(dtype, copy=False)
            part = np.einsum("nd,ncd->nc", u, gathered)
            if branch.item_const is not None:
                part = part + branch.item_const[cand].astype(dtype, copy=False)
            if branch.user_const is not None:
                part = part + branch.user_const[u_sel].astype(dtype, copy=False)[:, None]
            if branch.weight != 1.0:
                part = branch.weight * part
            total = part if total is None else total + part
        out[start:stop] = total
    return out


class PQIndex:
    """PQ-compressed item factors over a source :class:`EmbeddingIndex`.

    Wraps (not copies) the source index: user factors, constants, and
    catalog metadata are shared; item factors are replaced by ``M`` uint8
    codes per branch — 16-64x item-side compression.  Standalone it is a
    full-scan approximate ANN index whose :meth:`search` always re-ranks
    the top ``rerank_factor * k`` ADC candidates with the exact kernel;
    inside :class:`~.ivf.IVFIndex` it supplies the ``pq`` fine-stage
    scorer (the IVF search owns the re-rank there).
    """

    kind = "pq"
    scorers = ("pq",)
    default_scorer = "pq"

    def __init__(
        self,
        index,
        pq: List[PQBranch],
        rerank_factor: int = 8,
        residual: bool = False,
    ) -> None:
        if len(pq) != len(index.branches):
            raise ValueError(
                f"{len(pq)} PQ branches for an index with {len(index.branches)}"
            )
        for branch, pb in zip(index.branches, pq):
            if pb.codes.shape[0] != branch.item.shape[0]:
                raise ValueError("PQ codes disagree with branch item counts")
            if pb.d != branch.item.shape[1]:
                raise ValueError("PQ subspaces disagree with branch factor dims")
        self.index = index
        self.pq = pq
        self.rerank_factor = max(1, int(rerank_factor))
        #: True when the codes encode residuals against per-IVF-list means
        #: (an :class:`~.ivf.IVFIndex` companion).  Such codes only score
        #: correctly with the owning IVF's list means — standalone scoring
        #: is refused rather than silently wrong.
        self.residual = bool(residual)
        self.n_users = index.n_users
        self.n_items = index.n_items
        self.dtype = branches_dtype(index.branches)

    @classmethod
    def build(
        cls,
        index,
        subspace_dim: int = 4,
        n_centroids: int = 256,
        rotation: bool = False,
        seed: int = 0,
        iters: int = 25,
        tol: float = 1e-4,
        train_sample: Optional[int] = None,
        rerank_factor: int = 8,
    ) -> "PQIndex":
        """Train per-branch PQ codebooks for every branch of ``index``."""
        pq = [
            build_pq_branch(
                branch.item,
                subspace_dim=subspace_dim,
                n_centroids=n_centroids,
                rotation=rotation,
                seed=seed + 104729 * b,
                iters=iters,
                tol=tol,
                train_sample=train_sample,
            )
            for b, branch in enumerate(index.branches)
        ]
        return cls(index, pq, rerank_factor=rerank_factor)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, users: np.ndarray) -> np.ndarray:
        """Approximate dense ``(len(users), n_items)`` ADC scores."""
        return self.score_block(users, 0, self.n_items)

    def score_block(self, users: np.ndarray, start: int, stop: int) -> np.ndarray:
        """ADC scores against the item block ``[start, stop)``."""
        if self.residual:
            raise ValueError(
                "this PQIndex holds residual codes (an IVF companion); "
                "score them through the owning IVFIndex, not standalone"
            )
        return score_pq_block(
            self.index.branches,
            self.pq,
            [pb.codes[start:stop] for pb in self.pq],
            [
                None if b.item_const is None else b.item_const[start:stop]
                for b in self.index.branches
            ],
            users,
            self.dtype,
        )

    # ------------------------------------------------------------------
    # ANN search surface (shared contract with QuantizedIndex / IVFIndex)
    # ------------------------------------------------------------------
    def search(
        self,
        users: np.ndarray,
        k: int,
        nprobe: Optional[int] = None,
        exclude_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        candidate_mask: Optional[np.ndarray] = None,
        tracer=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Full-scan ADC top candidates, exact re-rank, top-``k``.

        ``nprobe`` is accepted and ignored (no coarse stage).  Masks apply
        at the ADC stage, *before* candidate selection, so an excluded or
        filtered item can never be resurrected by its exact re-rank score.
        Returns dense ``(len(users), k)`` ``(ids, scores)`` with the
        ``-1`` / ``-inf`` sentinel contract, scores exact for every
        non-sentinel entry.
        """
        users = np.asarray(users, dtype=np.int64)
        k = min(int(k), self.n_items)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if len(users) == 0:
            return np.empty((0, k), dtype=np.int64), np.empty((0, k), dtype=self.dtype)
        with maybe_span(tracer, "ann.fine.adc", cat="ann", attrs={"scorer": "pq"}):
            scores = self.score(users)
            if candidate_mask is not None:
                scores[:, ~np.asarray(candidate_mask, dtype=bool)] = NEG_INF
            if exclude_csr is not None:
                rows, cols = expand_csr_rows(*exclude_csr, users)
                if rows is not None:
                    scores[rows, cols] = NEG_INF
            m = min(self.rerank_factor * k, self.n_items)
            cand = topk_indices_rows(scores, m).astype(np.int64, copy=False)
            cand_adc = np.take_along_axis(scores, cand, axis=1)
        with maybe_span(
            tracer, "ann.rerank", cat="ann", attrs={"candidates": int(cand.shape[1])}
        ):
            valid = cand_adc > NEG_INF
            exact = score_candidates_exact(self.index.branches, users, cand, self.dtype)
            exact = np.where(valid, exact, self.dtype.type(NEG_INF))
            merge_ids = np.where(valid, cand, self.n_items)
        with maybe_span(tracer, "ann.merge", cat="ann"):
            sel = topk_pairs_rows(merge_ids, exact, k)
            top_ids = np.take_along_axis(merge_ids, sel, axis=1)
            top_scores = np.take_along_axis(exact, sel, axis=1)
            top_ids = np.where(top_scores > NEG_INF, top_ids, -1)
        return top_ids, top_scores

    # ------------------------------------------------------------------
    # Memory accounting (shared report shape across ANN index kinds)
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Item-side footprint of the uint8 codes."""
        return sum(pb.code_bytes() for pb in self.pq)

    @property
    def bytes_total(self) -> int:
        """Everything this index owns: codes + codebooks + rotations."""
        return self.memory_bytes() + sum(pb.table_bytes() for pb in self.pq)

    @property
    def bytes_per_item(self) -> float:
        """Item-side bytes per catalog item (codes only)."""
        return self.memory_bytes() / max(1, self.n_items)

    def memory_report(self) -> dict:
        total = self.bytes_total
        return {
            "kind": self.kind,
            "bytes_total": int(total),
            "bytes_per_item": float(self.bytes_per_item),
            "tiers": {"hot": int(total), "cold": 0},
        }

    # ------------------------------------------------------------------
    # Serialization (same archive layer as EmbeddingIndex)
    # ------------------------------------------------------------------
    def save(self, path: str, format: str = "npz") -> str:
        """Persist codes + codebooks; user-side data stays with the index."""
        if format not in ("npz", "dir"):
            raise ValueError(f"format must be 'npz' or 'dir', got {format!r}")
        arrays = {}
        branch_meta = []
        for i, pb in enumerate(self.pq):
            arrays[f"branch{i}.codes"] = pb.codes
            for m, cb in enumerate(pb.codebooks):
                arrays[f"branch{i}.codebook{m}"] = cb
            if pb.rotation is not None:
                arrays[f"branch{i}.rotation"] = pb.rotation
            branch_meta.append(
                {
                    "n_subspaces": pb.n_subspaces,
                    "splits": [[int(lo), int(hi)] for lo, hi in pb.splits],
                    "rotation": pb.rotation is not None,
                }
            )
        metadata = {
            persistence.KIND_KEY: PQ_KIND,
            "format_version": FORMAT_VERSION,
            "model_name": self.index.model_name,
            "n_users": self.n_users,
            "n_items": self.n_items,
            "rerank_factor": self.rerank_factor,
            "branches": branch_meta,
        }
        if format == "dir":
            return persistence.write_archive_dir(path, arrays, metadata)
        return persistence.write_archive(path, arrays, metadata)

    @classmethod
    def load(cls, path: str, index, mmap: bool = False) -> "PQIndex":
        """Re-attach saved PQ data to its source :class:`EmbeddingIndex`."""
        metadata = persistence.read_archive_metadata(path)
        kind = persistence.archive_kind(metadata)
        if kind != PQ_KIND:
            raise ValueError(f"{path} holds a {kind!r} artifact, not a PQ index")
        if metadata["format_version"] > FORMAT_VERSION:
            raise ValueError(
                f"PQ format v{metadata['format_version']} is newer than this "
                f"reader (v{FORMAT_VERSION})"
            )
        if metadata["n_items"] != index.n_items or metadata["n_users"] != index.n_users:
            raise ValueError(
                f"PQ index was built for {metadata['n_users']} users x "
                f"{metadata['n_items']} items, not this index's "
                f"{index.n_users} x {index.n_items}"
            )
        arrays = persistence.read_archive_arrays(path, mmap=mmap)
        pq = [
            PQBranch(
                codebooks=[
                    np.asarray(arrays[f"branch{i}.codebook{m}"], dtype=np.float64)
                    for m in range(int(meta["n_subspaces"]))
                ],
                codes=np.ascontiguousarray(arrays[f"branch{i}.codes"]),
                rotation=(
                    np.asarray(arrays[f"branch{i}.rotation"], dtype=np.float64)
                    if meta.get("rotation")
                    else None
                ),
                splits=[(int(lo), int(hi)) for lo, hi in meta["splits"]],
            )
            for i, meta in enumerate(metadata["branches"])
        ]
        return cls(index, pq, rerank_factor=int(metadata.get("rerank_factor", 8)))


def build_pq(
    index,
    subspace_dim: int = 4,
    n_centroids: int = 256,
    rotation: bool = False,
    seed: int = 0,
    iters: int = 25,
    tol: float = 1e-4,
    train_sample: Optional[int] = None,
    rerank_factor: int = 8,
) -> PQIndex:
    """Convenience wrapper over :meth:`PQIndex.build` (mirrors ``build_ivf``)."""
    return PQIndex.build(
        index,
        subspace_dim=subspace_dim,
        n_centroids=n_centroids,
        rotation=rotation,
        seed=seed,
        iters=iters,
        tol=tol,
        train_sample=train_sample,
        rerank_factor=rerank_factor,
    )
