"""Serving-side observability: latency percentiles, QPS, cache hit rate.

Pure in-process counters — no clock is consulted unless the service records
into them, and the clock itself is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, Optional

import numpy as np


class LatencyRecorder:
    """Sliding window of request latencies (seconds) with percentiles."""

    def __init__(self, window: int = 8192) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._samples: deque = deque(maxlen=window)

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """q-th percentile latency in seconds (0 when nothing recorded)."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.fromiter(self._samples, dtype=np.float64), q))

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return float(np.mean(np.fromiter(self._samples, dtype=np.float64)))


class ServingStats:
    """Counters the :class:`~repro.serving.service.RecommenderService` keeps."""

    def __init__(self, clock: Optional[Callable[[], float]] = None, window: int = 8192) -> None:
        self._clock = clock or time.perf_counter
        self.started_at = self._clock()
        self.requests = 0
        self.warm_requests = 0
        self.cold_requests = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.items_scored = 0
        self.latency = LatencyRecorder(window=window)

    # ------------------------------------------------------------------
    def record_request(self, warm: bool) -> None:
        self.requests += 1
        if warm:
            self.warm_requests += 1
        else:
            self.cold_requests += 1

    def record_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def record_batch(self, n_requests: int, n_items_scored: int, seconds: float) -> None:
        """Account one executed batch.

        Every request in a batch completes when the batch does, so each one
        records the full batch duration as its latency — percentiles then
        reflect real completion times (tail batches show up in p99) rather
        than an averaged-down ``seconds / n``.  Queue wait before the flush
        is not included.  Throughput is tracked separately via :meth:`qps`.
        """
        self.batches += 1
        self.items_scored += n_items_scored
        for _ in range(n_requests):
            self.latency.record(seconds)

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return max(self._clock() - self.started_at, 1e-12)

    def qps(self) -> float:
        return self.requests / self.elapsed()

    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def snapshot(self) -> Dict[str, float]:
        """One flat dict for logging/dashboards."""
        return {
            "requests": float(self.requests),
            "warm_requests": float(self.warm_requests),
            "cold_requests": float(self.cold_requests),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_hit_rate": self.cache_hit_rate(),
            "batches": float(self.batches),
            "items_scored": float(self.items_scored),
            "qps": self.qps(),
            "latency_p50_ms": self.latency.percentile(50) * 1e3,
            "latency_p99_ms": self.latency.percentile(99) * 1e3,
            "latency_mean_ms": self.latency.mean() * 1e3,
            "elapsed_s": self.elapsed(),
        }
