"""Serving-side observability: latency percentiles, QPS, cache hit rate.

Since the observability layer landed, :class:`ServingStats` is backed by a
:class:`~repro.obs.metrics.MetricsRegistry` — every count and latency the
service records lands in named registry series (``serving_requests_total``,
``serving_request_latency_seconds``, ...) so a ``/metrics`` endpoint or a
cross-process merge sees exactly what :meth:`ServingStats.snapshot` reports.
The snapshot keys themselves are unchanged: dashboards and the CLI keep
reading the same 13 fields they always have.

Latency is now **end-to-end**: a request's recorded latency is its queue
wait (submit → flush) plus its batch compute time, so p50/p99 reflect what
a caller actually experienced.  The compute-only and wait-only views are
preserved as separate histograms (``serving_batch_duration_seconds``,
``serving_queue_wait_seconds``) and surfaced by
:meth:`ServingStats.extended_snapshot`.

No clock is consulted unless the service records into these counters, and
the clock itself is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..obs.metrics import MetricsRegistry
from .resilience import FALLBACK_STAGES

#: terminal request outcomes (pre-seeded so accounting series always scrape)
OUTCOMES = ("ok", "degraded", "failed")


class LatencyRecorder:
    """Sliding window of request latencies (seconds) with percentiles.

    The window gives *exact* percentiles over the last N requests — the
    complement to the registry histogram's mergeable-but-bucketed view.
    Percentile and mean results are cached until the next :meth:`record`,
    so a scrape loop hitting ``snapshot()`` repeatedly costs O(1) per
    scrape instead of rebuilding an O(window) numpy array every call.
    """

    def __init__(self, window: int = 8192) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._samples: deque = deque(maxlen=window)
        self._array: Optional[np.ndarray] = None
        self._percentiles: Dict[float, float] = {}
        self._mean: Optional[float] = None

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        self._array = None
        self._percentiles.clear()
        self._mean = None

    def __len__(self) -> int:
        return len(self._samples)

    def _values(self) -> np.ndarray:
        # Insertion order is preserved so the cached mean is bit-identical
        # to a fresh np.mean over the deque (pairwise summation is
        # order-sensitive in the last ulp).
        if self._array is None:
            self._array = np.fromiter(self._samples, dtype=np.float64)
        return self._array

    def percentile(self, q: float) -> float:
        """q-th percentile latency in seconds (0 when nothing recorded)."""
        if not self._samples:
            return 0.0
        cached = self._percentiles.get(q)
        if cached is None:
            cached = self._percentiles[q] = float(np.percentile(self._values(), q))
        return cached

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        if self._mean is None:
            self._mean = float(np.mean(self._values()))
        return self._mean


class ServingStats:
    """Counters the :class:`~repro.serving.service.RecommenderService` keeps.

    All counts live in the attached registry (shared with ``/metrics`` when
    the caller passes one in); the historical attribute API (``requests``,
    ``cache_hits``...) is preserved as read-only properties over it.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        window: int = 8192,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._clock = clock or time.perf_counter
        self.registry = registry if registry is not None else MetricsRegistry()
        self.started_at = self._clock()
        self.latency = LatencyRecorder(window=window)
        self._requests = self.registry.counter(
            "serving_requests_total", "Requests submitted, by scenario route.",
            labels=("route",),
        )
        self._cache_lookups = self.registry.counter(
            "serving_cache_lookups_total", "Result-cache lookups, by outcome.",
            labels=("result",),
        )
        self._batches = self.registry.counter(
            "serving_batches_total", "Micro-batches executed."
        )
        self._items_scored = self.registry.counter(
            "serving_items_scored_total", "Items scored across all batches."
        )
        self._latency_hist = self.registry.histogram(
            "serving_request_latency_seconds",
            "End-to-end request latency (queue wait + batch compute).",
        )
        self._batch_duration = self.registry.histogram(
            "serving_batch_duration_seconds", "Compute time of one micro-batch flush."
        )
        self._queue_wait = self.registry.histogram(
            "serving_queue_wait_seconds", "Time a request spent queued before its flush."
        )
        self._ann_index_bytes = self.registry.gauge(
            "ann_index_bytes",
            "Resident/paged bytes of the attached ANN index, by tier and kind.",
            labels=("tier", "kind"),
        )
        self._ann_tiers: Dict[str, float] = {"hot": 0.0, "cold": 0.0}
        # Pre-seed with kind="none" so the family is scrapeable before any
        # ANN index is attached (same idiom as the gateway shed series).
        self.set_ann_index_bytes({"kind": "none", "tiers": {"hot": 0, "cold": 0}})
        # Outcome + resilience accounting.  The chaos gate's invariant is
        # admitted requests == ok + degraded + failed, verified off a live
        # /metrics scrape — hence every series is pre-seeded to exist from
        # scrape one.  (The gateway_* names match the gateway-side families
        # they complete; they live here because the service resolves the
        # requests.)
        self._outcomes = self.registry.counter(
            "serving_outcomes_total", "Resolved requests, by terminal outcome.",
            labels=("outcome",),
        )
        for outcome in OUTCOMES:
            self._outcomes.labels_key((outcome,), 0)
        self._fallbacks = self.registry.counter(
            "gateway_fallbacks_total",
            "Degraded answers served, by degradation-ladder stage.",
            labels=("stage",),
        )
        for stage in FALLBACK_STAGES:
            self._fallbacks.labels_key((stage,), 0)
        self._retries = self.registry.counter(
            "gateway_retries_total", "Backend retry attempts after transient errors."
        )
        self._deadline_exceeded = self.registry.counter(
            "gateway_deadline_exceeded_total",
            "Requests failed because their deadline passed before their batch.",
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, warm: bool) -> None:
        self._requests.labels_key(("warm" if warm else "cold",), 1)

    def set_ann_index_bytes(self, report: Optional[Dict]) -> None:
        """Publish an ANN index's :meth:`memory_report` to the gauge family.

        ``report`` is the shared report shape (``kind`` + ``tiers``); pass
        ``None`` to mean "no ANN index attached" (zeros under kind
        ``none``).  Series from a previously attached index are zeroed so a
        hot swap to a different kind never leaves stale bytes behind.
        """
        if report is None:
            report = {"kind": "none", "tiers": {"hot": 0, "cold": 0}}
        kind = str(report.get("kind", "none"))
        tiers = report.get("tiers", {})
        for labels, _ in self._ann_index_bytes.items():
            if labels["kind"] != kind:
                self._ann_index_bytes.set_key((labels["tier"], labels["kind"]), 0.0)
        self._ann_tiers = {"hot": 0.0, "cold": 0.0}
        for tier in ("hot", "cold"):
            value = float(tiers.get(tier, 0))
            self._ann_index_bytes.set_key((tier, kind), value)
            self._ann_tiers[tier] = value

    def record_cache(self, hit: bool) -> None:
        self._cache_lookups.labels_key(("hit" if hit else "miss",), 1)

    def record_outcome(self, outcome: str) -> None:
        """Count one request's terminal outcome: ok, degraded, or failed."""
        self._outcomes.labels_key((outcome,), 1)

    def record_fallback(self, stage: str) -> None:
        """Count one degraded answer by its degradation-ladder stage."""
        self._fallbacks.labels_key((stage,), 1)

    def record_retry(self) -> None:
        self._retries.inc()

    def record_deadline_exceeded(self) -> None:
        self._deadline_exceeded.inc()

    def record_batch(
        self,
        n_requests: int,
        n_items_scored: int,
        seconds: float,
        queue_waits: Optional[Sequence[float]] = None,
    ) -> None:
        """Account one executed batch.

        Every request in a batch completes when the batch does, so each one
        records the full batch duration as its latency — percentiles then
        reflect real completion times (tail batches show up in p99) rather
        than an averaged-down ``seconds / n``.  ``queue_waits`` carries each
        request's time spent queued before the flush; it is added to that
        request's latency so p50/p99 are **end-to-end**, and recorded
        separately so the wait-only distribution stays visible.  Callers
        without wait information (e.g. direct benchmarks) omit it and get
        the historical compute-only behavior.
        """
        self._batches.inc()
        self._items_scored.inc(n_items_scored)
        self._batch_duration.observe(seconds)
        if queue_waits is None:
            queue_waits = [0.0] * n_requests
        elif len(queue_waits) != n_requests:
            raise ValueError(
                f"queue_waits has {len(queue_waits)} entries for {n_requests} requests"
            )
        for wait in queue_waits:
            end_to_end = seconds + max(float(wait), 0.0)
            self.latency.record(end_to_end)
            self._latency_hist.observe(end_to_end)
            self._queue_wait.observe(max(float(wait), 0.0))

    # ------------------------------------------------------------------
    # Reading (historical attribute API, now registry-backed)
    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        return int(self._requests.value(route="warm") + self._requests.value(route="cold"))

    @property
    def warm_requests(self) -> int:
        return int(self._requests.value(route="warm"))

    @property
    def cold_requests(self) -> int:
        return int(self._requests.value(route="cold"))

    @property
    def cache_hits(self) -> int:
        return int(self._cache_lookups.value(result="hit"))

    @property
    def cache_misses(self) -> int:
        return int(self._cache_lookups.value(result="miss"))

    @property
    def batches(self) -> int:
        return int(self._batches.value())

    def outcome_count(self, outcome: str) -> int:
        return int(self._outcomes.value(outcome=outcome))

    def fallback_count(self, stage: Optional[str] = None) -> int:
        if stage is not None:
            return int(self._fallbacks.value(stage=stage))
        return sum(int(self._fallbacks.value(stage=s)) for s in FALLBACK_STAGES)

    @property
    def retries(self) -> int:
        return int(self._retries.value())

    @property
    def deadline_exceeded(self) -> int:
        return int(self._deadline_exceeded.value())

    @property
    def items_scored(self) -> int:
        return int(self._items_scored.value())

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return max(self._clock() - self.started_at, 1e-12)

    def qps(self) -> float:
        return self.requests / self.elapsed()

    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def snapshot(self) -> Dict[str, float]:
        """One flat dict for logging/dashboards (keys are stable API)."""
        return {
            "requests": float(self.requests),
            "warm_requests": float(self.warm_requests),
            "cold_requests": float(self.cold_requests),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_hit_rate": self.cache_hit_rate(),
            "batches": float(self.batches),
            "items_scored": float(self.items_scored),
            "qps": self.qps(),
            "latency_p50_ms": self.latency.percentile(50) * 1e3,
            "latency_p99_ms": self.latency.percentile(99) * 1e3,
            "latency_mean_ms": self.latency.mean() * 1e3,
            "elapsed_s": self.elapsed(),
            "ann_index_bytes_hot": self._ann_tiers["hot"],
            "ann_index_bytes_cold": self._ann_tiers["cold"],
            "ann_index_bytes_total": self._ann_tiers["hot"] + self._ann_tiers["cold"],
        }

    def extended_snapshot(self) -> Dict[str, float]:
        """:meth:`snapshot` plus queue-wait/compute and outcome breakdowns."""
        out = self.snapshot()
        out.update(
            {
                "queue_wait_p50_ms": self._queue_wait.percentile(50) * 1e3,
                "queue_wait_p99_ms": self._queue_wait.percentile(99) * 1e3,
                "queue_wait_mean_ms": self._queue_wait.mean() * 1e3,
                "batch_duration_p50_ms": self._batch_duration.percentile(50) * 1e3,
                "batch_duration_p99_ms": self._batch_duration.percentile(99) * 1e3,
                "batch_duration_mean_ms": self._batch_duration.mean() * 1e3,
                "retries": float(self.retries),
                "deadline_exceeded": float(self.deadline_exceeded),
                "fallbacks": float(self.fallback_count()),
            }
        )
        for outcome in OUTCOMES:
            out[f"outcome_{outcome}"] = float(self.outcome_count(outcome))
        return out
