"""The frozen serving artifact: branch factors + item catalog + exclusions.

An :class:`EmbeddingIndex` is everything the online path needs, decoupled
from the model that produced it:

* the :class:`~repro.core.base.ScoreBranch` factors (graph propagation
  already applied — scoring is dense matmuls only);
* the item catalog columns used by candidate filters (category, price
  level, raw price);
* each user's train-positive items in CSR form (the "already bought"
  exclusion mask);
* item popularity and the global price-level profile (cold-start fallback).

Scoring reproduces :meth:`Recommender.predict_scores` bit-for-bit for every
exporting model: the branch loop applies the same operations in the same
order the models' vectorized inference paths use.

Serialization reuses the checkpoint archive layer
(:mod:`repro.train.persistence`) with its own ``kind`` tag, so checkpoints
and indexes are mutually rejecting on load.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from ..core.base import ScoreBranch, score_branches
from ..train import persistence

INDEX_KIND = "embedding_index"

#: bump when the array layout changes incompatibly
FORMAT_VERSION = 1


class EmbeddingIndex:
    """Frozen per-branch embeddings plus serving-side item/user metadata."""

    def __init__(
        self,
        branches: List[ScoreBranch],
        item_categories: np.ndarray,
        item_price_levels: np.ndarray,
        n_price_levels: int,
        n_categories: int,
        exclude_indptr: np.ndarray,
        exclude_indices: np.ndarray,
        item_popularity: np.ndarray,
        item_raw_prices: Optional[np.ndarray] = None,
        model_name: str = "unknown",
        extra: Optional[Dict] = None,
    ) -> None:
        if not branches:
            raise ValueError("an index needs at least one score branch")
        n_users = branches[0].user.shape[0]
        n_items = branches[0].item.shape[0]
        for branch in branches:
            if branch.user.shape[0] != n_users or branch.item.shape[0] != n_items:
                raise ValueError("branches disagree on user/item counts")

        self.branches = list(branches)
        self.n_users = n_users
        self.n_items = n_items
        self.model_name = model_name
        self.extra = dict(extra or {})
        #: set by :meth:`load` — lets the batch runtime re-attach workers by path
        self.source_path: Optional[str] = None
        self.source_mmap: bool = False

        self.item_categories = np.asarray(item_categories, dtype=np.int64)
        self.item_price_levels = np.asarray(item_price_levels, dtype=np.int64)
        self.n_price_levels = int(n_price_levels)
        self.n_categories = int(n_categories)
        if self.item_categories.shape != (n_items,) or self.item_price_levels.shape != (n_items,):
            raise ValueError("item attribute arrays must have shape (n_items,)")

        self.exclude_indptr = np.asarray(exclude_indptr, dtype=np.int64)
        self.exclude_indices = np.asarray(exclude_indices, dtype=np.int64)
        if self.exclude_indptr.shape != (n_users + 1,):
            raise ValueError("exclude_indptr must have shape (n_users + 1,)")

        self.item_popularity = np.asarray(item_popularity, dtype=np.float64)
        if self.item_popularity.shape != (n_items,):
            raise ValueError("item_popularity must have shape (n_items,)")
        self.item_raw_prices = (
            None if item_raw_prices is None else np.asarray(item_raw_prices, dtype=np.float64)
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, users: np.ndarray) -> np.ndarray:
        """Dense ``(len(users), n_items)`` score matrix from frozen factors."""
        return self.score_block(users, 0, self.n_items)

    def score_block(self, users: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Scores against the contiguous item block ``[start, stop)``.

        The blocked retrieval engine calls this per block so the item-side
        operands stay cache-resident; ``score`` is the single-block special
        case.  Scoring is :func:`~repro.core.base.score_branches` — the
        *same function* the live models' ``predict_scores`` runs — so
        full-range scores are bit-identical to the live model by
        construction.
        """
        return score_branches(self.branches, users, start, stop)

    def excluded_items(self, user: int) -> np.ndarray:
        """The user's train-positive item ids (sorted ascending)."""
        return self.exclude_indices[self.exclude_indptr[user] : self.exclude_indptr[user + 1]]

    def train_interaction_count(self, user: int) -> int:
        return int(self.exclude_indptr[user + 1] - self.exclude_indptr[user])

    def is_warm(self, user: int) -> bool:
        """Known user with at least one training interaction."""
        return 0 <= user < self.n_users and self.train_interaction_count(user) > 0

    def price_level_profile(self) -> np.ndarray:
        """Global train-interaction share per price level (sums to 1)."""
        counts = np.zeros(self.n_price_levels)
        np.add.at(counts, self.item_price_levels, self.item_popularity)
        total = counts.sum()
        return counts / total if total > 0 else np.full(self.n_price_levels, 1.0 / self.n_price_levels)

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of the frozen factors."""
        total = self.exclude_indices.nbytes + self.exclude_indptr.nbytes
        for branch in self.branches:
            total += branch.user.nbytes + branch.item.nbytes
            if branch.item_const is not None:
                total += branch.item_const.nbytes
            if branch.user_const is not None:
                total += branch.user_const.nbytes
        return total

    # ------------------------------------------------------------------
    # Serialization (reuses the train.persistence archive layer)
    # ------------------------------------------------------------------
    def save(self, path: str, format: str = "npz") -> str:
        """Persist the index; ``format`` picks the container.

        ``"npz"`` (default) writes the compact compressed archive; ``"dir"``
        writes an uncompressed per-array directory that :meth:`load` can
        memory-map (``mmap=True``) — the format the parallel batch-inference
        runtime uses so worker processes attach to one on-disk copy instead
        of each deserializing the full archive.
        """
        if format not in ("npz", "dir"):
            raise ValueError(f"format must be 'npz' or 'dir', got {format!r}")
        arrays: Dict[str, np.ndarray] = {
            "item_categories": self.item_categories,
            "item_price_levels": self.item_price_levels,
            "exclude_indptr": self.exclude_indptr,
            "exclude_indices": self.exclude_indices,
            "item_popularity": self.item_popularity,
        }
        if self.item_raw_prices is not None:
            arrays["item_raw_prices"] = self.item_raw_prices
        branch_meta = []
        for i, branch in enumerate(self.branches):
            arrays[f"branch{i}.user"] = branch.user
            arrays[f"branch{i}.item"] = branch.item
            if branch.item_const is not None:
                arrays[f"branch{i}.item_const"] = branch.item_const
            if branch.user_const is not None:
                arrays[f"branch{i}.user_const"] = branch.user_const
            branch_meta.append(
                {
                    "weight": float(branch.weight),
                    "dim": int(branch.item.shape[1]),
                    "has_item_const": branch.item_const is not None,
                    "has_user_const": branch.user_const is not None,
                }
            )
        metadata = {
            persistence.KIND_KEY: INDEX_KIND,
            "format_version": FORMAT_VERSION,
            "model_name": self.model_name,
            "n_users": self.n_users,
            "n_items": self.n_items,
            "n_categories": self.n_categories,
            "n_price_levels": self.n_price_levels,
            "branches": branch_meta,
            "extra": self.extra,
        }
        if format == "dir":
            return persistence.write_archive_dir(path, arrays, metadata)
        return persistence.write_archive(path, arrays, metadata)

    @classmethod
    def load(cls, path: str, mmap: bool = False) -> "EmbeddingIndex":
        """Load an index from either container format.

        ``mmap=True`` memory-maps the arrays of a directory-format index
        (written with ``save(path, format="dir")``) instead of copying them
        into process memory — attaching is near-instant and concurrent
        workers share one page-cache copy.  Legacy compressed ``.npz``
        archives are read transparently either way (``mmap`` has no effect
        on them; the zip container cannot be mapped).
        """
        metadata = persistence.read_archive_metadata(path)
        kind = persistence.archive_kind(metadata)
        if kind != INDEX_KIND:
            raise ValueError(
                f"{path} holds a {kind!r} artifact, not an embedding index; "
                "use repro.serving.export_index to build one from a checkpoint"
            )
        if metadata["format_version"] > FORMAT_VERSION:
            raise ValueError(
                f"index format v{metadata['format_version']} is newer than this "
                f"reader (v{FORMAT_VERSION})"
            )
        arrays = persistence.read_archive_arrays(path, mmap=mmap)
        branches = []
        for i, meta in enumerate(metadata["branches"]):
            branches.append(
                ScoreBranch(
                    user=arrays[f"branch{i}.user"],
                    item=arrays[f"branch{i}.item"],
                    item_const=arrays.get(f"branch{i}.item_const"),
                    user_const=arrays.get(f"branch{i}.user_const"),
                    weight=meta["weight"],
                )
            )
        index = cls(
            branches=branches,
            item_categories=arrays["item_categories"],
            item_price_levels=arrays["item_price_levels"],
            n_price_levels=metadata["n_price_levels"],
            n_categories=metadata["n_categories"],
            exclude_indptr=arrays["exclude_indptr"],
            exclude_indices=arrays["exclude_indices"],
            item_popularity=arrays["item_popularity"],
            item_raw_prices=arrays.get("item_raw_prices"),
            model_name=metadata["model_name"],
            extra=metadata.get("extra") or {},
        )
        # Where this index came from, so the batch-inference runtime can tell
        # worker processes to re-attach by path (mmap) instead of shipping
        # the arrays through pickling.  Only a directory archive is actually
        # mapped — a legacy .npz loaded with mmap=True is plain in-memory
        # data, and advertising it as mapped would make workers re-decompress
        # the archive instead of inheriting the arrays copy-on-write.
        index.source_path = path
        index.source_mmap = bool(mmap) and os.path.isdir(path)
        return index
