"""Batched top-K retrieval over a frozen :class:`EmbeddingIndex`.

Scoring is blocked over items: each block of item factors is streamed
through one ``(batch, dim) @ (dim, block)`` matmul, masked, and reduced to
per-user block candidates; candidates merge into the exact global top-K.
Blocking keeps the item-side operand cache-resident at large catalog sizes
and bounds peak memory at ``batch * item_block_size`` floats instead of
``batch * n_items``.

Correctness contract: selection uses :func:`repro.eval.topk.masked_topk` —
the same kernel the offline evaluator uses — and when the catalog fits in
one block (the default below ~8k items) scores are bit-identical to the
live model, so offline metrics and online results cannot disagree on
ranking.  The multi-block merge is exact over the blocked scores; those can
differ from the single-pass scores by one ULP for degenerate block shapes
(BLAS picks a different kernel for very narrow matmuls).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..eval.topk import NEG_INF, masked_topk, topk_indices_rows, topk_pairs_rows
from ..faults import ANN_SEARCH_ERROR
from ..obs.trace import maybe_span
from .filters import Filter, combine_mask, combine_signature
from .index import EmbeddingIndex
from .resilience import is_transient


@dataclass
class RetrievalResult:
    """Ranked items (best first) and their model scores for one user."""

    items: np.ndarray
    scores: np.ndarray


class RetrievalEngine:
    """Scores users against the catalog and selects top-K under masks.

    ``mask_cache_capacity`` bounds the per-filter-signature mask cache:
    services commonly see a small set of recurring filter combinations
    (storefront tabs, price bands) plus a long tail of one-off per-request
    lists (stock-outs, personal deny lists); LRU keeps the former hot
    without letting the latter grow memory forever.

    ``ann`` opts the engine into approximate retrieval: an
    :class:`~repro.serving.ann.IVFIndex` (or
    :class:`~repro.serving.ann.QuantizedIndex`) built over the same
    catalog.  With one attached, :meth:`topk` routes through the ANN's
    two-stage search — filters and train-item exclusions apply at the
    re-rank stage, so a filtered request is ranked over exactly the items
    its masks allow, just from a cluster-pruned candidate pool instead of
    the full catalog.  Per-request opt-out (``use_ann=False``) keeps the
    exact path one argument away.

    ANN failure degrades, it never errors: a transient exception from
    ``ann.search`` (including an injected ``ann.search_error`` fault from an
    attached :class:`~repro.faults.FaultPlan`) makes :meth:`topk` fall back
    to the exact blocked path for that batch — the results are the ones the
    exact engine would have served anyway, so the fallback is bit-identical
    correct, just slower.  ``on_ann_fallback`` (an ``error -> None``
    callable) observes each fallback; without one a ``RuntimeWarning`` is
    emitted so real ANN breakage is never silent.
    """

    def __init__(
        self,
        index: EmbeddingIndex,
        item_block_size: int = 8192,
        mask_cache_capacity: int = 256,
        ann=None,
        tracer=None,
        fault_plan=None,
        on_ann_fallback=None,
    ) -> None:
        if item_block_size < 1:
            raise ValueError(f"item_block_size must be >= 1, got {item_block_size}")
        if ann is not None and ann.n_items != index.n_items:
            raise ValueError(
                f"ann index covers {ann.n_items} items but the embedding index "
                f"has {index.n_items}; rebuild the ann index from this catalog"
            )
        self.index = index
        self.ann = ann
        self.tracer = tracer
        self.fault_plan = fault_plan
        self.on_ann_fallback = on_ann_fallback
        self.ann_fallbacks = 0
        self.item_block_size = item_block_size
        self.mask_cache_capacity = mask_cache_capacity
        self._mask_cache: "OrderedDict[Tuple, Tuple[Optional[np.ndarray], np.ndarray]]" = OrderedDict()

    # ------------------------------------------------------------------
    def _masks_for(self, filters: Sequence[Filter]) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """(bool mask, allowed ids) for a filter set, LRU-cached together."""
        if not filters:
            return None, None
        key = combine_signature(filters)
        hit = self._mask_cache.get(key)
        if hit is None:
            mask = combine_mask(filters, self.index)
            hit = (mask, np.flatnonzero(mask))
            if self.mask_cache_capacity > 0:
                self._mask_cache[key] = hit
                while len(self._mask_cache) > self.mask_cache_capacity:
                    self._mask_cache.popitem(last=False)
        else:
            self._mask_cache.move_to_end(key)
        return hit

    def candidate_mask(self, filters: Sequence[Filter]) -> Optional[np.ndarray]:
        """Intersected boolean item mask for a filter set (cached)."""
        return self._masks_for(filters)[0]

    def candidate_items(self, filters: Sequence[Filter]) -> Optional[np.ndarray]:
        """Allowed item ids for a filter set (cached; ``None`` = everything)."""
        return self._masks_for(filters)[1]

    def invalidate_masks(self) -> None:
        """Drop cached filter masks (call after catalog-affecting changes)."""
        self._mask_cache.clear()

    # ------------------------------------------------------------------
    def topk(
        self,
        users: Sequence[int],
        k: int,
        exclude_train: bool = True,
        filters: Sequence[Filter] = (),
        drop_masked: bool = True,
        use_ann: Optional[bool] = None,
    ) -> List[RetrievalResult]:
        """Top-``k`` recommendations for a batch of warm users.

        ``use_ann`` overrides the engine default (``None`` = use the
        attached ANN index when there is one): ``False`` forces the exact
        path for this call, ``True`` requires an ANN index.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        users = np.asarray(users, dtype=np.int64)
        if len(users) == 0:
            return []
        if users.min() < 0 or users.max() >= self.index.n_users:
            raise ValueError(
                f"user id out of range [0, {self.index.n_users}); "
                "route unseen users through the cold-start fallback"
            )
        if use_ann is None:
            use_ann = self.ann is not None
        if use_ann:
            if self.ann is None:
                raise ValueError("use_ann=True but no ANN index is attached")
            try:
                if self.fault_plan is not None:
                    self.fault_plan.maybe_fail(ANN_SEARCH_ERROR)
                with maybe_span(
                    self.tracer, "engine.topk", cat="retrieval",
                    attrs={"path": "ann", "n_users": len(users), "k": k},
                ):
                    return self._topk_ann(users, k, exclude_train, filters, drop_masked)
            except Exception as error:
                if not is_transient(error):
                    raise
                self._note_ann_fallback(error)
                # fall through: serve this batch from the exact path
        path = "single_block" if self.index.n_items <= self.item_block_size else "blocked"
        with maybe_span(
            self.tracer, "engine.topk", cat="retrieval",
            attrs={"path": path, "n_users": len(users), "k": k},
        ):
            if path == "single_block":
                return self._topk_single_block(
                    users, k, exclude_train, self.candidate_items(filters), drop_masked
                )
            return self._topk_blocked(
                users, k, exclude_train, self.candidate_mask(filters), drop_masked
            )

    def _note_ann_fallback(self, error: BaseException) -> None:
        self.ann_fallbacks += 1
        if self.on_ann_fallback is not None:
            self.on_ann_fallback(error)
        else:
            import warnings

            warnings.warn(
                f"ANN search failed ({error!r}); serving this batch via exact search",
                RuntimeWarning,
                stacklevel=3,
            )

    def topk_from_scores(
        self,
        scores: np.ndarray,
        k: int,
        exclude_items: Optional[np.ndarray] = None,
        filters: Sequence[Filter] = (),
        drop_masked: bool = True,
    ) -> RetrievalResult:
        """Top-``k`` from an externally produced score row (fallback path)."""
        candidates = self.candidate_items(filters)
        top = masked_topk(
            scores,
            k,
            exclude_items=exclude_items if exclude_items is not None and len(exclude_items) else None,
            candidate_items=candidates,
            drop_masked=drop_masked,
        )
        # Scores stay in their own dtype: an f32 index must never pay an
        # f64 copy on the request path (non-float input still coerces).
        scores = np.asarray(scores)
        if scores.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            scores = scores.astype(np.float64)
        return RetrievalResult(items=top, scores=scores[top])

    # ------------------------------------------------------------------
    def _topk_ann(
        self,
        users: np.ndarray,
        k: int,
        exclude_train: bool,
        filters: Sequence[Filter],
        drop_masked: bool,
    ) -> List[RetrievalResult]:
        """Two-stage approximate retrieval; masks apply at the re-rank stage.

        The ANN search returns dense sentinel-padded rows (id ``-1`` /
        score ``-inf`` past a user's allowed pool); those convert to the
        engine's variable-length result contract here.  With
        ``drop_masked=False`` a short pool still yields a short result —
        the ANN path has no "keep masked entries" representation to pad
        with, which only matters to callers that asked for more items than
        the masks allow.
        """
        mask = self.candidate_mask(filters)
        exclude_csr = (
            (self.index.exclude_indptr, self.index.exclude_indices)
            if exclude_train
            else None
        )
        ids, scores = self.ann.search(
            users, k, exclude_csr=exclude_csr, candidate_mask=mask, tracer=self.tracer
        )
        results = []
        for row in range(len(users)):
            keep = ids[row] >= 0
            results.append(RetrievalResult(items=ids[row][keep], scores=scores[row][keep]))
        return results

    def _topk_single_block(
        self,
        users: np.ndarray,
        k: int,
        exclude_train: bool,
        candidates: Optional[np.ndarray],
        drop_masked: bool,
    ) -> List[RetrievalResult]:
        """One matmul over the whole catalog — identical path to the evaluator."""
        scores = self.index.score(users)
        results = []
        for row, user in enumerate(users):
            exclude = self.index.excluded_items(int(user)) if exclude_train else None
            top = masked_topk(
                scores[row],
                k,
                exclude_items=exclude if exclude is not None and len(exclude) else None,
                candidate_items=candidates,
                drop_masked=drop_masked,
            )
            results.append(RetrievalResult(items=top, scores=scores[row, top]))
        return results

    def _topk_blocked(
        self,
        users: np.ndarray,
        k: int,
        exclude_train: bool,
        mask: Optional[np.ndarray],
        drop_masked: bool,
    ) -> List[RetrievalResult]:
        """Stream item blocks, keep per-user candidates, merge exactly.

        Every global top-``k`` element is inside its own block's top-``k``
        (selection is monotone), so merging per-block candidates with the
        same (score desc, id asc) order reproduces the single-pass result.
        Selection and merge run row-vectorized over the whole batch
        (:func:`topk_indices_rows` / :func:`topk_pairs_rows` — the same
        kernels the batch-inference runtime shards over).
        """
        n_items = self.index.n_items
        block = self.item_block_size
        excludes = [
            self.index.excluded_items(int(user)) if exclude_train else None for user in users
        ]
        block_ids: List[np.ndarray] = []
        block_scores: List[np.ndarray] = []

        for start in range(0, n_items, block):
            stop = min(start + block, n_items)
            part = self.index.score_block(users, start, stop)
            if mask is not None:
                block_mask = np.where(mask[start:stop], 0.0, NEG_INF)
                part = part + block_mask[None, :]
            for row in range(len(users)):
                exclude = excludes[row]
                if exclude is not None and len(exclude):
                    inside = exclude[(exclude >= start) & (exclude < stop)]
                    if len(inside):
                        part[row, inside - start] = NEG_INF
            top = topk_indices_rows(part, min(k, stop - start))
            block_ids.append(top + start)
            block_scores.append(np.take_along_axis(part, top, axis=1))

        with maybe_span(self.tracer, "topk.merge", cat="retrieval"):
            ids = np.hstack(block_ids)
            values = np.hstack(block_scores)
            sel = topk_pairs_rows(ids, values, k)
            merged_items = np.take_along_axis(ids, sel, axis=1)
            merged_scores = np.take_along_axis(values, sel, axis=1)

        results = []
        for row in range(len(users)):
            items, scores = merged_items[row], merged_scores[row]
            if drop_masked and (mask is not None or (excludes[row] is not None and len(excludes[row]))):
                keep = scores > NEG_INF
                items, scores = items[keep], scores[keep]
            results.append(RetrievalResult(items=items, scores=scores))
        return results
