"""The request-facing recommendation service.

Pipeline: requests enter a micro-batching queue; at flush time they are
grouped by ranking parameters (k, exclusion, filter signature) and each
group of *warm* users is answered by one batched retrieval — turning N
single-user matmuls into one ``(N, d) @ (d, n_items)`` matmul, which is
where the serving throughput comes from.  Per-request scenario routing:

* **warm user** (known id with training history) → full model score from
  the frozen index — identical item ids to the offline evaluator;
* **cold user** (unseen id, or known but history-free) → price-profile
  fallback (:mod:`repro.serving.fallback`), optionally personalized by a
  request-supplied price profile.

Results land in an LRU cache keyed by the full request identity with
explicit invalidation (:meth:`RecommenderService.invalidate`) for when a
new index is swapped in or a user's state changes.  Latency, QPS, and
cache hit-rate counters live in :class:`~repro.serving.stats.ServingStats`.

Concurrency contract: the service is safe to drive from many threads at
once — this is the substrate the always-on gateway
(:mod:`repro.serving.gateway`) builds on.  Two locks split the work:

* ``_lock`` guards the *queue and cache* — the cheap mutations every
  ``submit`` performs;
* ``_flush_lock`` guards the *engine view* — a flush answers its whole
  snapshot against one consistent (index, engine, fallback) triple, and
  :meth:`swap_index` replaces that triple while holding the same lock, so
  a request can observe the old index or the new one but never a mix.

No thread ever waits on ``_flush_lock`` while holding ``_lock``, which is
what makes the pair deadlock-free.

Failure handling (opt-in via ``resilience=ResilienceConfig()``): each batch
group consults a circuit breaker, retries transient backend errors with
exponential backoff, and — when retries run out or the breaker is open —
walks the *degradation ladder* instead of erroring: serve the request's
stale LRU-cached answer if one exists, else a price-profile fallback
ranking.  Degraded answers are :class:`DegradedResponse` (a
:class:`Recommendation` subclass tagged with the ladder ``stage``), counted
in ``gateway_fallbacks_total{stage}``, and never written back to the cache.
Per-request deadlines (``submit(deadline_s=...)``) are enforced at flush
time with a typed :class:`~repro.serving.errors.DeadlineExceeded`.  Without
a resilience policy the historical contract holds: backend errors propagate
raw to ``result()``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..faults import SCORER_DELAY, SCORER_ERROR, FaultPlan
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer, maybe_span
from .errors import BackendError, DeadlineExceeded
from .fallback import PriceProfileFallback
from .filters import Filter, combine_signature
from .index import EmbeddingIndex
from .resilience import ResilienceConfig, ResiliencePolicy, is_transient
from .retrieval import RetrievalEngine, RetrievalResult
from .stats import ServingStats

WARM = "warm"
COLD = "cold_fallback"


class ResultTimeout(TimeoutError):
    """``PendingRecommendation.result(timeout=...)`` expired unresolved.

    The request is still queued and will be answered by a later flush; the
    caller has merely stopped waiting (deadline-style serving).
    """


@dataclass
class Request:
    """One recommendation query.

    ``deadline_at`` (absolute, service-clock seconds) is enforced at flush
    time; it is identity-irrelevant — two requests differing only in
    deadline share a cache entry and a batch group — so it appears in
    neither :meth:`cache_key` nor :meth:`batch_key`.
    """

    user: int
    k: int
    exclude_train: bool = True
    filters: Tuple[Filter, ...] = ()
    price_profile: Optional[np.ndarray] = None
    deadline_at: Optional[float] = None

    def cache_key(self) -> Tuple:
        profile = None if self.price_profile is None else tuple(np.asarray(self.price_profile, dtype=np.float64))
        return (
            self.user,
            self.k,
            self.exclude_train,
            combine_signature(self.filters),
            profile,
        )

    def batch_key(self) -> Tuple:
        """Requests sharing this key can be answered by one batched matmul."""
        return (self.k, self.exclude_train, combine_signature(self.filters))


@dataclass
class Recommendation:
    """Ranked answer for one request."""

    user: int
    items: np.ndarray
    scores: np.ndarray
    source: str  # WARM or COLD
    cached: bool = False

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class DegradedResponse(Recommendation):
    """A degraded answer: real data, reduced quality guarantee, tagged.

    Served instead of an error when the backend is failing — ``stage``
    names the ladder rung that produced it (``breaker_cache``,
    ``breaker_profile``, ``error_cache``, ``error_profile``).  It is a
    :class:`Recommendation` (callers that do not care keep working), but
    type-aware callers — the loadgen, SLA accounting — can count it
    separately; ``isinstance(answer, DegradedResponse)`` is the contract.
    Degraded answers are never written to the result cache.
    """

    stage: str = ""


class PendingRecommendation:
    """Handle returned by :meth:`RecommenderService.submit`.

    Resolves when the service flushes its queue.  ``result()`` (no
    timeout) forces a flush if the answer is not in yet — the synchronous
    caller's path; ``result(timeout=seconds)`` instead *waits* for another
    thread (a concurrent caller hitting the size trigger, or the gateway's
    flusher) to resolve it, raising :class:`ResultTimeout` on expiry.  A
    request that failed during its batch re-raises its error here — one
    poisoned request never orphans the rest of a batch.
    """

    def __init__(self, service: "RecommenderService", request: Request) -> None:
        self._service = service
        self._request = request
        self._result: Optional[Recommendation] = None
        self._error: Optional[Exception] = None
        self._done = threading.Event()
        self._finalize_lock = threading.Lock()
        self._span = None  # request span, finished at resolve/fail time

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until resolved (or ``timeout`` seconds); True when done."""
        return self._done.wait(timeout)

    # Resolve/fail can race — a retrying group and the flusher supervisor's
    # fail_pending may both reach one request — and outcome accounting
    # (serving_outcomes_total) must count every request exactly once, so the
    # first finalizer wins under _finalize_lock and later calls are no-ops.
    def _resolve(self, result: Recommendation) -> None:
        with self._finalize_lock:
            if self._done.is_set():
                return
            self._result = result
            self._done.set()
        self._service.stats.record_outcome(
            "degraded" if isinstance(result, DegradedResponse) else "ok"
        )
        if self._span is not None:
            self._span.finish(source=result.source, cached=result.cached)

    def _fail(self, error: Exception) -> None:
        with self._finalize_lock:
            if self._done.is_set():
                return
            self._error = error
            self._done.set()
        self._service.stats.record_outcome("failed")
        if self._span is not None:
            self._span.finish(error=type(error).__name__)

    def result(self, timeout: Optional[float] = None) -> Recommendation:
        if not self._done.is_set():
            if timeout is None:
                # Synchronous path: force a flush.  A concurrent flusher may
                # already hold our request (the queue swap happened before we
                # got here), in which case our flush() sees an empty queue —
                # the wait below covers that window.
                self._service.flush()
                self._done.wait()
            elif not self._done.wait(timeout):
                raise ResultTimeout(
                    f"request for user {self._request.user} unresolved after "
                    f"{timeout:.3f}s"
                )
        if self._error is not None:
            raise self._error
        assert self._result is not None, "flush() must resolve every queued request"
        return self._result


class RecommenderService:
    """Micro-batching, caching, scenario-routing front-end over one index."""

    def __init__(
        self,
        index: EmbeddingIndex,
        default_k: int = 10,
        max_batch_size: int = 64,
        cache_capacity: int = 1024,
        item_block_size: int = 8192,
        clock: Optional[Callable[[], float]] = None,
        ann=None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        runtime=None,
        resilience: Optional[ResilienceConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if default_k < 1:
            raise ValueError(f"default_k must be >= 1, got {default_k}")
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self.index = index
        self.item_block_size = item_block_size
        self.tracer = tracer
        self.fault_plan = fault_plan
        self.engine = RetrievalEngine(
            index, item_block_size=item_block_size, ann=ann, tracer=tracer,
            fault_plan=fault_plan, on_ann_fallback=self._on_ann_fallback,
        )
        self.fallback = PriceProfileFallback(index)
        self.default_k = default_k
        self.max_batch_size = max_batch_size
        self.cache_capacity = cache_capacity
        self._clock = clock or time.perf_counter
        # runtime: an optional sharded BatchRuntime backend over the same
        # catalog; eligible warm groups are answered by runtime.rank()
        # (bit-identical kernels) instead of the in-process engine.
        if runtime is not None and runtime.n_items != index.n_items:
            raise ValueError(
                f"backend runtime covers {runtime.n_items} items but the index "
                f"has {index.n_items}"
            )
        self.runtime = runtime
        # _lock guards queue + cache; _flush_lock serializes batch execution
        # against swap_index (see the module docstring's concurrency contract)
        self._lock = threading.RLock()
        self._flush_lock = threading.RLock()
        self._cache: "OrderedDict[Tuple, Recommendation]" = OrderedDict()
        # queue entries: (request, pending, enqueued_at) — the timestamp is
        # what lets record_batch account queue wait into end-to-end latency
        self._queue: List[Tuple[Request, PendingRecommendation, float]] = []
        self.stats = ServingStats(clock=self._clock, registry=registry)
        self.registry = self.stats.registry
        # Resilience is opt-in: None keeps the historical contract (backend
        # errors propagate raw; no breaker, no retries, no degradation).
        self.resilience: Optional[ResiliencePolicy] = None
        if resilience is not None:
            self.resilience = ResiliencePolicy(
                resilience, registry=self.registry, clock=self._clock
            )
        # Point-in-time gauges are refreshed by _sync_gauges — called once
        # per flush and as the metrics server's per-scrape update_fn, never
        # per request (the submit path is latency-gated by bench_serving).
        self._queue_depth_gauge = self.registry.gauge(
            "serving_queue_depth", "Requests currently waiting for a flush."
        )
        self._cache_entries_gauge = self.registry.gauge(
            "serving_cache_entries", "Results held in the LRU cache."
        )
        self._publish_ann_bytes()

    def _publish_ann_bytes(self) -> None:
        """Push the attached ANN index's memory report to the stats gauges.

        Called at construction and after every :meth:`swap_index` — the
        footprint only changes when the index does, so there is nothing to
        refresh per scrape.
        """
        ann = self.engine.ann
        report = ann.memory_report() if hasattr(ann, "memory_report") else None
        self.stats.set_ann_index_bytes(report)

    def _on_ann_fallback(self, error: BaseException) -> None:
        """Engine hook: one ANN search failed and was served exactly instead."""
        self.stats.record_fallback("ann_exact")

    @property
    def ann(self):
        """The attached ANN index (None when serving exactly)."""
        return self.engine.ann

    @classmethod
    def from_path(cls, path: str, **kwargs) -> "RecommenderService":
        """Stand up a service from a saved index archive (what a replica does)."""
        return cls(EmbeddingIndex.load(path), **kwargs)

    def swap_index(self, index: EmbeddingIndex, ann=None) -> int:
        """Hot-swap a rebuilt (retrained, re-quantized...) index in place.

        Replaces the engine, fallback, and ANN index atomically with
        respect to future requests and invalidates every derived cache —
        the LRU result cache and the engine's filter-mask cache — so no
        request served after the swap can observe a stale top-K from the
        old index.  In-flight queued requests are flushed against the old
        index first: they were submitted under it, and answering them from
        a half-swapped state would be neither-index results.

        Safe under concurrent load: ``_flush_lock`` is held across the
        drain *and* the engine replacement, so a flush racing this swap
        either completes fully against the old index (it got the lock
        first) or answers its whole snapshot from the new one — never a
        mix.  An attached backend runtime is refreshed in place.

        Complete-or-roll-back: every fallible step — building the new
        engine (which validates the ANN/catalog pairing) and refreshing the
        backend runtime — runs *before* any service state changes.  If one
        raises, the service keeps serving the old (index, engine, fallback)
        triple and cache untouched; a torn state where ``self.index`` is
        new but ``self.engine`` still scores the old catalog cannot occur.

        Returns the number of cached results evicted.
        """
        with self._flush_lock:
            self.flush()
            engine = RetrievalEngine(
                index, item_block_size=self.item_block_size, ann=ann,
                tracer=self.tracer, fault_plan=self.fault_plan,
                on_ann_fallback=self._on_ann_fallback,
            )
            fallback = PriceProfileFallback(index)
            if self.runtime is not None:
                exclude_csr = None
                if self.runtime.has_exclusions:
                    exclude_csr = (index.exclude_indptr, index.exclude_indices)
                self.runtime.refresh(index, exclude_csr=exclude_csr)
            with self._lock:
                self.index = index
                self.engine = engine
                self.fallback = fallback
                evicted = len(self._cache)
                self._cache.clear()
            self._publish_ann_bytes()
        return evicted

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    def submit(
        self,
        user: int,
        k: Optional[int] = None,
        exclude_train: bool = True,
        filters: Sequence[Filter] = (),
        price_profile: Optional[np.ndarray] = None,
        deadline_s: Optional[float] = None,
    ) -> PendingRecommendation:
        """Enqueue a request; flushes automatically at ``max_batch_size``.

        Request validation happens here, not at flush time, so a malformed
        request fails its caller immediately instead of poisoning a batch.
        ``price_profile`` only steers the cold-start fallback; for warm
        users (answered by the full model score) it is validated, then
        dropped — so every profile variant of a warm request shares one
        cache entry.  ``deadline_s`` (relative seconds) bounds how long the
        request may wait in the queue: a flush that finds it expired fails
        it with :class:`~repro.serving.errors.DeadlineExceeded` instead of
        scoring it.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        if price_profile is not None:
            price_profile = self.fallback.normalize_profile(price_profile)
            if self.index.is_warm(int(user)):
                price_profile = None
        request = Request(
            user=int(user),
            k=self.default_k if k is None else int(k),
            exclude_train=exclude_train,
            filters=tuple(filters),
            price_profile=price_profile,
            deadline_at=None if deadline_s is None else self._clock() + deadline_s,
        )
        if request.k < 1:
            raise ValueError(f"k must be >= 1, got {request.k}")
        pending = PendingRecommendation(self, request)
        warm = self.index.is_warm(request.user)
        self.stats.record_request(warm=warm)
        if self.tracer is not None:
            pending._span = self.tracer.begin(
                "request",
                cat="serving",
                attrs={"user": request.user, "k": request.k, "warm": warm},
            )

        # The lookup span exists only when there is a cache to look into:
        # with caching disabled there is no lookup stage in the request
        # path, and a per-request span for a guaranteed miss would be the
        # single most expensive no-op on the serving hot path.
        if self.tracer is not None and self.cache_capacity > 0:
            with self.tracer.span(
                "cache.lookup",
                cat="serving",
                parent_id=pending._span.span_id if pending._span is not None else None,
            ) as lookup:
                cached = self._cache_get(request.cache_key())
                lookup.set_attr("hit", cached is not None)
        else:
            cached = self._cache_get(request.cache_key())
        if cached is not None:
            self.stats.record_cache(hit=True)
            # Hand out copies: callers may mutate their result freely
            # without corrupting the cached answer.
            pending._resolve(
                Recommendation(
                    user=cached.user,
                    items=cached.items.copy(),
                    scores=cached.scores.copy(),
                    source=cached.source,
                    cached=True,
                )
            )
            return pending
        self.stats.record_cache(hit=False)

        with self._lock:
            self._queue.append((request, pending, self._clock()))
            should_flush = len(self._queue) >= self.max_batch_size
        if should_flush:
            self.flush()
        return pending

    def recommend(
        self,
        user: int,
        k: Optional[int] = None,
        exclude_train: bool = True,
        filters: Sequence[Filter] = (),
        price_profile: Optional[np.ndarray] = None,
    ) -> Recommendation:
        """Synchronous single-request convenience wrapper."""
        return self.submit(
            user, k=k, exclude_train=exclude_train, filters=filters, price_profile=price_profile
        ).result()

    def recommend_many(
        self,
        users: Sequence[int],
        k: Optional[int] = None,
        exclude_train: bool = True,
        filters: Sequence[Filter] = (),
        price_profiles: Optional[Union[np.ndarray, Sequence[Optional[np.ndarray]]]] = None,
    ) -> List[Recommendation]:
        """Batch entry point: enqueue everything, flush once, keep order.

        ``price_profiles`` steers the cold-start fallback for cold users in
        the batch (warm users ignore it, exactly as :meth:`submit` does):
        either one shared profile array of shape ``(n_price_levels,)``
        applied to every user, or a per-user sequence (entries may be None)
        of the same length as ``users``.
        """
        if price_profiles is None:
            per_user: List[Optional[np.ndarray]] = [None] * len(users)
        elif isinstance(price_profiles, np.ndarray) and price_profiles.ndim == 1:
            per_user = [price_profiles] * len(users)
        else:
            per_user = list(price_profiles)
            if len(per_user) != len(users):
                raise ValueError(
                    f"price_profiles has {len(per_user)} entries for "
                    f"{len(users)} users (pass one 1-D array to share a "
                    "profile across the batch)"
                )
        pending = [
            self.submit(
                user, k=k, exclude_train=exclude_train, filters=filters,
                price_profile=profile,
            )
            for user, profile in zip(users, per_user)
        ]
        self.flush()
        return [p.result() for p in pending]

    # ------------------------------------------------------------------
    # Micro-batch execution
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Answer every queued request; returns how many were resolved.

        Thread-safe: the queue swap happens under ``_lock`` (so concurrent
        submits never lose a request), and the batch itself executes under
        ``_flush_lock`` (so the whole snapshot is answered by one
        consistent engine, even across a concurrent :meth:`swap_index`).
        Two racing flushes operate on disjoint snapshots.
        """
        with self._lock:
            if not self._queue:
                return 0
            queue, self._queue = self._queue, []
        self._sync_gauges()

        # Deadline sweep: a request that waited out its budget fails typed,
        # before the batch spends compute on an answer nobody awaits.
        now = self._clock()
        live = queue
        if any(request.deadline_at is not None for request, _, _ in queue):
            live = []
            for entry in queue:
                request, pending, _ = entry
                if request.deadline_at is not None and now > request.deadline_at:
                    self.stats.record_deadline_exceeded()
                    pending._fail(
                        DeadlineExceeded(
                            f"request for user {request.user} missed its deadline "
                            "before its batch ran"
                        )
                    )
                else:
                    live.append(entry)

        groups: "OrderedDict[Tuple, List[Tuple[Request, PendingRecommendation, float]]]" = OrderedDict()
        for request, pending, enqueued_at in live:
            groups.setdefault(request.batch_key(), []).append((request, pending, enqueued_at))

        with self._flush_lock:
            try:
                with maybe_span(
                    self.tracer, "flush", cat="serving", attrs={"n_requests": len(queue)}
                ):
                    for entries in groups.values():
                        warm = [e for e in entries if self.index.is_warm(e[0].user)]
                        cold = [e for e in entries if not self.index.is_warm(e[0].user)]
                        if warm:
                            self._run_group(self._answer_warm, warm)
                        if cold:
                            self._run_group(self._answer_cold_group, cold)
            finally:
                # Never strand a waiter: anything still unresolved (only
                # reachable if the grouping machinery itself failed) fails
                # loudly instead of leaving result() to block forever.
                for _, pending, _ in queue:
                    if not pending.done:
                        pending._fail(
                            RuntimeError("flush exited without resolving this request")
                        )
        return len(queue)

    def _run_group(self, answer, entries: List[Tuple[Request, PendingRecommendation, float]]) -> None:
        """Answer one group; on error, fail its requests instead of raising.

        With a resilience policy attached this is where the failure ladder
        lives:

        1. breaker open → skip the backend, degrade the whole group;
        2. transient error → retry with exponential backoff (feeding the
           breaker) while nothing in the group has resolved yet;
        3. retries exhausted → degrade (``degrade=True``) or fail every
           request with a typed :class:`BackendError`;
        4. non-transient error → fail raw immediately (a malformed request
           must not trip the breaker or hide behind a fallback answer).

        Without a policy, the historical behavior: one attempt, raw error
        delivered through ``result()``.
        """
        policy = self.resilience
        if policy is not None and not policy.allow():
            self._degrade_entries(entries, prefix="breaker")
            return
        attempt = 0
        while True:
            try:
                answer(entries)
            except Exception as error:  # noqa: BLE001 - delivered via result()
                if policy is None or not is_transient(error):
                    for _, pending, _ in entries:
                        if not pending.done:
                            pending._fail(error)
                    return
                policy.record_failure()
                resolved_any = any(pending.done for _, pending, _ in entries)
                if attempt < policy.config.retries and not resolved_any:
                    attempt += 1
                    self.stats.record_retry()
                    policy.sleep_backoff(attempt)
                    if policy.allow():
                        continue
                    self._degrade_entries(entries, prefix="breaker")
                    return
                if policy.config.degrade:
                    self._degrade_entries(entries, prefix="error")
                    return
                failure = BackendError(
                    f"backend failed after {attempt + 1} attempt(s): {error!r}"
                )
                failure.__cause__ = error
                for _, pending, _ in entries:
                    if not pending.done:
                        pending._fail(failure)
                return
            else:
                if policy is not None:
                    policy.record_success()
                return

    def _degrade_entries(
        self,
        entries: List[Tuple[Request, PendingRecommendation, float]],
        prefix: str,
    ) -> None:
        """Walk the degradation ladder for a group the backend cannot answer.

        Per request: serve its stale LRU-cached answer when one exists
        (stage ``{prefix}_cache``), otherwise rank the price-profile
        fallback scores (stage ``{prefix}_profile`` — the paper's
        cold-start path, which needs no model matmul).  Either way the
        caller gets a :class:`DegradedResponse`; nothing is written back
        to the cache, so recovered backends serve fresh answers.
        """
        began = self._clock()
        with maybe_span(
            self.tracer, "batch.degraded", cat="serving",
            attrs={"n_requests": len(entries), "prefix": prefix},
        ):
            profile_scores: Optional[np.ndarray] = None
            for request, pending, _ in entries:
                if pending.done:
                    continue
                try:
                    cached = self._cache_get(request.cache_key())
                    if cached is not None:
                        answer = DegradedResponse(
                            user=cached.user,
                            items=cached.items.copy(),
                            scores=cached.scores.copy(),
                            source=cached.source,
                            cached=True,
                            stage=f"{prefix}_cache",
                        )
                    else:
                        if profile_scores is None or request.price_profile is not None:
                            scores = self.fallback.scores(request.price_profile)
                            if request.price_profile is None:
                                profile_scores = scores
                        else:
                            scores = profile_scores
                        exclude = None
                        if request.exclude_train and 0 <= request.user < self.index.n_users:
                            exclude = self.index.excluded_items(request.user)
                        result = self.engine.topk_from_scores(
                            scores, k=request.k, exclude_items=exclude,
                            filters=request.filters,
                        )
                        answer = DegradedResponse(
                            user=request.user,
                            items=result.items,
                            scores=result.scores,
                            source=COLD,
                            stage=f"{prefix}_profile",
                        )
                    self.stats.record_fallback(answer.stage)
                    pending._resolve(answer)
                except Exception as degrade_error:  # noqa: BLE001
                    if not pending.done:
                        failure = BackendError(
                            f"degradation ladder failed too: {degrade_error!r}"
                        )
                        failure.__cause__ = degrade_error
                        pending._fail(failure)
        self.stats.record_batch(
            n_requests=len(entries),
            n_items_scored=self.index.n_items,
            seconds=self._clock() - began,
        )

    def fail_pending(self, error: Exception) -> int:
        """Fail every queued request with ``error``; returns how many.

        The flusher supervisor's tool: when the gateway's background
        flusher dies, the requests it was responsible for must fail loudly
        and promptly rather than hang until a client timeout.
        """
        with self._lock:
            queue, self._queue = self._queue, []
        for _, pending, _ in queue:
            if not pending.done:
                pending._fail(error)
        self._sync_gauges()
        return len(queue)

    def _route_via_runtime(self, request: Request) -> bool:
        """Whether a warm group with this shape may run on the backend runtime.

        The runtime ranks the full catalog with the service's own kernels
        (bit-identical results), but knows nothing of per-request filters
        and carries a fixed exclusion mask — so only the unfiltered shape
        whose exclusion setting matches the runtime's is eligible; anything
        else stays on the in-process engine.
        """
        return (
            self.runtime is not None
            and not request.filters
            and request.exclude_train == self.runtime.has_exclusions
            and self.engine.ann is None
            and self.runtime.ann is None
        )

    def _answer_warm(self, entries: List[Tuple[Request, PendingRecommendation, float]]) -> None:
        if self.fault_plan is not None:
            # Chaos drill hooks: a slow scorer stalls the batch, a poisoned
            # scorer raises — exercised before any compute, like a failure
            # in the first matmul would be.
            self.fault_plan.maybe_delay(SCORER_DELAY)
            self.fault_plan.maybe_fail(SCORER_ERROR)
        first = entries[0][0]
        users = [request.user for request, _, _ in entries]
        began = self._clock()
        via_runtime = self._route_via_runtime(first)
        with maybe_span(
            self.tracer, "batch.warm", cat="serving",
            attrs={"n_requests": len(entries), "backend": "runtime" if via_runtime else "engine"},
        ):
            if via_runtime:
                _, ids, scores = self.runtime.rank(
                    users, k=min(first.k, self.index.n_items), with_scores=True,
                    tracer=self.tracer,
                )
                results = [
                    RetrievalResult(items=ids[row], scores=scores[row])
                    for row in range(len(users))
                ]
            else:
                results = self.engine.topk(
                    users,
                    k=first.k,
                    exclude_train=first.exclude_train,
                    filters=first.filters,
                )
        self.stats.record_batch(
            n_requests=len(entries),
            n_items_scored=len(entries) * self.index.n_items,
            seconds=self._clock() - began,
            queue_waits=[began - enqueued_at for _, _, enqueued_at in entries],
        )
        for (request, pending, _), result in zip(entries, results):
            try:
                answer = Recommendation(
                    user=request.user, items=result.items, scores=result.scores, source=WARM
                )
                self._cache_put(request.cache_key(), answer)
                pending._resolve(answer)
            except Exception as error:  # noqa: BLE001 - delivered via result()
                if not pending.done:
                    pending._fail(error)

    def _answer_cold_group(
        self, entries: List[Tuple[Request, PendingRecommendation, float]]
    ) -> None:
        """Answer cold requests, computing each profile's score vector once.

        Fallback scores depend only on the price profile (and the frozen
        index), so requests sharing a profile — in particular the common
        no-profile case — share one scoring pass.  Each request resolves
        (or fails) individually: one request whose per-user ranking throws
        does not poison the rest of its profile group.
        """
        by_profile: "OrderedDict[Optional[Tuple], List[Tuple[Request, PendingRecommendation, float]]]" = OrderedDict()
        for request, pending, enqueued_at in entries:
            key = None if request.price_profile is None else tuple(request.price_profile)
            by_profile.setdefault(key, []).append((request, pending, enqueued_at))

        for profile_entries in by_profile.values():
            began = self._clock()
            with maybe_span(
                self.tracer,
                "batch.cold",
                cat="serving",
                attrs={"n_requests": len(profile_entries)},
            ):
                scores = self.fallback.scores(profile_entries[0][0].price_profile)
                for request, pending, _ in profile_entries:
                    try:
                        exclude = None
                        if request.exclude_train and 0 <= request.user < self.index.n_users:
                            exclude = self.index.excluded_items(request.user)
                        result = self.engine.topk_from_scores(
                            scores, k=request.k, exclude_items=exclude, filters=request.filters
                        )
                        answer = Recommendation(
                            user=request.user, items=result.items, scores=result.scores,
                            source=COLD,
                        )
                        self._cache_put(request.cache_key(), answer)
                        pending._resolve(answer)
                    except Exception as error:  # noqa: BLE001 - delivered via result()
                        if not pending.done:
                            pending._fail(error)
            self.stats.record_batch(
                n_requests=len(profile_entries),
                n_items_scored=self.index.n_items,
                seconds=self._clock() - began,
                queue_waits=[began - enqueued_at for _, _, enqueued_at in profile_entries],
            )

    # ------------------------------------------------------------------
    # Result cache
    # ------------------------------------------------------------------
    def _cache_get(self, key: Tuple) -> Optional[Recommendation]:
        if self.cache_capacity < 1:
            return None
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
            return hit

    def _cache_put(self, key: Tuple, value: Recommendation) -> None:
        if self.cache_capacity < 1:
            return
        # Snapshot the arrays: the caller owns the object we hand back.
        entry = Recommendation(
            user=value.user,
            items=value.items.copy(),
            scores=value.scores.copy(),
            source=value.source,
        )
        with self._lock:
            self._cache[key] = entry
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_capacity:
                self._cache.popitem(last=False)

    def invalidate(self, user: Optional[int] = None) -> int:
        """Drop cached results — all of them, or one user's.

        Call with no argument after swapping in a re-exported index; call
        with a user id when that user's state changed (new purchase).
        Returns the number of evicted entries.
        """
        with self._lock:
            if user is None:
                evicted = len(self._cache)
                self._cache.clear()
                self.engine.invalidate_masks()
                return evicted
            keys = [key for key in self._cache if key[0] == user]
            for key in keys:
                del self._cache[key]
            return len(keys)

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def oldest_enqueued_at(self) -> Optional[float]:
        """Enqueue timestamp of the longest-waiting queued request.

        None when the queue is empty.  This is what a latency-triggered
        batcher (the gateway's flusher thread) schedules its wakeup from.
        """
        with self._lock:
            return self._queue[0][2] if self._queue else None

    def _sync_gauges(self) -> None:
        self._queue_depth_gauge.set(len(self._queue))
        self._cache_entries_gauge.set(len(self._cache))
