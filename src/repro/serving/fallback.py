"""Cold-start scoring for users the index has no useful embedding for.

The paper's Fig. 6 cold-start analysis shows that price preference
transfers across categories: knowing which price levels a user accepts is
informative even for items (or whole categories) the user never touched.
The serving-side analogue: when a request's user is unseen (id outside the
index) or has no training history, score items by a *price-level profile*
— the probability the user buys at each level — combined with within-level
popularity.  A profile can come with the request (e.g. from the user's
activity on another surface); without one we fall back to the global
train-interaction profile.

Scores are ``profile[level(i)] * log1p(popularity_i + 1)``: the profile
picks the price bands, popularity orders items inside a band, and the
``+1`` keeps never-purchased items strictly positive so filtered pools are
never all-zero.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .index import EmbeddingIndex


class PriceProfileFallback:
    """Non-personalized price-aware scorer for cold users."""

    def __init__(self, index: EmbeddingIndex) -> None:
        self.index = index
        self._default_profile = index.price_level_profile()
        self._popularity_term = np.log1p(index.item_popularity + 1.0)

    def normalize_profile(self, profile: Optional[np.ndarray]) -> np.ndarray:
        """Validate/normalize a request profile; default when absent."""
        if profile is None:
            return self._default_profile
        profile = np.asarray(profile, dtype=np.float64)
        if profile.shape != (self.index.n_price_levels,):
            raise ValueError(
                f"price profile must have shape ({self.index.n_price_levels},), "
                f"got {profile.shape}"
            )
        if (profile < 0).any():
            raise ValueError("price profile must be non-negative")
        total = profile.sum()
        if total <= 0:
            return self._default_profile
        return profile / total

    def scores(self, price_profile: Optional[np.ndarray] = None) -> np.ndarray:
        """Item scores ``(n_items,)`` for one cold request."""
        profile = self.normalize_profile(price_profile)
        return profile[self.index.item_price_levels] * self._popularity_term
