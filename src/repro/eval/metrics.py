"""Ranking metrics: Recall@K and NDCG@K (the paper's evaluation metrics).

Definitions follow He et al. [2017] ("the same metrics as in [6]"):

* ``Recall@K = |top-K ∩ relevant| / |relevant|``
* ``NDCG@K = DCG@K / IDCG@K`` with binary gains, ``DCG = Σ 1/log2(rank+2)``
  over hits, and IDCG computed for ``min(K, |relevant|)`` ideal hits.
"""

from __future__ import annotations

from typing import Sequence, Set

import numpy as np


def recall_at_k(ranked_items: np.ndarray, relevant: Set[int], k: int) -> float:
    """Recall of one user's ranked list against their relevant set."""
    if not relevant:
        raise ValueError("relevant set must be non-empty")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    top = ranked_items[:k]
    hits = sum(1 for item in top if int(item) in relevant)
    return hits / len(relevant)


def ndcg_at_k(ranked_items: np.ndarray, relevant: Set[int], k: int) -> float:
    """Binary-gain NDCG of one user's ranked list."""
    if not relevant:
        raise ValueError("relevant set must be non-empty")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    top = ranked_items[:k]
    dcg = sum(
        1.0 / np.log2(rank + 2.0)
        for rank, item in enumerate(top)
        if int(item) in relevant
    )
    ideal_hits = min(k, len(relevant))
    idcg = sum(1.0 / np.log2(rank + 2.0) for rank in range(ideal_hits))
    return dcg / idcg


def mean_metric(values: Sequence[float]) -> float:
    """Average over users; empty input is an error (no users to evaluate)."""
    values = list(values)
    if not values:
        raise ValueError("no per-user values to average")
    return float(np.mean(values))
