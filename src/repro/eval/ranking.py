"""Full-ranking top-K evaluation.

For every user with at least one positive in the evaluated split, all items
the user has *not* interacted with in training form the candidate pool
("the items that are not interacted by the user are viewed as negative
samples"); the model ranks them and Recall@K / NDCG@K are averaged over
users.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence

import numpy as np

from ..core.base import Recommender, score_branches
from ..data.dataset import Dataset
from .metrics import mean_metric, ndcg_at_k, recall_at_k
from .topk import masked_topk


def _chunk_scorer(model: Recommender) -> Callable[[np.ndarray], np.ndarray]:
    """Score function for one evaluation pass.

    For models with a factorizable score, the expensive graph propagation is
    frozen *once* here (via ``export_embeddings``) and every user chunk is
    scored from the frozen branches — the same kernel serving uses, so the
    numbers are identical to calling ``predict_scores`` per chunk, minus the
    per-chunk propagation.  Models without an export (DeepFM, test doubles)
    fall back to their ``predict_scores``.
    """
    export = getattr(model, "export_embeddings", None)
    if export is not None:
        try:
            branches = export()
        except NotImplementedError:
            pass
        else:
            return lambda users: score_branches(branches, users)
    return model.predict_scores


def topk_rankings(
    model: Recommender,
    dataset: Dataset,
    users: Sequence[int],
    k: int,
    exclude_train: bool = True,
    user_chunk: int = 256,
    candidate_items: Optional[Dict[int, np.ndarray]] = None,
) -> Dict[int, np.ndarray]:
    """Top-k ranked item ids per user.

    ``candidate_items`` optionally restricts each user's pool (used by the
    CIR/UCIR cold-start protocols); items outside the pool are masked out.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    users = np.asarray(list(users), dtype=np.int64)
    train_pos = dataset.train_positive_sets()
    rankings: Dict[int, np.ndarray] = {}
    scorer = _chunk_scorer(model)

    for start in range(0, len(users), user_chunk):
        chunk = users[start : start + user_chunk]
        scores = np.array(scorer(chunk), dtype=np.float64)
        for row, user in enumerate(chunk):
            user = int(user)
            exclude = sorted(train_pos.get(user, ())) if exclude_train else None
            rankings[user] = masked_topk(
                scores[row],
                k,
                exclude_items=exclude or None,
                candidate_items=None if candidate_items is None else candidate_items[user],
            )
    return rankings


def metrics_from_rankings(
    rankings: Dict[int, np.ndarray],
    positives: Dict[int, set],
    ks: Iterable[int],
) -> Dict[str, float]:
    """Recall@K / NDCG@K averaged over the users in ``positives``.

    Shared by :func:`evaluate` and any caller that already has rankings in
    hand (pre-served top-K lists, cached experiment artifacts); each user's
    ranking must be at least ``max(ks)`` long.
    """
    ks = sorted(set(int(k) for k in ks))
    if not ks:
        raise ValueError("need at least one cutoff k")
    users = sorted(positives)
    results: Dict[str, float] = {}
    for k in ks:
        recalls = [recall_at_k(rankings[user], positives[user], k) for user in users]
        ndcgs = [ndcg_at_k(rankings[user], positives[user], k) for user in users]
        results[f"Recall@{k}"] = mean_metric(recalls)
        results[f"NDCG@{k}"] = mean_metric(ndcgs)
    return results


def evaluate(
    model: Recommender,
    dataset: Dataset,
    split: str = "test",
    ks: Iterable[int] = (50, 100),
    exclude_train: bool = True,
    user_chunk: int = 256,
) -> Dict[str, float]:
    """Recall@K / NDCG@K averaged over users with positives in ``split``."""
    ks = sorted(set(int(k) for k in ks))
    if not ks:
        raise ValueError("need at least one cutoff k")
    positives = dataset.split_positive_sets(split)
    if not positives:
        raise ValueError(f"split {split!r} has no interactions to evaluate")
    rankings = topk_rankings(
        model, dataset, sorted(positives), k=max(ks), exclude_train=exclude_train,
        user_chunk=user_chunk,
    )
    return metrics_from_rankings(rankings, positives, ks)
