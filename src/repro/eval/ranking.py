"""Full-ranking top-K evaluation.

For every user with at least one positive in the evaluated split, all items
the user has *not* interacted with in training form the candidate pool
("the items that are not interacted by the user are viewed as negative
samples"); the model ranks them and Recall@K / NDCG@K are averaged over
users.

Execution goes through :mod:`repro.runtime`: user chunks are ranked by the
sharded batch-inference kernel, optionally across a process/thread worker
pool (``workers`` / ``mode`` / ``shards``).  Those knobs change wall time
only — rankings and metrics are bit-identical for every setting, including
plain serial execution.  Scoring stays in the model's own dtype (a float32
factorization is evaluated in float32 memory; no float64 upcast copy of the
full-catalog score matrix is ever made).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.base import Recommender
from ..data.dataset import Dataset, expand_csr_rows
from ..runtime.engine import BatchRuntime, RuntimeConfig
from .metrics import mean_metric, ndcg_at_k, recall_at_k
from .topk import masked_topk, topk_indices_rows


def _export_branches(model: Recommender):
    """Frozen score branches, or None for non-factorizable models.

    For models with a factorizable score, the expensive graph propagation is
    frozen *once* per evaluation pass (via ``export_embeddings``) and every
    user chunk is scored from the frozen branches — the same kernel serving
    uses, so the numbers are identical to calling ``predict_scores`` per
    chunk, minus the per-chunk propagation.
    """
    export = getattr(model, "export_embeddings", None)
    if export is None:
        return None
    try:
        return export()
    except NotImplementedError:
        return None


def topk_rankings(
    model: Recommender,
    dataset: Dataset,
    users: Sequence[int],
    k: int,
    exclude_train: bool = True,
    user_chunk: int = 256,
    candidate_items: Optional[Dict[int, np.ndarray]] = None,
    workers: int = 0,
    mode: str = "auto",
    shards: int = 1,
    profiler=None,
    runtime: Optional[BatchRuntime] = None,
    tracer=None,
) -> Dict[int, np.ndarray]:
    """Top-k ranked item ids per user.

    ``candidate_items`` optionally restricts each user's pool (used by the
    CIR/UCIR cold-start protocols); items outside the pool are masked out.
    When given, every evaluated user must be present (an explicit ``None``
    value means unrestricted) — a silently absent user would be ranked
    against the full catalog and inflate protocol metrics, so that is a
    ``KeyError``, exactly as it was before the batch runtime existed.
    ``workers`` / ``mode`` / ``shards`` select the execution strategy (see
    :class:`repro.runtime.RuntimeConfig`); results are identical for every
    choice.  Models whose score does not factorize (DeepFM) are evaluated
    through their ``predict_scores`` serially.

    ``runtime`` lets callers that evaluate repeatedly (benchmark loops,
    recurring bulk jobs) reuse one :class:`~repro.runtime.BatchRuntime` —
    amortizing worker-pool startup — instead of this function building one
    per call.  A passed-in runtime must already hold the model's current
    frozen branches, and its exclusion mask must agree with
    ``exclude_train`` (checked); it is not closed here, and the
    ``workers`` / ``mode`` / ``shards`` / ``user_chunk`` arguments are
    ignored in its favor.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    users = np.asarray(list(users), dtype=np.int64)

    if candidate_items is not None:
        missing = [int(user) for user in users if int(user) not in candidate_items]
        if missing:
            raise KeyError(
                f"candidate_items is missing evaluated users {missing[:5]}"
                f"{'...' if len(missing) > 5 else ''}; pass an explicit None "
                "for users whose pool is unrestricted"
            )

    if runtime is not None:
        if runtime.has_exclusions != exclude_train:
            raise ValueError(
                f"runtime was built {'with' if runtime.has_exclusions else 'without'} "
                f"an exclusion mask but exclude_train={exclude_train}; rebuild the "
                "runtime to match the protocol"
            )
        ordered, ids, _ = runtime.rank(
            users, k, candidate_items=candidate_items, profiler=profiler, tracer=tracer
        )
        return {int(user): ids[row] for row, user in enumerate(ordered)}

    branches = _export_branches(model)
    if branches is None:
        return _rank_with_scorer(
            model.predict_scores, dataset, users, k, exclude_train, user_chunk,
            candidate_items, profiler,
        )

    exclude_csr = dataset.train_exclusion_csr() if exclude_train else None
    config = RuntimeConfig(workers=workers, mode=mode, shards=shards, user_chunk=user_chunk)
    with BatchRuntime(branches, config, exclude_csr=exclude_csr) as live_runtime:
        ordered, ids, _ = live_runtime.rank(
            users, k, candidate_items=candidate_items, profiler=profiler, tracer=tracer
        )
    return {int(user): ids[row] for row, user in enumerate(ordered)}


def _rank_with_scorer(
    scorer,
    dataset: Dataset,
    users: np.ndarray,
    k: int,
    exclude_train: bool,
    user_chunk: int,
    candidate_items: Optional[Dict[int, np.ndarray]],
    profiler,
) -> Dict[int, np.ndarray]:
    """Serial fallback for models without a frozen factorization.

    Chunks still rank through the vectorized row kernel in the scorer's own
    dtype; the score matrix is copied once per chunk (the scorer may hand
    out views of internal state, and masking happens in place).
    """
    import time

    indptr, indices = dataset.train_exclusion_csr() if exclude_train else (None, None)
    k = min(k, dataset.n_items)
    rankings: Dict[int, np.ndarray] = {}
    for start in range(0, len(users), user_chunk):
        chunk = users[start : start + user_chunk]
        tick = time.perf_counter()
        scores = np.asarray(scorer(chunk))
        if scores.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            scores = scores.astype(np.float64)
        else:
            scores = scores.copy()
        if indptr is not None:
            rows, cols = expand_csr_rows(indptr, indices, chunk)
            if rows is not None:
                scores[rows, cols] = -np.inf
        tock = time.perf_counter()
        top = topk_indices_rows(scores, k).astype(np.int64, copy=False)
        for row, user in enumerate(chunk):
            user = int(user)
            candidates = None if candidate_items is None else candidate_items.get(user)
            if candidates is not None:
                exclude = None
                if indptr is not None:
                    exclude = indices[indptr[user] : indptr[user + 1]]
                rankings[user] = masked_topk(
                    scores[row],
                    k,
                    # already masked in place above; passing exclude again is
                    # a no-op but keeps the reference-kernel call shape
                    exclude_items=exclude if exclude is not None and len(exclude) else None,
                    candidate_items=candidates,
                )
            else:
                rankings[user] = top[row]
        if profiler is not None:
            profiler.add_seconds("score", tock - tick)
            profiler.add_seconds("topk", time.perf_counter() - tock)
    return rankings


def metrics_from_rankings(
    rankings: Dict[int, np.ndarray],
    positives: Dict[int, set],
    ks: Iterable[int],
) -> Dict[str, float]:
    """Recall@K / NDCG@K averaged over the users in ``positives``.

    Shared by :func:`evaluate` and any caller that already has rankings in
    hand (pre-served top-K lists, cached experiment artifacts); each user's
    ranking must be at least ``max(ks)`` long.

    The computation is vectorized across users but arithmetic-identical to
    the per-user :func:`~repro.eval.metrics.recall_at_k` /
    :func:`~repro.eval.metrics.ndcg_at_k` loop (same summation order per
    user, same division), so results are bit-for-bit what the scalar
    reference produces — a property the test suite pins.  Ragged rankings
    (shorter than ``max(ks)``) fall back to the scalar loop.
    """
    ks = sorted(set(int(k) for k in ks))
    if not ks:
        raise ValueError("need at least one cutoff k")
    users = sorted(positives)
    if not users:
        raise ValueError("no per-user values to average")
    kmax = ks[-1]

    lengths = {len(rankings[user]) for user in users}
    if min(lengths) < kmax:
        return _metrics_scalar(rankings, positives, ks, users)

    ranked = np.vstack([np.asarray(rankings[user][:kmax], dtype=np.int64) for user in users])
    if ranked.size and ranked.min() < 0:
        # Sentinel-padded rows (e.g. a BulkRecommendations export where a
        # user's pool was smaller than k): negative ids would wrap as column
        # indices in the membership gather, so take the scalar path, which
        # treats them as plain misses.
        return _metrics_scalar(rankings, positives, ks, users)
    n_relevant = np.array([len(positives[user]) for user in users], dtype=np.int64)
    if (n_relevant == 0).any():
        raise ValueError("relevant set must be non-empty")

    # Per-user hit mask over the top-kmax positions, built chunk-wise
    # through a boolean membership table.  The (row, item) pairs of every
    # user's positive set are materialized in one pass.
    from itertools import chain

    total = int(n_relevant.sum())
    positive_cols = np.fromiter(
        chain.from_iterable(positives[user] for user in users), dtype=np.int64, count=total
    )
    positive_rows = np.repeat(np.arange(len(users)), n_relevant)
    n_items = max(int(ranked.max()) if ranked.size else 0, int(positive_cols.max())) + 1

    hits = np.zeros(ranked.shape, dtype=bool)
    row_chunk = max(1, (8 << 20) // max(n_items, 1))  # ~8 MB table at a time
    boundaries = np.searchsorted(positive_rows, np.arange(0, len(users) + row_chunk, row_chunk))
    for index, start in enumerate(range(0, len(users), row_chunk)):
        stop = min(start + row_chunk, len(users))
        table = np.zeros((stop - start, n_items), dtype=bool)
        lo, hi = boundaries[index], boundaries[index + 1]
        table[positive_rows[lo:hi] - start, positive_cols[lo:hi]] = True
        hits[start:stop] = table[np.arange(stop - start)[:, None], ranked[start:stop]]

    # Discount terms and ideal-DCG prefix sums, computed with the exact same
    # scalar expressions (and sequential summation order) as ndcg_at_k.
    discounts = np.array([1.0 / np.log2(rank + 2.0) for rank in range(kmax)])
    idcg_table = np.zeros(kmax + 1)
    for rank in range(kmax):
        idcg_table[rank + 1] = idcg_table[rank] + discounts[rank]

    results: Dict[str, float] = {}
    hit_gains = np.where(hits, discounts[None, :], 0.0)
    dcg = np.zeros(len(users))
    done = 0
    for k in ks:  # ascending: each cutoff extends the shared DCG prefix
        recalls = hits[:, :k].sum(axis=1) / n_relevant
        for rank in range(done, k):  # sequential, matching the scalar sum order
            dcg += hit_gains[:, rank]
        done = k
        ndcgs = dcg / idcg_table[np.minimum(k, n_relevant)]
        results[f"Recall@{k}"] = mean_metric(recalls)
        results[f"NDCG@{k}"] = mean_metric(ndcgs)
    return results


def _metrics_scalar(rankings, positives, ks, users) -> Dict[str, float]:
    """The per-user reference loop (kept for ragged rankings and tests)."""
    results: Dict[str, float] = {}
    for k in ks:
        recalls = [recall_at_k(rankings[user], positives[user], k) for user in users]
        ndcgs = [ndcg_at_k(rankings[user], positives[user], k) for user in users]
        results[f"Recall@{k}"] = mean_metric(recalls)
        results[f"NDCG@{k}"] = mean_metric(ndcgs)
    return results


def evaluate(
    model: Recommender,
    dataset: Dataset,
    split: str = "test",
    ks: Iterable[int] = (50, 100),
    exclude_train: bool = True,
    user_chunk: int = 256,
    workers: int = 0,
    mode: str = "auto",
    shards: int = 1,
    profiler=None,
    runtime: Optional[BatchRuntime] = None,
    tracer=None,
) -> Dict[str, float]:
    """Recall@K / NDCG@K averaged over users with positives in ``split``.

    ``workers`` / ``mode`` / ``shards`` parallelize the ranking pass (see
    :mod:`repro.runtime`); metrics are bit-identical for every setting.
    With a ``profiler``, wall time is attributed to the ``score`` / ``topk``
    / ``merge`` / ``metrics`` phases (in parallel modes the kernel phases
    are summed worker CPU seconds).  ``runtime`` reuses a caller-managed
    :class:`~repro.runtime.BatchRuntime` across calls (see
    :func:`topk_rankings`).
    """
    ks = sorted(set(int(k) for k in ks))
    if not ks:
        raise ValueError("need at least one cutoff k")
    positives = dataset.split_positive_sets(split)
    if not positives:
        raise ValueError(f"split {split!r} has no interactions to evaluate")

    import time

    from ..profiling import Profiler

    if profiler is None:
        profiler = Profiler(enabled=False)
    from ..obs.trace import maybe_span

    start = time.perf_counter()
    with maybe_span(
        tracer, "eval", cat="eval", attrs={"split": split, "n_users": len(positives)}
    ):
        rankings = topk_rankings(
            model, dataset, sorted(positives), k=max(ks), exclude_train=exclude_train,
            user_chunk=user_chunk, workers=workers, mode=mode, shards=shards,
            profiler=profiler, runtime=runtime, tracer=tracer,
        )
        with maybe_span(tracer, "eval.metrics", cat="eval"):
            with profiler.phase("metrics"):
                metrics = metrics_from_rankings(rankings, positives, ks)
    profiler.count("evaluated_users", len(positives))
    # Wall clock for throughput: the kernel phases are summed across
    # workers in parallel modes and would understate users/sec.
    profiler.count("eval_wall_seconds", time.perf_counter() - start)
    return metrics
