"""Extended ranking metrics beyond the paper's Recall/NDCG.

These support the deeper analyses in the examples and ablation benches:

* classic ranking metrics — Precision@K, HitRate@K, MRR@K, MAP@K;
* price-aware diagnostics — *price calibration error* (how far recommended
  price levels sit from the user's historically preferred levels) and
  *price/category coverage* (how much of the attribute space the top-K
  explores), which quantify the behaviour Figs 2/6 describe qualitatively.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

import numpy as np

from ..data.dataset import Dataset


def precision_at_k(ranked_items: np.ndarray, relevant: Set[int], k: int) -> float:
    """Fraction of the top-k that is relevant."""
    _check(relevant, k)
    top = ranked_items[:k]
    hits = sum(1 for item in top if int(item) in relevant)
    return hits / k


def hit_rate_at_k(ranked_items: np.ndarray, relevant: Set[int], k: int) -> float:
    """1 if any relevant item appears in the top-k else 0."""
    _check(relevant, k)
    return float(any(int(item) in relevant for item in ranked_items[:k]))


def mrr_at_k(ranked_items: np.ndarray, relevant: Set[int], k: int) -> float:
    """Reciprocal rank of the first hit within the top-k (0 if none)."""
    _check(relevant, k)
    for rank, item in enumerate(ranked_items[:k]):
        if int(item) in relevant:
            return 1.0 / (rank + 1)
    return 0.0


def average_precision_at_k(ranked_items: np.ndarray, relevant: Set[int], k: int) -> float:
    """AP@K: mean of precision at each hit position, normalized by min(k, |R|)."""
    _check(relevant, k)
    hits = 0
    precision_sum = 0.0
    for rank, item in enumerate(ranked_items[:k]):
        if int(item) in relevant:
            hits += 1
            precision_sum += hits / (rank + 1)
    denominator = min(k, len(relevant))
    return precision_sum / denominator


def _check(relevant: Set[int], k: int) -> None:
    if not relevant:
        raise ValueError("relevant set must be non-empty")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")


# ----------------------------------------------------------------------
# Price-aware diagnostics
# ----------------------------------------------------------------------

def preferred_price_level(dataset: Dataset, user: int) -> float:
    """The user's mean purchased price level in training (their comfort zone)."""
    if not 0 <= user < dataset.n_users:
        raise IndexError(f"user {user} out of range [0, {dataset.n_users})")
    mask = dataset.train.users == user
    items = dataset.train.items[mask]
    if len(items) == 0:
        raise ValueError(f"user {user} has no training interactions")
    return float(dataset.item_price_levels[items].mean())


def price_calibration_error(
    dataset: Dataset, rankings: Dict[int, np.ndarray], k: int = 10
) -> float:
    """Mean |recommended price level − user's preferred level|, over users.

    A price-aware recommender should score low: its top-K should sit near
    each user's historical price comfort zone.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    errors = []
    for user, ranked in rankings.items():
        try:
            preferred = preferred_price_level(dataset, user)
        except ValueError:
            continue
        top = np.asarray(ranked[:k], dtype=np.int64)
        recommended = dataset.item_price_levels[top].astype(np.float64)
        errors.append(float(np.abs(recommended - preferred).mean()))
    if not errors:
        raise ValueError("no users with training history among the rankings")
    return float(np.mean(errors))


def category_coverage(
    dataset: Dataset, rankings: Dict[int, np.ndarray], k: int = 10
) -> float:
    """Mean fraction of all categories represented in each user's top-K."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not rankings:
        raise ValueError("rankings is empty")
    fractions = []
    for ranked in rankings.values():
        top = np.asarray(ranked[:k], dtype=np.int64)
        fractions.append(len(set(dataset.item_categories[top].tolist())) / dataset.n_categories)
    return float(np.mean(fractions))


def price_level_coverage(
    dataset: Dataset, rankings: Dict[int, np.ndarray], k: int = 10
) -> float:
    """Mean fraction of all price levels represented in each user's top-K."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not rankings:
        raise ValueError("rankings is empty")
    fractions = []
    for ranked in rankings.values():
        top = np.asarray(ranked[:k], dtype=np.int64)
        fractions.append(
            len(set(dataset.item_price_levels[top].tolist())) / dataset.n_price_levels
        )
    return float(np.mean(fractions))


def evaluate_extended(
    rankings: Dict[int, np.ndarray],
    positives: Dict[int, Set[int]],
    ks: Sequence[int] = (10, 50),
) -> Dict[str, float]:
    """All classic extended metrics, averaged over users with positives."""
    users = [u for u in rankings if positives.get(u)]
    if not users:
        raise ValueError("no users with positives among the rankings")
    results: Dict[str, float] = {}
    for k in sorted(set(int(k) for k in ks)):
        results[f"Precision@{k}"] = float(
            np.mean([precision_at_k(rankings[u], positives[u], k) for u in users])
        )
        results[f"HitRate@{k}"] = float(
            np.mean([hit_rate_at_k(rankings[u], positives[u], k) for u in users])
        )
        results[f"MRR@{k}"] = float(
            np.mean([mrr_at_k(rankings[u], positives[u], k) for u in users])
        )
        results[f"MAP@{k}"] = float(
            np.mean([average_precision_at_k(rankings[u], positives[u], k) for u in users])
        )
    return results
