"""Cold-start evaluation protocols CIR and UCIR (Section V-F / Fig 6).

Both protocols evaluate users who purchase items in the test set from
categories they never touched in training:

* **CIR** (category item recommendation): the candidate pool is every item
  belonging to the user's *test-positive unexplored* categories.
* **UCIR** (unexplored category item recommendation): the candidate pool is
  every item whose category is *not* among the user's train-positive
  categories.

Ground truth in both cases is the user's test items from unexplored
categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

import numpy as np

from ..core.base import Recommender
from ..data.dataset import Dataset
from .metrics import mean_metric, ndcg_at_k, recall_at_k
from .ranking import topk_rankings


@dataclass
class ColdStartTask:
    """Per-user cold-start targets and candidate pools."""

    users: list
    relevant: Dict[int, Set[int]]  # test items from unexplored categories
    cir_pool: Dict[int, np.ndarray]
    ucir_pool: Dict[int, np.ndarray]


def build_cold_start_task(dataset: Dataset) -> ColdStartTask:
    """Find users with unexplored-category test purchases and their pools."""
    item_cats = dataset.item_categories
    train_pos = dataset.train_positive_sets()
    test_pos = dataset.split_positive_sets("test")

    items_by_category: Dict[int, np.ndarray] = {
        int(c): np.flatnonzero(item_cats == c) for c in range(dataset.n_categories)
    }
    all_categories = set(range(dataset.n_categories))

    users, relevant, cir_pool, ucir_pool = [], {}, {}, {}
    for user, test_items in test_pos.items():
        train_cats = {int(item_cats[i]) for i in train_pos.get(user, ())}
        unexplored_items = {i for i in test_items if int(item_cats[i]) not in train_cats}
        if not unexplored_items:
            continue
        test_unexplored_cats = {int(item_cats[i]) for i in unexplored_items}
        users.append(user)
        relevant[user] = unexplored_items
        cir_pool[user] = np.concatenate(
            [items_by_category[c] for c in sorted(test_unexplored_cats)]
        )
        ucir_cats = sorted(all_categories - train_cats)
        ucir_pool[user] = (
            np.concatenate([items_by_category[c] for c in ucir_cats])
            if ucir_cats
            else np.array([], dtype=np.int64)
        )
    return ColdStartTask(users=users, relevant=relevant, cir_pool=cir_pool, ucir_pool=ucir_pool)


def evaluate_cold_start(
    model: Recommender,
    dataset: Dataset,
    protocol: str = "CIR",
    ks: Iterable[int] = (50,),
    task: ColdStartTask | None = None,
) -> Dict[str, float]:
    """Recall@K / NDCG@K under the chosen cold-start protocol."""
    if protocol not in ("CIR", "UCIR"):
        raise ValueError(f"protocol must be 'CIR' or 'UCIR', got {protocol!r}")
    task = task or build_cold_start_task(dataset)
    if not task.users:
        raise ValueError("no cold-start users found (no unexplored-category test purchases)")
    pools = task.cir_pool if protocol == "CIR" else task.ucir_pool
    users = [u for u in task.users if len(pools[u]) > 0]
    if not users:
        raise ValueError(f"{protocol}: every candidate pool is empty")

    ks = sorted(set(int(k) for k in ks))
    rankings = topk_rankings(
        model,
        dataset,
        users,
        k=max(ks),
        exclude_train=True,
        candidate_items={u: pools[u] for u in users},
    )
    results: Dict[str, float] = {}
    for k in ks:
        recalls = [recall_at_k(rankings[u], task.relevant[u], k) for u in users]
        ndcgs = [ndcg_at_k(rankings[u], task.relevant[u], k) for u in users]
        results[f"Recall@{k}"] = mean_metric(recalls)
        results[f"NDCG@{k}"] = mean_metric(ndcgs)
    return results
