"""The masked top-K selection kernel shared by evaluation and serving.

Both the offline evaluator (:mod:`repro.eval.ranking`) and the online
retrieval engine (:mod:`repro.serving.retrieval`) must rank the same scores
to the same item ids — otherwise offline metrics stop predicting online
behaviour.  They therefore share this one kernel.

Selection is *deterministic*: ties are broken by ascending item id, exactly
as a stable full ``argsort`` of the negated scores would order them.  The
implementation still uses :func:`numpy.argpartition` (O(n) selection instead
of O(n log n) sorting) but repairs the partition's arbitrary choice among
boundary ties, so the output matches the naive reference bit-for-bit on
every input.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: score assigned to masked-out entries.  A true ``-inf`` so that masking is
#: absolute: no finite score, however extreme, can leak past a mask, and
#: ``x + NEG_INF == NEG_INF`` exactly for every finite ``x``.
NEG_INF = -np.inf


def topk_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries, best first, ties by lowest index.

    Equivalent to ``np.argsort(-scores, kind="stable")[:k]`` but O(n) in the
    selection step.  ``k`` is clipped to ``len(scores)``.
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
    n = scores.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, n)
    if k == n:
        return np.argsort(-scores, kind="stable")

    part = np.argpartition(-scores, k - 1)[:k]
    # argpartition picks an arbitrary subset of the values tied at the k-th
    # rank; rebuild the selection so boundary ties go to the lowest indices.
    threshold = scores[part].min()
    above = np.flatnonzero(scores > threshold)
    tied = np.flatnonzero(scores == threshold)
    chosen = np.concatenate([above, tied[: k - len(above)]])
    return chosen[np.argsort(-scores[chosen], kind="stable")]


def topk_pairs(item_ids: np.ndarray, scores: np.ndarray, k: int) -> np.ndarray:
    """Top-``k`` positions into parallel ``(item_ids, scores)`` arrays.

    Same ordering contract as :func:`topk_indices` — descending score, ties
    broken by ascending *item id* (not array position).  Used by the blocked
    retrieval path to merge per-block candidates.
    """
    item_ids = np.asarray(item_ids)
    scores = np.asarray(scores)
    if item_ids.shape != scores.shape:
        raise ValueError(f"ids/scores shape mismatch: {item_ids.shape} vs {scores.shape}")
    order = np.lexsort((item_ids, -scores))
    return order[: min(k, len(order))]


def masked_topk(
    scores: np.ndarray,
    k: int,
    exclude_items: Optional[Sequence[int]] = None,
    candidate_items: Optional[np.ndarray] = None,
    drop_masked: bool = False,
) -> np.ndarray:
    """Top-``k`` item ids of one user's score row under masking.

    ``candidate_items`` restricts the pool (everything outside it is pushed
    to :data:`NEG_INF`); ``exclude_items`` removes specific ids (typically
    the user's training positives).  With ``drop_masked`` the result omits
    masked entries instead of letting them pad out a short pool, so callers
    that surface results to users never emit an excluded item.  (A
    legitimate item whose own score is ``-inf`` is indistinguishable from a
    masked one and is dropped too; finite scores are never affected.)
    """
    scores = np.asarray(scores, dtype=np.float64)
    masked = candidate_items is not None or exclude_items is not None
    if candidate_items is not None:
        mask = np.full(scores.shape[0], NEG_INF)
        mask[candidate_items] = 0.0
        scores = scores + mask
    if exclude_items is not None and len(exclude_items):
        scores = scores.copy()
        scores[np.asarray(exclude_items, dtype=np.int64)] = NEG_INF
    top = topk_indices(scores, k)
    if drop_masked and masked:
        top = top[scores[top] > NEG_INF]
    return top
