"""The masked top-K selection kernel shared by evaluation and serving.

Both the offline evaluator (:mod:`repro.eval.ranking`) and the online
retrieval engine (:mod:`repro.serving.retrieval`) must rank the same scores
to the same item ids — otherwise offline metrics stop predicting online
behaviour.  They therefore share this one kernel.

Selection is *deterministic*: ties are broken by ascending item id, exactly
as a stable full ``argsort`` of the negated scores would order them.  The
implementation still uses :func:`numpy.argpartition` (O(n) selection instead
of O(n log n) sorting) but repairs the partition's arbitrary choice among
boundary ties, so the output matches the naive reference bit-for-bit on
every input.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: score assigned to masked-out entries.  A true ``-inf`` so that masking is
#: absolute: no finite score, however extreme, can leak past a mask, and
#: ``x + NEG_INF == NEG_INF`` exactly for every finite ``x``.
NEG_INF = -np.inf


def topk_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries, best first, ties by lowest index.

    Equivalent to ``np.argsort(-scores, kind="stable")[:k]`` but O(n) in the
    selection step.  ``k`` is clipped to ``len(scores)``.
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
    n = scores.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, n)
    if k == n:
        return np.argsort(-scores, kind="stable")

    part = np.argpartition(-scores, k - 1)[:k]
    # argpartition picks an arbitrary subset of the values tied at the k-th
    # rank; rebuild the selection so boundary ties go to the lowest indices.
    threshold = scores[part].min()
    above = np.flatnonzero(scores > threshold)
    tied = np.flatnonzero(scores == threshold)
    chosen = np.concatenate([above, tied[: k - len(above)]])
    return chosen[np.argsort(-scores[chosen], kind="stable")]


def partition_topk_rows(scores: np.ndarray, k: int):
    """Row-wise argpartition top-``k`` plus boundary-tie diagnostics.

    Returns ``(part, part_scores, ambiguous_rows)`` where ``part`` is the
    ``(rows, k)`` index set of each row's ``k`` largest scores (arbitrary
    order, arbitrary choice among ties at the k-th score) and
    ``ambiguous_rows`` lists the rows where that choice *was* arbitrary —
    more entries tied at the threshold than open slots.  Every
    deterministic selection kernel in this repo (:func:`topk_indices_rows`,
    the :func:`topk_pairs_rows` fast path, the IVF fine stage) partitions
    through here and then repairs exactly the ambiguous rows, so the
    ties-resolve-to-lowest-ids contract lives in one place.
    """
    part = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    part_scores = np.take_along_axis(scores, part, axis=1)
    threshold = part_scores.min(axis=1)
    n_above = (part_scores > threshold[:, None]).sum(axis=1)
    n_tied = (scores == threshold[:, None]).sum(axis=1)
    return part, part_scores, np.flatnonzero(n_tied > k - n_above)


def topk_indices_rows(scores: np.ndarray, k: int) -> np.ndarray:
    """Row-wise :func:`topk_indices`: one ``(rows, k)`` matrix per call.

    Bit-identical to calling :func:`topk_indices` on every row — the batch
    evaluation runtime depends on that for its parallel == serial contract —
    but the partition/selection runs vectorized across the whole chunk.
    Rows whose k-boundary ties are ambiguous (more entries tied at the
    threshold than open slots) are repaired through the per-row kernel;
    with continuous scores that is a vanishing fraction of rows.
    """
    scores = np.asarray(scores)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {scores.shape}")
    rows, n = scores.shape
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, n)
    if rows == 0:
        return np.empty((0, k), dtype=np.intp)
    if k == n:
        return np.argsort(-scores, axis=1, kind="stable")

    part, _, ambiguous = partition_topk_rows(scores, k)
    # Selected ids in ascending order per row, then a stable sort on the
    # negated scores: ties at equal score keep ascending id — exactly the
    # (score desc, id asc) order topk_indices produces.
    selected = np.sort(part, axis=1)
    selected_scores = np.take_along_axis(scores, selected, axis=1)
    order = np.argsort(-selected_scores, axis=1, kind="stable")
    top = np.take_along_axis(selected, order, axis=1)

    # The partition's choice among boundary ties is arbitrary whenever more
    # entries tie at the threshold than there are slots left above it.
    for row in ambiguous:
        top[row] = topk_indices(scores[row], k)
    return top


def topk_pairs(item_ids: np.ndarray, scores: np.ndarray, k: int) -> np.ndarray:
    """Top-``k`` positions into parallel ``(item_ids, scores)`` arrays.

    Same ordering contract as :func:`topk_indices` — descending score, ties
    broken by ascending *item id* (not array position).  Used by the blocked
    retrieval path to merge per-block candidates.
    """
    item_ids = np.asarray(item_ids)
    scores = np.asarray(scores)
    if item_ids.shape != scores.shape:
        raise ValueError(f"ids/scores shape mismatch: {item_ids.shape} vs {scores.shape}")
    order = np.lexsort((item_ids, -scores))
    return order[: min(k, len(order))]


def topk_pairs_rows(item_ids: np.ndarray, scores: np.ndarray, k: int) -> np.ndarray:
    """Row-wise :func:`topk_pairs` over ``(rows, L)`` candidate matrices.

    Bit-identical to ``topk_pairs`` applied per row (same lexicographic
    (score desc, item id asc) order).  Used to merge per-shard / per-probe
    candidates for a whole user chunk in one call.

    When ``k`` is much smaller than ``L`` (the ANN merge shape: a few
    thousand probed candidates reduced to a top-50), selection first
    narrows each row with :func:`numpy.argpartition` — O(L) instead of the
    O(L log L) full sort — and only the surviving ``k`` columns are
    ordered.  The partition's arbitrary choice among ties at the k-th
    score is repaired through the per-row reference kernel, exactly as
    :func:`topk_indices_rows` does, so the fast path cannot change a
    result.
    """
    item_ids = np.asarray(item_ids)
    scores = np.asarray(scores)
    if item_ids.ndim != 2 or item_ids.shape != scores.shape:
        raise ValueError(
            f"ids/scores must be matching 2-D arrays, got {item_ids.shape} vs {scores.shape}"
        )
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rows, length = scores.shape
    k = min(k, length)
    if rows == 0:
        return np.empty((0, k), dtype=np.intp)

    if k * 4 >= length:
        # Narrow matrices: two stable row sorts (a stable sort of a sort
        # is a lexsort) beat partition + repair bookkeeping.
        by_id = np.argsort(item_ids, axis=1, kind="stable")
        scores_by_id = np.take_along_axis(scores, by_id, axis=1)
        by_score = np.argsort(-scores_by_id, axis=1, kind="stable")
        order = np.take_along_axis(by_id, by_score, axis=1)
        return order[:, :k]

    part, part_scores, ambiguous = partition_topk_rows(scores, k)
    part_ids = np.take_along_axis(item_ids, part, axis=1)
    by_id = np.argsort(part_ids, axis=1, kind="stable")
    scores_by_id = np.take_along_axis(part_scores, by_id, axis=1)
    by_score = np.argsort(-scores_by_id, axis=1, kind="stable")
    order = np.take_along_axis(part, np.take_along_axis(by_id, by_score, axis=1), axis=1)

    # Rows where more entries tie at the k-th score than there are slots
    # left: the partition picked an arbitrary tied subset, the contract
    # wants the lowest item ids among them.
    for row in ambiguous:
        order[row] = topk_pairs(item_ids[row], scores[row], k)
    return order


def masked_topk(
    scores: np.ndarray,
    k: int,
    exclude_items: Optional[Sequence[int]] = None,
    candidate_items: Optional[np.ndarray] = None,
    drop_masked: bool = False,
) -> np.ndarray:
    """Top-``k`` item ids of one user's score row under masking.

    ``candidate_items`` restricts the pool (everything outside it is pushed
    to :data:`NEG_INF`); ``exclude_items`` removes specific ids (typically
    the user's training positives).  With ``drop_masked`` the result omits
    masked entries instead of letting them pad out a short pool, so callers
    that surface results to users never emit an excluded item.  (A
    legitimate item whose own score is ``-inf`` is indistinguishable from a
    masked one and is dropped too; finite scores are never affected.)

    Masking happens in the scores' own floating dtype — a float32 row is
    ranked as float32, never upcast to a float64 copy (upcasting is lossless
    for comparison order, so rankings are unchanged; the copy was pure
    memory traffic).  Non-float input is still coerced to float64.
    """
    scores = np.asarray(scores)
    if scores.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        scores = scores.astype(np.float64)
    masked = candidate_items is not None or exclude_items is not None
    if candidate_items is not None:
        mask = np.full(scores.shape[0], NEG_INF, dtype=scores.dtype)
        mask[candidate_items] = 0.0
        scores = scores + mask
    if exclude_items is not None and len(exclude_items):
        scores = scores.copy()
        scores[np.asarray(exclude_items, dtype=np.int64)] = NEG_INF
    top = topk_indices(scores, k)
    if drop_masked and masked:
        top = top[scores[top] > NEG_INF]
    return top
