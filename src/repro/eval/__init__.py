"""Evaluation: ranking metrics, protocols, and user-group analyses."""

from .metrics import mean_metric, ndcg_at_k, recall_at_k
from .topk import masked_topk, topk_indices, topk_pairs
from .ranking import evaluate, metrics_from_rankings, topk_rankings
from .ann import ann_recall_at_k, ann_recall_report
from .protocols import ColdStartTask, build_cold_start_task, evaluate_cold_start
from .groups import consistency_groups, evaluate_user_groups
from .extended_metrics import (
    average_precision_at_k,
    category_coverage,
    evaluate_extended,
    hit_rate_at_k,
    mrr_at_k,
    precision_at_k,
    preferred_price_level,
    price_calibration_error,
    price_level_coverage,
)

__all__ = [
    "mean_metric",
    "ndcg_at_k",
    "recall_at_k",
    "ann_recall_at_k",
    "ann_recall_report",
    "evaluate",
    "metrics_from_rankings",
    "topk_rankings",
    "masked_topk",
    "topk_indices",
    "topk_pairs",
    "ColdStartTask",
    "build_cold_start_task",
    "evaluate_cold_start",
    "consistency_groups",
    "evaluate_user_groups",
    "average_precision_at_k",
    "category_coverage",
    "evaluate_extended",
    "hit_rate_at_k",
    "mrr_at_k",
    "precision_at_k",
    "preferred_price_level",
    "price_calibration_error",
    "price_level_coverage",
]
