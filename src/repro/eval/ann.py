"""Recall-vs-exact evaluation of approximate retrieval.

ANN correctness is not a yes/no property — it is a measured overlap
between the approximate top-K and the exact one.  This module is the
measurement: :func:`ann_recall_at_k` compares two ranking dicts, and
:func:`ann_recall_report` sweeps an ANN index's ``nprobe`` operating
points against exact rankings computed through the batch runtime (so the
"exact" side is the very kernel production uses, not a second
implementation).

The CLI's ``repro evaluate --ann-check`` and the committed
``BENCH_ann.json`` gate both run through here.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..runtime.engine import BatchRuntime, RuntimeConfig


def ann_recall_at_k(
    exact_rankings: Dict[int, np.ndarray],
    ann_rankings: Dict[int, np.ndarray],
    k: int,
) -> float:
    """Mean per-user overlap between approximate and exact top-``k`` lists.

    For each user: ``|ann[:k] ∩ exact[:k]| / |exact[:k]|`` (sentinel ``-1``
    padding in either list is ignored; a user whose exact list is empty
    contributes 1.0 — there was nothing to recall).  Every exact user must
    be present in ``ann_rankings``; extra ANN users are ignored.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not exact_rankings:
        raise ValueError("no users to evaluate")
    recalls = []
    for user, exact in exact_rankings.items():
        if user not in ann_rankings:
            raise KeyError(f"ann_rankings is missing user {user}")
        exact_top = np.asarray(exact)[:k]
        exact_top = exact_top[exact_top >= 0]
        if len(exact_top) == 0:
            recalls.append(1.0)
            continue
        approx_top = np.asarray(ann_rankings[user])[:k]
        approx_top = approx_top[approx_top >= 0]
        recalls.append(len(np.intersect1d(exact_top, approx_top)) / len(exact_top))
    return float(np.mean(recalls))


def exact_rankings(
    index,
    users: Sequence[int],
    k: int,
    exclude_train: bool = True,
) -> Dict[int, np.ndarray]:
    """Exact top-``k`` per user from a frozen index, via the batch runtime."""
    exclude_csr = (
        (index.exclude_indptr, index.exclude_indices) if exclude_train else None
    )
    with BatchRuntime(index, RuntimeConfig(), exclude_csr=exclude_csr) as runtime:
        ordered, ids, _ = runtime.rank(users, k)
    return {int(user): ids[row] for row, user in enumerate(ordered)}


def ann_recall_report(
    index,
    ann,
    users: Sequence[int],
    k: int = 50,
    nprobes: Optional[Iterable[int]] = None,
    scorers: Sequence[str] = ("exact",),
    exclude_train: bool = True,
) -> Dict:
    """Recall@``k`` of an ANN index across operating points, vs exact search.

    ``nprobes`` defaults to the index's own default operating point; pass
    several to sweep the recall curve.  ``scorers`` selects the fine-stage
    arms (``"exact"``, plus ``"int8"`` / ``"pq"`` for an IVF index carrying
    those companions; a full-scan index runs its single arm regardless).
    Returns a JSON-safe report keyed
    ``arms[f"nprobe{n}_{scorer}"] -> {"recall_at_k": ...}``.
    """
    users = np.asarray(list(users), dtype=np.int64)
    reference = exact_rankings(index, users, k, exclude_train=exclude_train)
    exclude_csr = (
        (index.exclude_indptr, index.exclude_indices) if exclude_train else None
    )
    if nprobes is None:
        nprobes = (getattr(ann, "nprobe", None),)
    arms: Dict[str, Dict] = {}
    for nprobe in nprobes:
        for scorer in scorers:
            kwargs = {"exclude_csr": exclude_csr}
            if nprobe is not None:
                kwargs["nprobe"] = int(nprobe)
            if scorer != "exact" or hasattr(ann, "scorers"):
                kwargs["scorer"] = scorer
            try:
                ids, _ = ann.search(users, k, **kwargs)
            except TypeError:
                # A QuantizedIndex has no scorer/nprobe knobs; one arm only.
                ids, _ = ann.search(users, k, exclude_csr=exclude_csr)
            approx = {int(user): ids[row] for row, user in enumerate(users)}
            label = f"nprobe{nprobe}_{scorer}" if nprobe is not None else scorer
            arms[label] = {
                "nprobe": None if nprobe is None else int(nprobe),
                "scorer": scorer,
                "recall_at_k": ann_recall_at_k(reference, approx, k),
            }
    return {"k": int(k), "evaluated_users": int(len(users)), "arms": arms}
