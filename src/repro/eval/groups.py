"""Per-user-group evaluation (Table VI: consistent vs inconsistent users)."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from ..analysis.cwtp import split_users_by_consistency
from ..core.base import Recommender
from ..data.dataset import Dataset
from .metrics import mean_metric, ndcg_at_k, recall_at_k
from .ranking import topk_rankings


def evaluate_user_groups(
    model: Recommender,
    dataset: Dataset,
    groups: Dict[str, Sequence[int]],
    split: str = "test",
    ks: Iterable[int] = (50,),
) -> Dict[str, Dict[str, float]]:
    """Metrics per named user group (only users with positives in ``split``)."""
    ks = sorted(set(int(k) for k in ks))
    positives = dataset.split_positive_sets(split)
    results: Dict[str, Dict[str, float]] = {}
    for group_name, group_users in groups.items():
        users = [int(u) for u in group_users if int(u) in positives]
        if not users:
            raise ValueError(f"group {group_name!r} has no evaluable users in {split!r}")
        rankings = topk_rankings(model, dataset, users, k=max(ks))
        group_metrics: Dict[str, float] = {}
        for k in ks:
            group_metrics[f"Recall@{k}"] = mean_metric(
                [recall_at_k(rankings[u], positives[u], k) for u in users]
            )
            group_metrics[f"NDCG@{k}"] = mean_metric(
                [ndcg_at_k(rankings[u], positives[u], k) for u in users]
            )
        results[group_name] = group_metrics
    return results


def consistency_groups(dataset: Dataset) -> Dict[str, np.ndarray]:
    """The paper's Table VI split: CWTP-entropy consistent vs inconsistent."""
    consistent, inconsistent = split_users_by_consistency(dataset)
    return {
        "consistent": np.asarray(consistent, dtype=np.int64),
        "inconsistent": np.asarray(inconsistent, dtype=np.int64),
    }
