"""The BPR training loop shared by PUP and every trainable baseline.

Implements the paper's semi-supervised graph auto-encoder training: the
encoder runs on the full graph, the decoder only reconstructs user-item
edges via the BPR pairwise objective (Eq. 4) with L2 regularization on the
batch embeddings, Adam, and a step lr decay.

Every fit is profiled: wall time is attributed to ``sampling`` / ``forward``
/ ``backward`` / ``step`` (plus ``validate``) via :class:`repro.profiling.Profiler`,
surfaced on :attr:`TrainResult.profile` and — with ``verbose`` — as a
per-epoch progress line with throughput (triples/sec).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.base import Recommender
from ..data.dataset import Dataset
from ..data.sampling import NegativeSampler
from ..eval.ranking import _export_branches, evaluate
from ..runtime.engine import BatchRuntime, RuntimeConfig
from ..nn import (
    Adam,
    StepDecay,
    bpr_loss,
    bpr_loss_paper_eq4,
    fused_bpr_loss,
    fused_l2_on_batch,
    l2_on_batch,
)
from ..profiling import Profiler
from .config import TrainConfig

#: the phases that make up pure training time (excludes validation)
TRAIN_PHASES = ("sampling", "forward", "backward", "step")


@dataclass
class TrainResult:
    """Loss curve, validation history, profile, and the best checkpoint."""

    epoch_losses: List[float] = field(default_factory=list)
    validation_history: List[Dict[str, float]] = field(default_factory=list)
    best_metric: float = -np.inf
    best_epoch: int = -1
    epochs_run: int = 0
    #: JSON-safe profiler summary (phase seconds/shares, triples/sec); None
    #: for non-trainable models that skip the loop
    profile: Optional[Dict] = None

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs were run")
        return self.epoch_losses[-1]

    @property
    def triples_per_sec(self) -> Optional[float]:
        """Training throughput over the whole fit (None if not profiled)."""
        if not self.profile:
            return None
        return self.profile.get("triples_per_sec")

    def to_dict(self) -> Dict:
        """JSON-safe summary of the run.

        When validation tracking is off, ``best_metric``/``best_epoch`` keep
        their ``-inf``/``-1`` sentinels in memory but serialize as ``None``:
        ``-Infinity`` is not valid JSON and a fake epoch ``-1`` would be
        indistinguishable from real data in metrics files.
        """
        tracked = np.isfinite(self.best_metric)
        return {
            "epoch_losses": [float(loss) for loss in self.epoch_losses],
            "validation_history": [
                {name: float(value) for name, value in metrics.items()}
                for metrics in self.validation_history
            ],
            "best_metric": float(self.best_metric) if tracked else None,
            "best_epoch": int(self.best_epoch) if self.best_epoch >= 0 else None,
            "epochs_run": int(self.epochs_run),
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "TrainResult":
        """Inverse of :meth:`to_dict` (restores the in-memory sentinels)."""
        result = cls(
            epoch_losses=list(payload.get("epoch_losses") or []),
            validation_history=list(payload.get("validation_history") or []),
            epochs_run=int(payload.get("epochs_run") or 0),
            profile=payload.get("profile"),
        )
        if payload.get("best_metric") is not None:
            result.best_metric = float(payload["best_metric"])
        if payload.get("best_epoch") is not None:
            result.best_epoch = int(payload["best_epoch"])
        return result


class Trainer:
    """Trains a :class:`Recommender` on a :class:`Dataset` with BPR."""

    def __init__(
        self,
        model: Recommender,
        dataset: Dataset,
        config: Optional[TrainConfig] = None,
        registry=None,
        tracer=None,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config or TrainConfig()
        self._rng = np.random.default_rng(self.config.seed)
        #: populated by :meth:`fit`; inspectable afterwards.  Passing a
        #: ``registry`` surfaces the phase counters on a shared /metrics
        #: endpoint; a ``tracer`` records one span per epoch and per
        #: validation pass.
        self.profiler = Profiler(registry=registry)
        self.tracer = tracer
        #: one batch runtime reused across every validation pass of a fit
        #: (pool startup is paid once, not per epoch); see :meth:`_validate`
        self._eval_runtime = None

    def fit(self) -> TrainResult:
        """Run the training loop; returns the loss/validation history.

        Non-trainable models (ItemPop) return an empty result immediately.
        If validation tracking is enabled, the model is restored to its best
        validation checkpoint before returning.
        """
        result = TrainResult()
        if not self.model.trainable:
            return result

        config = self.config
        profiler = self.profiler
        profiler.reset()
        sampler = NegativeSampler(self.dataset, self._rng, rate=config.negative_rate)
        optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        schedule = StepDecay(optimizer, milestones=config.lr_milestones, factor=config.lr_decay)
        best_state = None
        bad_evals = 0

        from ..obs.trace import maybe_span

        try:
            for epoch in range(1, config.epochs + 1):
                self.model.train()
                epoch_loss, n_batches, epoch_triples = 0.0, 0, 0
                epoch_start = time.perf_counter()
                batches = sampler.epoch_batches(config.batch_size)
                with maybe_span(
                    self.tracer, "train.epoch", cat="train", attrs={"epoch": epoch}
                ) as epoch_span:
                    while True:
                        with profiler.phase("sampling"):
                            batch = next(batches, None)
                        if batch is None:
                            break
                        users, pos_items, neg_items = batch
                        epoch_loss += self._step(optimizer, users, pos_items, neg_items)
                        n_batches += 1
                        epoch_triples += len(users)
                    epoch_span.set_attr("n_batches", n_batches)
                schedule.step()
                epoch_seconds = time.perf_counter() - epoch_start
                profiler.count("triples", epoch_triples)
                profiler.count("batches", n_batches)
                profiler.count("epochs")
                result.epoch_losses.append(epoch_loss / max(n_batches, 1))
                result.epochs_run = epoch
                if config.verbose:
                    throughput = epoch_triples / epoch_seconds if epoch_seconds > 0 else 0.0
                    print(
                        f"[{self.model.name}] epoch {epoch:3d}/{config.epochs} "
                        f"loss={result.epoch_losses[-1]:.4f} lr={schedule.current_lr:g} "
                        f"{throughput:,.0f} triples/s ({profiler.format_phases()})"
                    )

                if config.eval_every and epoch % config.eval_every == 0:
                    with maybe_span(
                        self.tracer, "train.validate", cat="train", attrs={"epoch": epoch}
                    ):
                        with profiler.phase("validate"):
                            metrics = self._validate()
                    result.validation_history.append(metrics)
                    metric = metrics[f"Recall@{config.eval_k}"]
                    if metric > result.best_metric:
                        result.best_metric = metric
                        result.best_epoch = epoch
                        best_state = self._snapshot_state()
                        bad_evals = 0
                    else:
                        bad_evals += 1
                        if config.early_stop_patience and bad_evals >= config.early_stop_patience:
                            break
        finally:
            if self._eval_runtime is not None:
                self._eval_runtime.close()
                self._eval_runtime = None

        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        result.profile = self._profile_summary()
        return result

    # ------------------------------------------------------------------
    def _snapshot_state(self) -> Dict[str, np.ndarray]:
        """Deep-copied checkpoint of the model for early-stopping restore.

        ``state_dict`` copies every array, but the restored checkpoint being
        silently mutated by later epochs would be a correctness bug of the
        worst kind — so the no-aliasing property is asserted here rather
        than assumed.
        """
        state = self.model.state_dict()
        params = dict(self.model.named_parameters())
        for name, value in state.items():
            assert not np.shares_memory(value, params[name].data), (
                f"state_dict returned a view for {name!r}; best-epoch "
                "checkpoint would be mutated by subsequent training"
            )
        return state

    def _profile_summary(self) -> Dict:
        """Profiler summary with throughput computed over pure-train time."""
        profiler = self.profiler
        summary = profiler.summary()
        train_seconds = sum(profiler.seconds(p) for p in TRAIN_PHASES)
        summary["train_seconds"] = train_seconds
        if train_seconds > 0:
            summary["triples_per_sec"] = profiler.counter("triples") / train_seconds
        return summary

    def _step(
        self, optimizer: Adam, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> float:
        config = self.config
        profiler = self.profiler
        with profiler.phase("forward"):
            pos_scores, neg_scores, reg_tensors = self.model.bpr_forward(
                users, pos_items, neg_items
            )
            if config.loss == "bpr":
                ranking = fused_bpr_loss if config.fused_kernels else bpr_loss
            else:
                ranking = bpr_loss_paper_eq4
            loss = ranking(pos_scores, neg_scores)
            if config.l2_weight > 0 and reg_tensors:
                penalty = fused_l2_on_batch if config.fused_kernels else l2_on_batch
                loss = loss + penalty(reg_tensors, config.l2_weight, len(users))
            auxiliary = self.model.auxiliary_loss(users, pos_items)
            if auxiliary is not None:
                loss = loss + auxiliary
        with profiler.phase("backward"):
            optimizer.zero_grad()
            loss.backward()
        with profiler.phase("step"):
            optimizer.step()
        return loss.item()

    def _validate(self) -> Dict[str, float]:
        """One validation pass, through a runtime reused across epochs.

        The first validation builds a :class:`~repro.runtime.BatchRuntime`
        (with ``eval_workers`` / ``eval_mode`` / ``eval_shards`` from the
        config); later epochs :meth:`~repro.runtime.BatchRuntime.refresh`
        it with the epoch's re-frozen branches — the worker pool survives,
        so per-epoch cost is one export + one broadcast instead of pool
        startup (~28 ms per 4-process pool in BENCH_eval.json, paid every
        epoch before this).  Metrics are identical either way.  Models
        without a factorizable score fall back to plain per-call
        evaluation.
        """
        self.model.eval()
        if len(self.dataset.validation) == 0:
            raise ValueError("validation tracking enabled but the validation split is empty")
        config = self.config
        branches = _export_branches(self.model)
        if branches is None:
            return evaluate(
                self.model, self.dataset, split="validation", ks=(config.eval_k,),
                tracer=self.tracer,
            )
        if self._eval_runtime is None:
            self._eval_runtime = BatchRuntime(
                branches,
                RuntimeConfig(
                    workers=config.eval_workers,
                    mode=config.eval_mode,
                    shards=config.eval_shards,
                ),
                exclude_csr=self.dataset.train_exclusion_csr(),
            )
        else:
            self._eval_runtime.refresh(branches)
        return evaluate(
            self.model,
            self.dataset,
            split="validation",
            ks=(config.eval_k,),
            runtime=self._eval_runtime,
            tracer=self.tracer,
        )


def train_model(
    model: Recommender,
    dataset: Dataset,
    config: Optional[TrainConfig] = None,
    registry=None,
    tracer=None,
) -> TrainResult:
    """Convenience one-liner used by examples and benchmarks."""
    return Trainer(model, dataset, config, registry=registry, tracer=tracer).fit()
