"""The BPR training loop shared by PUP and every trainable baseline.

Implements the paper's semi-supervised graph auto-encoder training: the
encoder runs on the full graph, the decoder only reconstructs user-item
edges via the BPR pairwise objective (Eq. 4) with L2 regularization on the
batch embeddings, Adam, and a step lr decay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.base import Recommender
from ..data.dataset import Dataset
from ..data.sampling import NegativeSampler
from ..eval.ranking import evaluate
from ..nn import Adam, StepDecay, bpr_loss, bpr_loss_paper_eq4, l2_on_batch
from .config import TrainConfig


@dataclass
class TrainResult:
    """Loss curve, validation history and the best validation checkpoint."""

    epoch_losses: List[float] = field(default_factory=list)
    validation_history: List[Dict[str, float]] = field(default_factory=list)
    best_metric: float = -np.inf
    best_epoch: int = -1
    epochs_run: int = 0

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs were run")
        return self.epoch_losses[-1]

    def to_dict(self) -> Dict:
        """JSON-safe summary of the run.

        When validation tracking is off, ``best_metric``/``best_epoch`` keep
        their ``-inf``/``-1`` sentinels in memory but serialize as ``None``:
        ``-Infinity`` is not valid JSON and a fake epoch ``-1`` would be
        indistinguishable from real data in metrics files.
        """
        tracked = np.isfinite(self.best_metric)
        return {
            "epoch_losses": [float(loss) for loss in self.epoch_losses],
            "validation_history": [
                {name: float(value) for name, value in metrics.items()}
                for metrics in self.validation_history
            ],
            "best_metric": float(self.best_metric) if tracked else None,
            "best_epoch": int(self.best_epoch) if self.best_epoch >= 0 else None,
            "epochs_run": int(self.epochs_run),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "TrainResult":
        """Inverse of :meth:`to_dict` (restores the in-memory sentinels)."""
        result = cls(
            epoch_losses=list(payload.get("epoch_losses") or []),
            validation_history=list(payload.get("validation_history") or []),
            epochs_run=int(payload.get("epochs_run") or 0),
        )
        if payload.get("best_metric") is not None:
            result.best_metric = float(payload["best_metric"])
        if payload.get("best_epoch") is not None:
            result.best_epoch = int(payload["best_epoch"])
        return result


class Trainer:
    """Trains a :class:`Recommender` on a :class:`Dataset` with BPR."""

    def __init__(
        self,
        model: Recommender,
        dataset: Dataset,
        config: Optional[TrainConfig] = None,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config or TrainConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def fit(self) -> TrainResult:
        """Run the training loop; returns the loss/validation history.

        Non-trainable models (ItemPop) return an empty result immediately.
        If validation tracking is enabled, the model is restored to its best
        validation checkpoint before returning.
        """
        result = TrainResult()
        if not self.model.trainable:
            return result

        config = self.config
        sampler = NegativeSampler(self.dataset, self._rng, rate=config.negative_rate)
        optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        schedule = StepDecay(optimizer, milestones=config.lr_milestones, factor=config.lr_decay)
        best_state = None
        bad_evals = 0

        for epoch in range(1, config.epochs + 1):
            self.model.train()
            epoch_loss, n_batches = 0.0, 0
            for users, pos_items, neg_items in sampler.epoch_batches(config.batch_size):
                loss_value = self._step(optimizer, users, pos_items, neg_items)
                epoch_loss += loss_value
                n_batches += 1
            schedule.step()
            result.epoch_losses.append(epoch_loss / max(n_batches, 1))
            result.epochs_run = epoch
            if config.verbose:
                print(
                    f"[{self.model.name}] epoch {epoch:3d} "
                    f"loss={result.epoch_losses[-1]:.4f} lr={schedule.current_lr:g}"
                )

            if config.eval_every and epoch % config.eval_every == 0:
                metrics = self._validate()
                result.validation_history.append(metrics)
                metric = metrics[f"Recall@{config.eval_k}"]
                if metric > result.best_metric:
                    result.best_metric = metric
                    result.best_epoch = epoch
                    best_state = self.model.state_dict()
                    bad_evals = 0
                else:
                    bad_evals += 1
                    if config.early_stop_patience and bad_evals >= config.early_stop_patience:
                        break

        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return result

    # ------------------------------------------------------------------
    def _step(
        self, optimizer: Adam, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> float:
        pos_scores, neg_scores, reg_tensors = self.model.bpr_forward(users, pos_items, neg_items)
        loss_fn = bpr_loss if self.config.loss == "bpr" else bpr_loss_paper_eq4
        loss = loss_fn(pos_scores, neg_scores)
        if self.config.l2_weight > 0 and reg_tensors:
            loss = loss + l2_on_batch(reg_tensors, self.config.l2_weight, len(users))
        auxiliary = self.model.auxiliary_loss(users, pos_items)
        if auxiliary is not None:
            loss = loss + auxiliary
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return loss.item()

    def _validate(self) -> Dict[str, float]:
        self.model.eval()
        if len(self.dataset.validation) == 0:
            raise ValueError("validation tracking enabled but the validation split is empty")
        return evaluate(self.model, self.dataset, split="validation", ks=(self.config.eval_k,))


def train_model(
    model: Recommender, dataset: Dataset, config: Optional[TrainConfig] = None
) -> TrainResult:
    """Convenience one-liner used by examples and benchmarks."""
    return Trainer(model, dataset, config).fit()
