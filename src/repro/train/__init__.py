"""Training loop and configuration."""

from .config import TrainConfig
from .trainer import TrainResult, Trainer, train_model
from .persistence import (
    load_checkpoint,
    load_metadata,
    read_archive_arrays,
    read_archive_metadata,
    save_checkpoint,
    write_archive,
)

__all__ = [
    "TrainConfig",
    "TrainResult",
    "Trainer",
    "train_model",
    "load_checkpoint",
    "load_metadata",
    "save_checkpoint",
    "write_archive",
    "read_archive_metadata",
    "read_archive_arrays",
]
