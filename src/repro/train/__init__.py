"""Training loop and configuration."""

from .config import TrainConfig
from .trainer import TrainResult, Trainer, train_model
from .persistence import load_checkpoint, load_metadata, save_checkpoint

__all__ = [
    "TrainConfig",
    "TrainResult",
    "Trainer",
    "train_model",
    "load_checkpoint",
    "load_metadata",
    "save_checkpoint",
]
