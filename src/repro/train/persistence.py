"""Model checkpoint persistence (save/load trained weights as ``.npz``).

Checkpoints store every named parameter plus a metadata header so a loader
can verify it is restoring into a compatible architecture.
"""

from __future__ import annotations

import json
import os
from typing import Dict

import numpy as np

from ..core.base import Recommender

_METADATA_KEY = "__metadata__"


def save_checkpoint(model: Recommender, path: str, extra: Dict | None = None) -> str:
    """Serialize ``model``'s parameters to ``path`` (.npz appended if absent)."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)

    state = model.state_dict()
    metadata = {
        "model_name": model.name,
        "model_class": type(model).__name__,
        "n_users": model.n_users,
        "n_items": model.n_items,
        "parameter_names": sorted(state),
        "extra": extra or {},
    }
    arrays = dict(state)
    arrays[_METADATA_KEY] = np.frombuffer(
        json.dumps(metadata).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def load_metadata(path: str) -> Dict:
    """Read only the metadata header of a checkpoint."""
    with np.load(path) as archive:
        if _METADATA_KEY not in archive:
            raise ValueError(f"{path} is not a repro checkpoint (missing metadata)")
        raw = archive[_METADATA_KEY].tobytes().decode("utf-8")
    return json.loads(raw)


def load_checkpoint(model: Recommender, path: str, strict: bool = True) -> Dict:
    """Restore parameters into ``model``; returns the checkpoint metadata.

    With ``strict=True`` the checkpoint's model class and shape bookkeeping
    must match the target model exactly.
    """
    metadata = load_metadata(path)
    if strict:
        if metadata["model_class"] != type(model).__name__:
            raise ValueError(
                f"checkpoint holds {metadata['model_class']}, target is {type(model).__name__}"
            )
        if metadata["n_users"] != model.n_users or metadata["n_items"] != model.n_items:
            raise ValueError(
                "checkpoint user/item counts "
                f"({metadata['n_users']}/{metadata['n_items']}) do not match model "
                f"({model.n_users}/{model.n_items})"
            )
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files if name != _METADATA_KEY}
    model.load_state_dict(state)
    return metadata
