"""Persistence of trained artifacts: ``.npz`` archives and array directories.

Two artifact kinds share the on-disk formats:

* **model checkpoints** (:func:`save_checkpoint` / :func:`load_checkpoint`)
  — every named parameter of a :class:`~repro.core.base.Recommender`;
* **serving indexes** (:mod:`repro.serving.index`) — frozen embedding
  branches exported for online retrieval.

Two interchangeable container formats exist:

* **compressed ``.npz``** — a single file whose ``__metadata__`` entry is a
  JSON header (stored as a uint8 byte array).  Compact, but loading always
  decompresses every array into fresh memory.
* **archive directory** — ``metadata.json`` plus one uncompressed ``.npy``
  file per array (:func:`write_archive_dir`).  Loadable with
  ``mmap=True``, in which case arrays are memory-mapped straight off disk:
  multiple worker processes attaching to the same directory share the page
  cache instead of each deserializing its own copy.

:func:`read_archive_metadata` / :func:`read_archive_arrays` accept either
format transparently (a path that is a directory is read as one); the
checkpoint functions below and the serving index build on them.

Durability guarantees (both formats):

* **Atomic publish** — writers fill a ``*.tmp-<pid>`` staging sibling and
  rename it into place, so a crashed export can never be loaded
  half-written; stale staging leftovers are swept by
  :func:`clean_stale_archives` (called on experiment load) and by the next
  write to the same path.
* **Content checksums** — the metadata header records a SHA-256 digest per
  array; readers verify on load (skipped for ``mmap`` loads unless forced)
  and raise the typed :class:`ArchiveCorrupted` naming the bad array.
  Archives written before checksums existed load without verification.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from typing import Dict, List, Optional

import numpy as np

from ..core.base import Recommender

_METADATA_KEY = "__metadata__"
_DIR_METADATA_FILENAME = "metadata.json"
_NPY_SUFFIX = ".npy"
_STAGING_TOKEN = ".tmp-"

#: metadata header field holding the per-array SHA-256 hex digests
CHECKSUM_KEY = "sha256"


class ArchiveCorrupted(RuntimeError):
    """An archive's stored SHA-256 checksum did not match its bytes on load."""

#: header field naming the artifact kind; absent in archives written before
#: the field existed, which are treated as checkpoints
KIND_KEY = "kind"
CHECKPOINT_KIND = "checkpoint"


# ----------------------------------------------------------------------
# Generic archive layer
# ----------------------------------------------------------------------
def _array_checksum(value: np.ndarray) -> str:
    """SHA-256 hex digest of an array's canonical (C-order) raw bytes."""
    return hashlib.sha256(np.asarray(value).tobytes()).hexdigest()


def _metadata_with_checksums(metadata: Dict, arrays: Dict[str, np.ndarray]) -> Dict:
    if CHECKSUM_KEY in metadata:
        raise ValueError(f"metadata key {CHECKSUM_KEY!r} is reserved for checksums")
    out = dict(metadata)
    out[CHECKSUM_KEY] = {name: _array_checksum(value) for name, value in arrays.items()}
    return out


def clean_stale_archives(directory: str) -> List[str]:
    """Remove ``*.tmp-*`` staging leftovers a crashed writer abandoned.

    Returns the paths removed.  Safe to call on any directory (missing ones
    are a no-op); experiment/artifact loaders call this on startup so a
    crash during a previous export can never leave half-written archives
    around to be confused with real ones.
    """
    removed: List[str] = []
    if not os.path.isdir(directory):
        return removed
    for entry in sorted(os.listdir(directory)):
        if _STAGING_TOKEN not in entry:
            continue
        full = os.path.join(directory, entry)
        if os.path.isdir(full):
            shutil.rmtree(full, ignore_errors=True)
        else:
            try:
                os.remove(full)
            except OSError:
                continue
        removed.append(full)
    return removed


def _clean_own_staging(path: str) -> None:
    """Drop stale staging siblings of ``path`` from earlier crashed writes."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    prefix = os.path.basename(path) + _STAGING_TOKEN
    if not os.path.isdir(directory):
        return
    for entry in os.listdir(directory):
        if not entry.startswith(prefix):
            continue
        full = os.path.join(directory, entry)
        if os.path.isdir(full):
            shutil.rmtree(full, ignore_errors=True)
        else:
            try:
                os.remove(full)
            except OSError:
                pass


def write_archive(path: str, arrays: Dict[str, np.ndarray], metadata: Dict) -> str:
    """Write ``arrays`` plus a JSON ``metadata`` header to ``path`` (.npz).

    The write is staged through a ``*.tmp-<pid>`` sibling and atomically
    renamed into place, and the header gains a SHA-256 digest per array
    (verified by :func:`read_archive_arrays`).
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    if _METADATA_KEY in arrays:
        raise ValueError(f"array name {_METADATA_KEY!r} is reserved for the header")
    payload = dict(arrays)
    payload[_METADATA_KEY] = np.frombuffer(
        json.dumps(_metadata_with_checksums(metadata, arrays)).encode("utf-8"),
        dtype=np.uint8,
    )
    _clean_own_staging(path)
    # np.savez appends ".npz" to names that lack it, so the staging name
    # keeps the suffix: foo.npz -> foo.npz.tmp-<pid>.npz
    staging = f"{path}{_STAGING_TOKEN}{os.getpid()}.npz"
    np.savez_compressed(staging, **payload)
    os.replace(staging, path)
    return path


def write_archive_dir(path: str, arrays: Dict[str, np.ndarray], metadata: Dict) -> str:
    """Write an uncompressed archive directory: metadata.json + one .npy per array.

    The per-array layout is what makes ``mmap`` loading possible — a zipped
    ``.npz`` cannot be memory-mapped.  Array names map directly to
    filenames, so they must not contain path separators.

    Every write is staged: the new generation is fully written to a
    ``*.tmp-<pid>`` sibling directory and renamed into place, so readers
    never see a half-written or mixed-generation archive.  A fresh write is
    fully atomic (the rename publishes a complete directory); an overwrite
    has a narrow no-archive window between removing the old generation and
    the rename, which fails loudly rather than serving mixed data.  The
    metadata header gains a SHA-256 digest per array (verified by
    :func:`read_archive_arrays`).
    """
    for name in arrays:
        if os.sep in name or (os.altsep and os.altsep in name) or name == _DIR_METADATA_FILENAME:
            raise ValueError(f"array name {name!r} cannot be used as an archive filename")

    full_metadata = _metadata_with_checksums(metadata, arrays)

    def _fill(target: str) -> None:
        os.makedirs(target, exist_ok=True)
        with open(os.path.join(target, _DIR_METADATA_FILENAME), "w") as handle:
            json.dump(full_metadata, handle, indent=2, sort_keys=True)
            handle.write("\n")
        for name, value in arrays.items():
            np.save(os.path.join(target, name + _NPY_SUFFIX), np.asarray(value))

    _clean_own_staging(path)
    staging = f"{path}{_STAGING_TOKEN}{os.getpid()}"
    _fill(staging)
    if os.path.isdir(path):
        shutil.rmtree(path)
    os.rename(staging, path)
    return path


def read_archive_metadata(path: str) -> Dict:
    """Read only the JSON header of an archive (either container format)."""
    if os.path.isdir(path):
        header = os.path.join(path, _DIR_METADATA_FILENAME)
        if not os.path.exists(header):
            raise ValueError(f"{path} is not a repro archive directory (missing {_DIR_METADATA_FILENAME})")
        with open(header) as handle:
            return json.load(handle)
    with np.load(path) as archive:
        if _METADATA_KEY not in archive:
            raise ValueError(f"{path} is not a repro archive (missing metadata header)")
        raw = archive[_METADATA_KEY].tobytes().decode("utf-8")
    return json.loads(raw)


def read_archive_arrays(
    path: str, mmap: bool = False, verify: Optional[bool] = None
) -> Dict[str, np.ndarray]:
    """Read every stored array (header excluded) from either container format.

    ``mmap=True`` memory-maps the arrays of a directory archive (read-only
    views backed by the OS page cache).  Compressed ``.npz`` archives cannot
    be mapped; the flag is silently ignored for them and the arrays are read
    into memory as before.

    ``verify`` controls SHA-256 checksum verification against the metadata
    header: the default (``None``) verifies except for ``mmap`` loads —
    hashing a mapped array would page the whole file in, defeating the
    point of mapping — and can be forced either way.  A mismatch raises
    :class:`ArchiveCorrupted`; archives written without checksums are never
    verified.
    """
    if verify is None:
        verify = not mmap
    if os.path.isdir(path):
        arrays: Dict[str, np.ndarray] = {}
        for entry in sorted(os.listdir(path)):
            if not entry.endswith(_NPY_SUFFIX):
                continue
            arrays[entry[: -len(_NPY_SUFFIX)]] = np.load(
                os.path.join(path, entry), mmap_mode="r" if mmap else None
            )
    else:
        with np.load(path) as archive:
            arrays = {
                name: archive[name] for name in archive.files if name != _METADATA_KEY
            }
    if verify:
        _verify_checksums(path, arrays)
    return arrays


def _verify_checksums(path: str, arrays: Dict[str, np.ndarray]) -> None:
    checksums = read_archive_metadata(path).get(CHECKSUM_KEY)
    if not checksums:
        return  # pre-checksum archive: nothing to verify against
    for name, array in arrays.items():
        expected = checksums.get(name)
        if expected is None:
            continue  # array added outside the writer; covered elsewhere
        actual = _array_checksum(array)
        if actual != expected:
            raise ArchiveCorrupted(
                f"array {name!r} in archive {path!r} failed checksum verification "
                f"(stored {expected[:12]}..., loaded {actual[:12]}...); the archive "
                "is corrupt or was modified outside the writer"
            )


def archive_kind(metadata: Dict) -> str:
    """Artifact kind recorded in a header (legacy headers are checkpoints)."""
    return metadata.get(KIND_KEY, CHECKPOINT_KIND)


# ----------------------------------------------------------------------
# Model checkpoints
# ----------------------------------------------------------------------
def save_checkpoint(model: Recommender, path: str, extra: Dict | None = None) -> str:
    """Serialize ``model``'s parameters to ``path`` (.npz appended if absent).

    Arrays are stored in their native dtype — a float32 model writes a
    float32 (half-size) checkpoint — and the header records the precision;
    ``load_checkpoint`` casts to whatever precision the target model was
    built with.
    """
    state = model.state_dict()
    metadata = {
        KIND_KEY: CHECKPOINT_KIND,
        "model_name": model.name,
        "model_class": type(model).__name__,
        "n_users": model.n_users,
        "n_items": model.n_items,
        "parameter_names": sorted(state),
        "precision": sorted({str(value.dtype) for value in state.values()}),
        "extra": extra or {},
    }
    return write_archive(path, state, metadata)


def load_metadata(path: str) -> Dict:
    """Read only the metadata header of a checkpoint."""
    return read_archive_metadata(path)


def load_checkpoint(model: Recommender, path: str, strict: bool = True) -> Dict:
    """Restore parameters into ``model``; returns the checkpoint metadata.

    With ``strict=True`` the checkpoint's model class and shape bookkeeping
    must match the target model exactly.
    """
    metadata = load_metadata(path)
    if archive_kind(metadata) != CHECKPOINT_KIND:
        raise ValueError(
            f"{path} holds a {archive_kind(metadata)!r} artifact, not a model checkpoint"
        )
    if strict:
        if metadata["model_class"] != type(model).__name__:
            raise ValueError(
                f"checkpoint holds {metadata['model_class']}, target is {type(model).__name__}"
            )
        if metadata["n_users"] != model.n_users or metadata["n_items"] != model.n_items:
            raise ValueError(
                "checkpoint user/item counts "
                f"({metadata['n_users']}/{metadata['n_items']}) do not match model "
                f"({model.n_users}/{model.n_items})"
            )
    model.load_state_dict(read_archive_arrays(path))
    return metadata
