"""Persistence of trained artifacts: ``.npz`` archives and array directories.

Two artifact kinds share the on-disk formats:

* **model checkpoints** (:func:`save_checkpoint` / :func:`load_checkpoint`)
  — every named parameter of a :class:`~repro.core.base.Recommender`;
* **serving indexes** (:mod:`repro.serving.index`) — frozen embedding
  branches exported for online retrieval.

Two interchangeable container formats exist:

* **compressed ``.npz``** — a single file whose ``__metadata__`` entry is a
  JSON header (stored as a uint8 byte array).  Compact, but loading always
  decompresses every array into fresh memory.
* **archive directory** — ``metadata.json`` plus one uncompressed ``.npy``
  file per array (:func:`write_archive_dir`).  Loadable with
  ``mmap=True``, in which case arrays are memory-mapped straight off disk:
  multiple worker processes attaching to the same directory share the page
  cache instead of each deserializing its own copy.

:func:`read_archive_metadata` / :func:`read_archive_arrays` accept either
format transparently (a path that is a directory is read as one); the
checkpoint functions below and the serving index build on them.
"""

from __future__ import annotations

import json
import os
from typing import Dict

import numpy as np

from ..core.base import Recommender

_METADATA_KEY = "__metadata__"
_DIR_METADATA_FILENAME = "metadata.json"
_NPY_SUFFIX = ".npy"

#: header field naming the artifact kind; absent in archives written before
#: the field existed, which are treated as checkpoints
KIND_KEY = "kind"
CHECKPOINT_KIND = "checkpoint"


# ----------------------------------------------------------------------
# Generic archive layer
# ----------------------------------------------------------------------
def write_archive(path: str, arrays: Dict[str, np.ndarray], metadata: Dict) -> str:
    """Write ``arrays`` plus a JSON ``metadata`` header to ``path`` (.npz)."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    if _METADATA_KEY in arrays:
        raise ValueError(f"array name {_METADATA_KEY!r} is reserved for the header")
    payload = dict(arrays)
    payload[_METADATA_KEY] = np.frombuffer(
        json.dumps(metadata).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)
    return path


def write_archive_dir(path: str, arrays: Dict[str, np.ndarray], metadata: Dict) -> str:
    """Write an uncompressed archive directory: metadata.json + one .npy per array.

    The per-array layout is what makes ``mmap`` loading possible — a zipped
    ``.npz`` cannot be memory-mapped.  Array names map directly to
    filenames, so they must not contain path separators.

    Overwriting an existing archive is staged: the new generation is fully
    written to a temporary sibling directory and swapped in, so readers
    never see a silent mix of old and new arrays — an interrupted rewrite
    leaves either the old archive or (in a narrow window) no archive, both
    of which fail loudly rather than serving mixed-generation data.
    """
    for name in arrays:
        if os.sep in name or (os.altsep and os.altsep in name) or name == _DIR_METADATA_FILENAME:
            raise ValueError(f"array name {name!r} cannot be used as an archive filename")

    def _fill(target: str) -> None:
        os.makedirs(target, exist_ok=True)
        with open(os.path.join(target, _DIR_METADATA_FILENAME), "w") as handle:
            json.dump(metadata, handle, indent=2, sort_keys=True)
            handle.write("\n")
        for name, value in arrays.items():
            np.save(os.path.join(target, name + _NPY_SUFFIX), np.asarray(value))

    if not os.path.isdir(path):
        _fill(path)
        return path

    import shutil

    staging = f"{path}.tmp-{os.getpid()}"
    if os.path.isdir(staging):
        shutil.rmtree(staging)
    _fill(staging)
    shutil.rmtree(path)
    os.rename(staging, path)
    return path


def read_archive_metadata(path: str) -> Dict:
    """Read only the JSON header of an archive (either container format)."""
    if os.path.isdir(path):
        header = os.path.join(path, _DIR_METADATA_FILENAME)
        if not os.path.exists(header):
            raise ValueError(f"{path} is not a repro archive directory (missing {_DIR_METADATA_FILENAME})")
        with open(header) as handle:
            return json.load(handle)
    with np.load(path) as archive:
        if _METADATA_KEY not in archive:
            raise ValueError(f"{path} is not a repro archive (missing metadata header)")
        raw = archive[_METADATA_KEY].tobytes().decode("utf-8")
    return json.loads(raw)


def read_archive_arrays(path: str, mmap: bool = False) -> Dict[str, np.ndarray]:
    """Read every stored array (header excluded) from either container format.

    ``mmap=True`` memory-maps the arrays of a directory archive (read-only
    views backed by the OS page cache).  Compressed ``.npz`` archives cannot
    be mapped; the flag is silently ignored for them and the arrays are read
    into memory as before.
    """
    if os.path.isdir(path):
        arrays: Dict[str, np.ndarray] = {}
        for entry in sorted(os.listdir(path)):
            if not entry.endswith(_NPY_SUFFIX):
                continue
            arrays[entry[: -len(_NPY_SUFFIX)]] = np.load(
                os.path.join(path, entry), mmap_mode="r" if mmap else None
            )
        return arrays
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files if name != _METADATA_KEY}


def archive_kind(metadata: Dict) -> str:
    """Artifact kind recorded in a header (legacy headers are checkpoints)."""
    return metadata.get(KIND_KEY, CHECKPOINT_KIND)


# ----------------------------------------------------------------------
# Model checkpoints
# ----------------------------------------------------------------------
def save_checkpoint(model: Recommender, path: str, extra: Dict | None = None) -> str:
    """Serialize ``model``'s parameters to ``path`` (.npz appended if absent).

    Arrays are stored in their native dtype — a float32 model writes a
    float32 (half-size) checkpoint — and the header records the precision;
    ``load_checkpoint`` casts to whatever precision the target model was
    built with.
    """
    state = model.state_dict()
    metadata = {
        KIND_KEY: CHECKPOINT_KIND,
        "model_name": model.name,
        "model_class": type(model).__name__,
        "n_users": model.n_users,
        "n_items": model.n_items,
        "parameter_names": sorted(state),
        "precision": sorted({str(value.dtype) for value in state.values()}),
        "extra": extra or {},
    }
    return write_archive(path, state, metadata)


def load_metadata(path: str) -> Dict:
    """Read only the metadata header of a checkpoint."""
    return read_archive_metadata(path)


def load_checkpoint(model: Recommender, path: str, strict: bool = True) -> Dict:
    """Restore parameters into ``model``; returns the checkpoint metadata.

    With ``strict=True`` the checkpoint's model class and shape bookkeeping
    must match the target model exactly.
    """
    metadata = load_metadata(path)
    if archive_kind(metadata) != CHECKPOINT_KIND:
        raise ValueError(
            f"{path} holds a {archive_kind(metadata)!r} artifact, not a model checkpoint"
        )
    if strict:
        if metadata["model_class"] != type(model).__name__:
            raise ValueError(
                f"checkpoint holds {metadata['model_class']}, target is {type(model).__name__}"
            )
        if metadata["n_users"] != model.n_users or metadata["n_items"] != model.n_items:
            raise ValueError(
                "checkpoint user/item counts "
                f"({metadata['n_users']}/{metadata['n_items']}) do not match model "
                f"({model.n_users}/{model.n_items})"
            )
    model.load_state_dict(read_archive_arrays(path))
    return metadata
