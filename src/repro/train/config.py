"""Training configuration.

Paper defaults (Section V-A3): BPR loss, embedding size 64, Adam with
initial lr 1e-2, batch size 1024, negative sampling rate 1, 200 epochs with
the learning rate reduced by 10x twice.  The defaults here are the same
hyper-parameters at reduced epoch count (the synthetic datasets are far
smaller than the originals and converge much earlier).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Sequence


@dataclass
class TrainConfig:
    """Hyper-parameters for :class:`~repro.train.trainer.Trainer`."""

    epochs: int = 40
    batch_size: int = 1024
    learning_rate: float = 1e-2
    l2_weight: float = 1e-4
    negative_rate: int = 1
    lr_milestones: Sequence[int] = field(default_factory=lambda: (20, 30))
    lr_decay: float = 0.1
    seed: int = 0
    eval_every: int = 0  # 0 disables validation tracking
    eval_k: int = 50
    eval_workers: int = 0  # parallel workers for validation passes (0 = serial)
    eval_mode: str = "auto"  # validation pool mode: auto/serial/thread/process
    eval_shards: int = 1  # item-range shards per validation chunk
    early_stop_patience: int = 0  # 0 disables early stopping
    loss: str = "bpr"  # "bpr" (standard, stable) or "bpr_eq4" (literal Eq. 4)
    fused_kernels: bool = True  # single-node BPR/L2 kernels (False: composed ops)
    verbose: bool = False

    def __post_init__(self) -> None:
        # Canonicalize so configs compare equal across JSON round-trips.
        self.lr_milestones = tuple(int(m) for m in self.lr_milestones)
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.l2_weight < 0:
            raise ValueError(f"l2_weight must be >= 0, got {self.l2_weight}")
        if self.negative_rate < 1:
            raise ValueError(f"negative_rate must be >= 1, got {self.negative_rate}")
        if self.eval_every < 0 or self.early_stop_patience < 0:
            raise ValueError("eval_every and early_stop_patience must be >= 0")
        if self.eval_workers < 0 or self.eval_shards < 1:
            raise ValueError("eval_workers must be >= 0 and eval_shards >= 1")
        if self.eval_mode not in ("auto", "serial", "thread", "process"):
            raise ValueError(
                f"eval_mode must be auto/serial/thread/process, got {self.eval_mode!r}"
            )
        if self.early_stop_patience and not self.eval_every:
            raise ValueError("early stopping requires eval_every > 0")
        if self.loss not in ("bpr", "bpr_eq4"):
            raise ValueError(f"loss must be 'bpr' or 'bpr_eq4', got {self.loss!r}")
        self.fused_kernels = bool(self.fused_kernels)

    # ------------------------------------------------------------------
    # Serialization (used by repro.experiments specs and artifact dirs)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; inverse of :meth:`from_dict`."""
        payload = asdict(self)
        payload["lr_milestones"] = [int(m) for m in self.lr_milestones]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TrainConfig":
        """Rebuild a config serialized by :meth:`to_dict` (validates fields)."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown TrainConfig fields: {sorted(unknown)}")
        payload = dict(payload)
        if "lr_milestones" in payload:
            payload["lr_milestones"] = tuple(int(m) for m in payload["lr_milestones"])
        return cls(**payload)
