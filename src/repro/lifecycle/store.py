"""Versioned index store: crash-safe publication of candidate indexes.

Directory layout under one store root::

    journal/                    write-ahead event journal (:mod:`.journal`)
    versions/
      v000001/
        index.npz               EmbeddingIndex archive
        ann.npz                 IVFIndex archive
        manifest.json           written LAST — its presence commits the dir
      v000002/ ...
    CURRENT.json                atomic pointer to the live version

Two rules make every state reachable by a crash recoverable:

1. **Manifest-last version dirs.**  A version directory is only real once
   ``manifest.json`` exists; the manifest is staged and ``os.replace``-d
   into place after every archive inside the dir has been durably
   written (each archive is itself staged+renamed by the persistence
   layer).  A SIGKILL mid-build leaves a manifest-less dir, which
   :meth:`VersionStore.recover` sweeps — a torn candidate can never be
   listed, promoted, or served.

2. **The CURRENT flip is the commit point.**  Promotion writes
   ``CURRENT.json`` via staging+rename; everything before the rename is
   invisible, everything after is fully in effect.  Manifest *statuses*
   (candidate/live/superseded/rejected) are derived bookkeeping updated
   after the flip, so :meth:`recover` reconciles them against the
   pointer on startup: whatever CURRENT names is live, any other
   "live"-stamped manifest is demoted to superseded.

Rollback is a plain pointer flip to the live version's parent (every
manifest records its parent), plus a "rejected" stamp on the version
being rolled away — no archives are deleted, so a bad rollback decision
is itself reversible.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from typing import Dict, List, Optional, Tuple

from ..serving.ann.ivf import IVFIndex
from ..serving.index import EmbeddingIndex
from ..train.persistence import clean_stale_archives

MANIFEST_FILENAME = "manifest.json"
INDEX_FILENAME = "index.npz"
ANN_FILENAME = "ann.npz"
CURRENT_FILENAME = "CURRENT.json"

#: manifest lifecycle states
STATUSES = ("candidate", "live", "superseded", "rejected")

_VERSION_RE = re.compile(r"^v(\d{6})$")


class StoreError(RuntimeError):
    """A version store operation was asked for an impossible transition."""


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_json_atomic(path: str, payload: Dict) -> None:
    """Stage + ``os.replace`` a JSON file (same pattern as the archives)."""
    staging = f"{path}.tmp-{os.getpid()}"
    with open(staging, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(staging, path)
    _fsync_dir(os.path.dirname(path) or ".")


class VersionStore:
    """Filesystem-backed versioned index store (layout in module docstring)."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.versions_dir = os.path.join(self.root, "versions")
        self.journal_dir = os.path.join(self.root, "journal")
        os.makedirs(self.versions_dir, exist_ok=True)
        os.makedirs(self.journal_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # Naming / listing
    # ------------------------------------------------------------------
    def version_path(self, name: str) -> str:
        return os.path.join(self.versions_dir, name)

    def list_versions(self, committed_only: bool = True) -> List[str]:
        """Version names ascending; by default only manifest-bearing dirs."""
        names = []
        for entry in sorted(os.listdir(self.versions_dir)):
            if not _VERSION_RE.match(entry):
                continue
            if committed_only and not os.path.exists(
                os.path.join(self.versions_dir, entry, MANIFEST_FILENAME)
            ):
                continue
            names.append(entry)
        return names

    def next_version_name(self) -> str:
        """The next unused ``v%06d`` (counts torn dirs too — never reuses)."""
        highest = 0
        for entry in os.listdir(self.versions_dir):
            m = _VERSION_RE.match(entry)
            if m:
                highest = max(highest, int(m.group(1)))
        return f"v{highest + 1:06d}"

    # ------------------------------------------------------------------
    # Manifests
    # ------------------------------------------------------------------
    def manifest_path(self, name: str) -> str:
        return os.path.join(self.version_path(name), MANIFEST_FILENAME)

    def read_manifest(self, name: str) -> Dict:
        with open(self.manifest_path(name), "r", encoding="utf-8") as fh:
            return json.load(fh)

    def write_manifest(self, name: str, manifest: Dict) -> None:
        _write_json_atomic(self.manifest_path(name), manifest)

    def _stamp(self, name: str, status: str, **fields) -> None:
        if status not in STATUSES:
            raise ValueError(f"unknown status {status!r}")
        manifest = self.read_manifest(name)
        manifest["status"] = status
        manifest.update(fields)
        self.write_manifest(name, manifest)

    # ------------------------------------------------------------------
    # Candidate publication
    # ------------------------------------------------------------------
    def write_candidate(
        self,
        index: EmbeddingIndex,
        ann: IVFIndex,
        manifest: Dict,
        crash_hook=None,
    ) -> str:
        """Durably write a candidate version; returns its name.

        The manifest lands last — a crash anywhere before that (including
        one injected through ``crash_hook``, called between the archive
        writes and the manifest write) leaves a torn dir for
        :meth:`recover` to sweep, never a half-candidate.  The caller's
        ``manifest`` dict is extended with the structural fields
        (version/status/artifacts).
        """
        name = self.next_version_name()
        path = self.version_path(name)
        os.makedirs(path, exist_ok=True)
        index.save(os.path.join(path, INDEX_FILENAME))
        ann.save(os.path.join(path, ANN_FILENAME))
        if crash_hook is not None:
            crash_hook()
        full = dict(manifest)
        full.update(
            {
                "version": name,
                "status": "candidate",
                "artifacts": {"index": INDEX_FILENAME, "ann": ANN_FILENAME},
                "n_users": int(index.n_users),
                "n_items": int(index.n_items),
            }
        )
        self.write_manifest(name, full)
        return name

    def load_version(
        self, name: str, mmap: bool = False
    ) -> Tuple[EmbeddingIndex, IVFIndex]:
        """Load a committed version's index + ANN structure."""
        path = self.version_path(name)
        if not os.path.exists(self.manifest_path(name)):
            raise StoreError(f"version {name} has no manifest (torn or unknown)")
        index = EmbeddingIndex.load(os.path.join(path, INDEX_FILENAME), mmap=mmap)
        ann = IVFIndex.load(os.path.join(path, ANN_FILENAME), index, mmap=mmap)
        return index, ann

    # ------------------------------------------------------------------
    # The CURRENT pointer
    # ------------------------------------------------------------------
    @property
    def current_path(self) -> str:
        return os.path.join(self.root, CURRENT_FILENAME)

    def current(self) -> Optional[str]:
        """Name of the live version, or None before the first promote."""
        try:
            with open(self.current_path, "r", encoding="utf-8") as fh:
                return json.load(fh)["version"]
        except FileNotFoundError:
            return None

    def set_current(self, name: str) -> Optional[str]:
        """Flip the live pointer to ``name`` (THE commit point).

        Requires a committed manifest.  After the flip, stamps the new
        version ``live`` and the previous one ``superseded`` — those
        stamps are recoverable bookkeeping; the pointer alone defines
        truth.  Returns the previous version name.
        """
        if not os.path.exists(self.manifest_path(name)):
            raise StoreError(f"cannot promote {name}: no committed manifest")
        previous = self.current()
        _write_json_atomic(self.current_path, {"version": name})
        self._stamp(name, "live")
        if previous and previous != name and os.path.exists(self.manifest_path(previous)):
            self._stamp(previous, "superseded")
        return previous

    def reject(self, name: str, reason: str) -> None:
        """Stamp a candidate rejected (gate failure, rollback target…)."""
        self._stamp(name, "rejected", rejected_reason=reason)

    def rollback(self, reason: str = "manual rollback") -> str:
        """Flip CURRENT back to the live version's parent.

        The abandoned version is stamped ``rejected`` (its archives stay
        on disk — rollback is reversible by promoting it again).  Returns
        the name now live.
        """
        live = self.current()
        if live is None:
            raise StoreError("nothing is live; cannot roll back")
        parent = self.read_manifest(live).get("parent")
        if not parent:
            raise StoreError(f"live version {live} has no parent to roll back to")
        if not os.path.exists(self.manifest_path(parent)):
            raise StoreError(f"rollback target {parent} is missing its manifest")
        _write_json_atomic(self.current_path, {"version": parent})
        self._stamp(parent, "live")
        self._stamp(live, "rejected", rejected_reason=reason)
        return parent

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def recover(self) -> Dict[str, List[str]]:
        """Reconcile on-disk state after a crash; returns what was done.

        * sweeps version dirs without a manifest (torn candidates) and
          stale archive/JSON staging files,
        * re-derives manifest statuses from the CURRENT pointer: the
          pointed-at version is ``live``; any other manifest claiming
          ``live`` becomes ``superseded`` (a crash between the pointer
          flip and the stamps).

        Idempotent: a second call is a no-op.
        """
        actions: Dict[str, List[str]] = {"swept": [], "restamped": []}
        for entry in sorted(os.listdir(self.versions_dir)):
            path = os.path.join(self.versions_dir, entry)
            if not os.path.isdir(path):
                continue
            if not _VERSION_RE.match(entry):
                continue
            if not os.path.exists(os.path.join(path, MANIFEST_FILENAME)):
                shutil.rmtree(path)
                actions["swept"].append(entry)
                continue
            swept = clean_stale_archives(path)
            actions["swept"].extend(os.path.join(entry, s) for s in swept)
            for leftover in os.listdir(path):
                if f"{MANIFEST_FILENAME}.tmp-" in leftover:
                    os.remove(os.path.join(path, leftover))
                    actions["swept"].append(os.path.join(entry, leftover))
        for leftover in os.listdir(self.root):
            if f"{CURRENT_FILENAME}.tmp-" in leftover:
                os.remove(os.path.join(self.root, leftover))
                actions["swept"].append(leftover)

        live = self.current()
        if live is not None and not os.path.exists(self.manifest_path(live)):
            raise StoreError(
                f"CURRENT points at {live} which has no manifest — the store "
                "root was tampered with (the pointer only ever flips to "
                "committed versions)"
            )
        for name in self.list_versions():
            manifest = self.read_manifest(name)
            status = manifest.get("status")
            if name == live and status != "live":
                self._stamp(name, "live")
                actions["restamped"].append(f"{name}:live")
            elif name != live and status == "live":
                self._stamp(name, "superseded")
                actions["restamped"].append(f"{name}:superseded")
        return actions

    # ------------------------------------------------------------------
    def status(self) -> Dict:
        """One-shot store summary (the CLI's ``lifecycle status`` payload)."""
        versions = []
        for name in self.list_versions():
            m = self.read_manifest(name)
            versions.append(
                {
                    "version": name,
                    "status": m.get("status"),
                    "parent": m.get("parent"),
                    "n_items": m.get("n_items"),
                    "n_users": m.get("n_users"),
                    "journal_seq": m.get("journal_seq"),
                    "appended_since_recluster": m.get("appended_since_recluster"),
                    "reclustered": m.get("reclustered"),
                }
            )
        return {"current": self.current(), "versions": versions}
