"""Crash-safe streaming catalog lifecycle.

The pipeline that *produces* serving indexes, built to the same
robustness bar PRs 5-9 set for the path that serves them:

* :mod:`.journal` — write-ahead event journal (checksummed segments,
  torn-tail recovery, bit-identical replay),
* :mod:`.foldin` — least-squares fold-in of new users/items against
  frozen branches (no retrain),
* :mod:`.delta` — delta IVF list appends with staleness accounting and
  threshold-triggered re-clustering,
* :mod:`.store` — versioned artifact store with manifest-last commits
  and an atomic CURRENT pointer,
* :mod:`.gates` — promotion health gates (recall floor, price-band
  probes, exact-parity sampling),
* :mod:`.controller` — the orchestrator wiring it into faults/obs/CLI.

See ``docs/lifecycle.md`` for the journal format, the fold-in math, and
the gate/rollback state machine.
"""

from .controller import (
    LifecycleConfig,
    LifecycleController,
    OUTCOMES,
    simulate_events,
)
from .delta import DeltaConfig, DeltaStats, DeltaMismatch, DeltaUnsupported, delta_build
from .foldin import FoldInConfig, FoldInError, FoldInStats, fold_in
from .gates import GateConfig, GateFailed, GateReport, run_gates
from .journal import (
    Event,
    JournalCorrupted,
    JournalStats,
    JournalWriter,
    journal_digest,
    last_seq,
    replay,
)
from .store import StoreError, VersionStore

__all__ = [
    "LifecycleConfig",
    "LifecycleController",
    "OUTCOMES",
    "simulate_events",
    "DeltaConfig",
    "DeltaStats",
    "DeltaMismatch",
    "DeltaUnsupported",
    "delta_build",
    "FoldInConfig",
    "FoldInError",
    "FoldInStats",
    "fold_in",
    "GateConfig",
    "GateFailed",
    "GateReport",
    "run_gates",
    "Event",
    "JournalCorrupted",
    "JournalStats",
    "JournalWriter",
    "journal_digest",
    "last_seq",
    "replay",
    "StoreError",
    "VersionStore",
]
