"""Promotion health gates: no candidate goes live without passing these.

Three independent probes, each targeting a distinct way an incremental
build can rot:

* **recall-vs-exact floor** — a seeded user sample is ranked exactly (the
  batch runtime, train exclusions applied) and through the candidate ANN
  index at its default operating point; mean recall@k below the floor
  fails the gate.  This is the end-to-end quality check that catches
  centroid staleness, bad fold-in solves, and int8 saturation alike.

* **price-band probes** — for each re-priced/new item (the rows a flash
  sale touches), assert the candidate's own metadata is self-consistent:
  a band pinned to the item's level must include it, a band excluding the
  level must not, and a *filtered ANN search* over that band must return
  only in-band items.  PUP conditions on price; an index whose filter
  masks disagree with its price levels would serve category-correct but
  price-wrong recommendations, which no recall metric notices.

* **parity sampling** — full-probe exact-scorer ANN search must be
  bit-identical to exact ranking for a user sample.  This pins the
  structural invariant delta builds rely on (ids ascending within lists,
  permutation is a true permutation); if an append ever broke the
  layout, parity fails even when recall still looks fine.

Gates only *read* the candidate; pass/fail is returned as a
:class:`GateReport` and the controller decides promotion vs rejection.
Every probe is deterministic given the config seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..eval.ann import ann_recall_at_k, exact_rankings
from ..serving.ann.ivf import IVFIndex
from ..serving.filters import PriceBandFilter
from ..serving.index import EmbeddingIndex


class GateFailed(RuntimeError):
    """A candidate failed a promotion gate; names the gate and evidence."""

    def __init__(self, gate: str, detail: str) -> None:
        super().__init__(f"gate {gate!r} failed: {detail}")
        self.gate = gate
        self.detail = detail


@dataclass(frozen=True)
class GateConfig:
    recall_k: int = 50
    recall_floor: float = 0.95
    recall_users: int = 64
    #: operating point for the recall gate; None = the candidate's own
    #: default nprobe (gate what will actually be served)
    nprobe: Optional[int] = None
    parity_users: int = 16
    parity_k: int = 10
    probe_items: int = 32  # cap on per-promotion price-band probes
    seed: int = 0


@dataclass
class GateReport:
    passed: bool = True
    gates: Dict[str, Dict] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    def ensure(self) -> None:
        """Raise :class:`GateFailed` for the first failure, if any."""
        if not self.passed:
            first = self.failures[0]
            gate, _, detail = first.partition(": ")
            raise GateFailed(gate, detail or first)


def _sample_users(n_users: int, count: int, seed: int, salt: int) -> np.ndarray:
    rng = np.random.default_rng(np.random.SeedSequence([seed, salt]))
    count = min(count, n_users)
    return np.sort(rng.choice(n_users, size=count, replace=False))


def _recall_gate(
    index: EmbeddingIndex, ann: IVFIndex, config: GateConfig, report: GateReport
) -> None:
    users = _sample_users(index.n_users, config.recall_users, config.seed, 0)
    k = min(config.recall_k, index.n_items)
    exact = exact_rankings(index, users, k)
    ids, _ = ann.search(
        users,
        k,
        nprobe=config.nprobe,
        exclude_csr=(index.exclude_indptr, index.exclude_indices),
    )
    approx = {int(u): ids[row] for row, u in enumerate(users)}
    recall = ann_recall_at_k(exact, approx, k)
    result = {
        "recall": float(recall),
        "floor": config.recall_floor,
        "k": k,
        "users": len(users),
        "nprobe": config.nprobe if config.nprobe is not None else ann.nprobe,
    }
    report.gates["recall"] = result
    if recall < config.recall_floor:
        report.passed = False
        report.failures.append(
            f"recall: recall@{k} {recall:.4f} below floor {config.recall_floor}"
        )


def _price_band_gate(
    index: EmbeddingIndex,
    ann: IVFIndex,
    config: GateConfig,
    report: GateReport,
    probe_items: Sequence[int],
) -> None:
    levels = index.item_price_levels
    probes = list(probe_items)[: config.probe_items]
    users = _sample_users(index.n_users, min(8, index.n_users), config.seed, 1)
    violations: List[str] = []
    bands_checked = 0
    for item in probes:
        level = int(levels[item])
        in_band = PriceBandFilter(level, level).mask(index)
        if not in_band[item]:
            violations.append(f"item {item} excluded from its own level {level}")
            continue
        out_band = PriceBandFilter(level + 1, None).mask(index)
        if out_band[item]:
            violations.append(f"item {item} leaks into band >= {level + 1}")
            continue
        # End-to-end: a filtered search must never return an out-of-band
        # item — the mask applied at the fine stage must agree with the
        # candidate's own metadata.
        ids, _ = ann.search(users, min(10, index.n_items), candidate_mask=in_band)
        served = ids[ids >= 0]
        bad = served[levels[served] != level]
        if len(bad):
            violations.append(
                f"band [{level},{level}] search returned out-of-band items "
                f"{sorted(set(int(b) for b in bad))[:5]}"
            )
        bands_checked += 1
    report.gates["price_band"] = {
        "probed_items": len(probes),
        "bands_searched": bands_checked,
        "violations": violations,
    }
    if violations:
        report.passed = False
        report.failures.append(f"price_band: {violations[0]}")


def _parity_gate(
    index: EmbeddingIndex, ann: IVFIndex, config: GateConfig, report: GateReport
) -> None:
    users = _sample_users(index.n_users, config.parity_users, config.seed, 2)
    k = min(config.parity_k, index.n_items)
    exact = exact_rankings(index, users, k)
    ids, _ = ann.search(
        users,
        k,
        nprobe=ann.n_lists,  # full probe: candidate pool == catalog
        scorer="exact",
        exclude_csr=(index.exclude_indptr, index.exclude_indices),
    )
    mismatches = [
        int(u) for row, u in enumerate(users) if not np.array_equal(ids[row], exact[int(u)])
    ]
    report.gates["parity"] = {
        "users": len(users),
        "k": k,
        "mismatched_users": mismatches,
    }
    if mismatches:
        report.passed = False
        report.failures.append(
            f"parity: full-probe search diverged from exact for users {mismatches[:5]}"
        )


def run_gates(
    index: EmbeddingIndex,
    ann: IVFIndex,
    config: Optional[GateConfig] = None,
    probe_items: Optional[Sequence[int]] = None,
) -> GateReport:
    """Run every promotion gate against a candidate; never raises.

    ``probe_items`` are the item ids the price-band gate exercises —
    the controller passes the ids re-priced or added since the parent
    version (the rows most likely to be wrong).  Defaults to a seeded
    catalog sample so the gate never silently no-ops.
    """
    config = config or GateConfig()
    report = GateReport()
    if probe_items is None or len(probe_items) == 0:
        rng = np.random.default_rng(np.random.SeedSequence([config.seed, 3]))
        count = min(config.probe_items, index.n_items)
        probe_items = np.sort(rng.choice(index.n_items, size=count, replace=False))
    _recall_gate(index, ann, config, report)
    _price_band_gate(index, ann, config, report, probe_items)
    _parity_gate(index, ann, config, report)
    return report
