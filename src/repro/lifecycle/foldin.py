"""Incremental fold-in: journal events → a new frozen index, no retrain.

The streaming lifecycle cannot afford a full training run per catalog
update, and it does not need one: the branch factors of the *existing*
catalog are a frozen basis, and a new user (or item) is a ridge
least-squares solve against that basis — the classic fold-in construction,
applied to PUP's multi-branch score layout.

For the multi-branch score ``s(u, i) = Σ_b w_b (u_b·v_b[i] + c_b[i] +
d_b[u])`` define the *combined* spaces

* item side: ``x_i = concat_b(v_b[i])`` (dimension ``D = Σ_b d_b``),
* user side: ``ũ = concat_b(w_b · u_b)``,

so that ``ũ·x_i`` reproduces every user-dependent factor term exactly.
Folding in a **user** solves ``(XᵀX + λI) ũ = Xᵀ ỹ`` where the rows of
``X`` are the combined vectors of the user's interacted items plus a
seeded sample of negatives, ``y`` is 1/0, and the weighted item constants
``Σ_b w_b c_b[i]`` are subtracted from the targets (they are part of the
score the solve must not re-explain).  The per-branch factors are then
``u_b = ũ_b / w_b``.  Folding in an **item** is the mirror image over
combined user rows and solves for ``x_i`` directly.  Both solves are a
few-hundred-row normal-equation problem per entity — microseconds against
the seconds a retrain costs — and deterministic given the seed (negatives
are drawn from a per-entity ``SeedSequence``, so results do not depend on
batch composition or event order).

Everything else an :class:`~repro.serving.index.EmbeddingIndex` carries is
updated in the same pass: the exclusion CSR gains the new interactions,
popularity accumulates, the catalog columns extend with new items, and
re-priced items get their price level re-quantized against the existing
catalog's level geometry (nearest existing price's level — deterministic,
and exactly what the price-band gates probe after a flash sale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.base import ScoreBranch
from ..serving.index import EmbeddingIndex
from .journal import Event


class FoldInError(ValueError):
    """An event stream is inconsistent with the index it is folded into."""


@dataclass(frozen=True)
class FoldInConfig:
    """Knobs of the least-squares fold-in.

    ``ridge`` is the Tikhonov λ (keeps sparse-history solves bounded);
    ``negatives_per_positive`` sizes the sampled negative set; ``seed``
    drives every negative draw through per-entity seed streams;
    ``refresh_users`` re-solves existing users that gained interactions
    (their old factors came from training — the refreshed ones fold the
    new evidence in against the same frozen item basis).
    """

    ridge: float = 1e-2
    negatives_per_positive: int = 4
    seed: int = 0
    refresh_users: bool = True


@dataclass
class FoldInStats:
    new_users: int = 0
    new_items: int = 0
    interactions: int = 0
    reprices: int = 0
    refreshed_users: int = 0
    last_seq: int = -1


def _combined_items(branches: Sequence[ScoreBranch]) -> np.ndarray:
    """``concat_b(v_b)`` in float64 — no const column (handled in targets)."""
    return np.hstack([np.asarray(b.item, dtype=np.float64) for b in branches])


def _combined_users(branches: Sequence[ScoreBranch]) -> np.ndarray:
    """``concat_b(w_b u_b)`` in float64."""
    return np.hstack(
        [b.weight * np.asarray(b.user, dtype=np.float64) for b in branches]
    )


def _weighted_item_const(branches: Sequence[ScoreBranch], n_items: int) -> np.ndarray:
    const = np.zeros(n_items)
    for b in branches:
        if b.item_const is not None:
            const[: len(b.item_const)] += b.weight * np.asarray(
                b.item_const, dtype=np.float64
            )
    return const


def _ridge_solve(X: np.ndarray, y: np.ndarray, ridge: float) -> np.ndarray:
    """``argmin ||Xw - y||² + ridge·||w||²`` via the normal equations."""
    d = X.shape[1]
    gram = X.T @ X
    gram[np.diag_indices(d)] += ridge
    return np.linalg.solve(gram, X.T @ y)


def _sample_negatives(
    positives: np.ndarray, n_total: int, count: int, entropy: Tuple[int, ...]
) -> np.ndarray:
    """Seeded uniform negatives outside ``positives`` (may return fewer)."""
    pool = n_total - len(positives)
    count = min(count, pool)
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(np.random.SeedSequence(list(entropy)))
    mask = np.ones(n_total, dtype=bool)
    mask[positives] = False
    candidates = np.flatnonzero(mask)
    return np.sort(rng.choice(candidates, size=count, replace=False))


def _split_user_vector(
    combined: np.ndarray, branches: Sequence[ScoreBranch]
) -> List[np.ndarray]:
    """Undo the user-side weighting: per-branch ``u_b = ũ_b / w_b``."""
    out: List[np.ndarray] = []
    offset = 0
    for b in branches:
        d = b.user.shape[1]
        part = combined[offset : offset + d]
        # A zero-weight branch contributes nothing to any score; its
        # folded factor is arbitrary, so keep it at zero.
        out.append(part / b.weight if abs(b.weight) > 1e-12 else np.zeros(d))
        offset += d
    return out


def _split_item_vector(
    combined: np.ndarray, branches: Sequence[ScoreBranch]
) -> List[np.ndarray]:
    out: List[np.ndarray] = []
    offset = 0
    for b in branches:
        d = b.item.shape[1]
        out.append(combined[offset : offset + d])
        offset += d
    return out


def requantize_price(
    new_price: float, raw_prices: np.ndarray, price_levels: np.ndarray
) -> int:
    """Price level of ``new_price`` under the existing catalog's geometry.

    The catalog's level boundaries are implicit in its data, so the
    deterministic assignment is *nearest existing price wins*: the new
    price inherits the level of the catalog item whose raw price is
    closest (ties toward the cheaper item).  An item crossing a band
    boundary in a flash sale therefore lands in exactly the level its new
    price would have been quantized to originally.
    """
    order = np.argsort(raw_prices, kind="stable")
    sorted_prices = raw_prices[order]
    pos = int(np.searchsorted(sorted_prices, new_price))
    if pos == 0:
        nearest = 0
    elif pos >= len(sorted_prices):
        nearest = len(sorted_prices) - 1
    else:
        left, right = sorted_prices[pos - 1], sorted_prices[pos]
        nearest = pos - 1 if (new_price - left) <= (right - new_price) else pos
    return int(price_levels[order[nearest]])


def fold_in(
    index: EmbeddingIndex,
    events: Sequence[Event],
    config: Optional[FoldInConfig] = None,
) -> Tuple[EmbeddingIndex, FoldInStats]:
    """Apply journaled events to a frozen index; returns a **new** index.

    The input index is never mutated (hot-swap safety: the serving index
    and the candidate are distinct objects).  Event validation is strict —
    ``add_user``/``add_item`` ids must extend the id space contiguously,
    and interactions/reprices must reference ids that exist *after* the
    adds in the stream — so a build can never silently mis-wire an id.
    Deterministic: same index + same events + same config ⇒ bit-identical
    output index.
    """
    config = config or FoldInConfig()
    stats = FoldInStats()

    n_users, n_items = index.n_users, index.n_items
    new_user_ids: List[int] = []
    new_items: List[Tuple[int, int, float]] = []  # (id, category, price)
    interactions: List[Tuple[int, int]] = []
    reprices: Dict[int, float] = {}

    next_user, next_item = n_users, n_items
    for event in events:
        if event.kind == "add_user":
            if event.user != next_user:
                raise FoldInError(
                    f"add_user id {event.user} is not the next user id {next_user} "
                    f"(event seq {event.seq})"
                )
            new_user_ids.append(event.user)
            next_user += 1
        elif event.kind == "add_item":
            if event.item != next_item:
                raise FoldInError(
                    f"add_item id {event.item} is not the next item id {next_item} "
                    f"(event seq {event.seq})"
                )
            if event.price is None:
                raise FoldInError(f"add_item (seq {event.seq}) carries no price")
            new_items.append((event.item, max(0, event.category), float(event.price)))
            next_item += 1
        elif event.kind == "interaction":
            if not (0 <= event.user < next_user) or not (0 <= event.item < next_item):
                raise FoldInError(
                    f"interaction (seq {event.seq}) references unknown "
                    f"user {event.user} / item {event.item}"
                )
            interactions.append((event.user, event.item))
        elif event.kind == "reprice":
            if not (0 <= event.item < next_item):
                raise FoldInError(
                    f"reprice (seq {event.seq}) references unknown item {event.item}"
                )
            if event.price is None:
                raise FoldInError(f"reprice (seq {event.seq}) carries no price")
            reprices[event.item] = float(event.price)
        stats.last_seq = event.seq

    stats.new_users = len(new_user_ids)
    stats.new_items = len(new_items)
    stats.interactions = len(interactions)
    stats.reprices = len(reprices)

    total_users = n_users + len(new_user_ids)
    total_items = n_items + len(new_items)

    # ------------------------------------------------------------------
    # Catalog columns: extend, then apply reprices (level re-quantized
    # against the *pre-update* catalog geometry).
    # ------------------------------------------------------------------
    categories = np.concatenate(
        [index.item_categories, np.array([c for _, c, _ in new_items], dtype=np.int64)]
    )
    if index.item_raw_prices is not None:
        base_prices = index.item_raw_prices
    else:
        # Price-less index: synthesize neutral prices so new-item levels
        # still quantize deterministically.
        base_prices = np.zeros(n_items, dtype=np.float64)
    raw_prices = np.concatenate(
        [base_prices, np.array([p for _, _, p in new_items], dtype=np.float64)]
    )
    price_levels = np.concatenate(
        [
            index.item_price_levels,
            np.array(
                [
                    requantize_price(p, base_prices, index.item_price_levels)
                    for _, _, p in new_items
                ],
                dtype=np.int64,
            ),
        ]
    )
    for item, price in reprices.items():
        price_levels[item] = requantize_price(
            price, base_prices, index.item_price_levels
        )
        raw_prices[item] = price

    n_categories = max(index.n_categories, int(categories.max()) + 1 if len(categories) else 1)

    # ------------------------------------------------------------------
    # Exclusion CSR + popularity: merge the new interactions in.
    # ------------------------------------------------------------------
    per_user_new: Dict[int, Set[int]] = {}
    for user, item in interactions:
        per_user_new.setdefault(user, set()).add(item)

    indptr = np.zeros(total_users + 1, dtype=np.int64)
    chunks: List[np.ndarray] = []
    for user in range(total_users):
        old = (
            index.exclude_indices[
                index.exclude_indptr[user] : index.exclude_indptr[user + 1]
            ]
            if user < n_users
            else np.empty(0, dtype=np.int64)
        )
        extra = per_user_new.get(user)
        if extra:
            merged = np.union1d(old, np.fromiter(extra, dtype=np.int64, count=len(extra)))
        else:
            merged = old
        chunks.append(merged)
        indptr[user + 1] = indptr[user] + len(merged)
    indices = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    ).astype(np.int64)

    popularity = np.zeros(total_items, dtype=np.float64)
    popularity[:n_items] = index.item_popularity
    for _user, item in interactions:
        popularity[item] += 1.0

    # ------------------------------------------------------------------
    # Factor solves.  Items first (their interacting users are mostly
    # trained, warm rows), then users (who may reference the fresh item
    # rows).  All solves read the frozen originals + already-folded rows.
    # ------------------------------------------------------------------
    branches = index.branches
    item_dtype = branches[0].item.dtype
    user_dtype = branches[0].user.dtype

    new_item_rows = {
        b: np.zeros((len(new_items), branch.item.shape[1]), dtype=np.float64)
        for b, branch in enumerate(branches)
    }
    # Combined user rows over the *existing* users (new users are zero at
    # item-solve time and are excluded from item evidence).
    users_by_item: Dict[int, Set[int]] = {}
    for user, item in interactions:
        if item >= n_items:
            users_by_item.setdefault(item, set()).add(user)
    if users_by_item:
        combined_user = _combined_users(branches)
        user_const = np.zeros(n_users)
        for b in branches:
            if b.user_const is not None:
                user_const += b.weight * np.asarray(b.user_const, dtype=np.float64)
        for item, raw_users in sorted(users_by_item.items()):
            pos = np.array(sorted(u for u in raw_users if u < n_users), dtype=np.int64)
            if len(pos) == 0:
                continue  # only brand-new users interacted: no basis yet
            neg = _sample_negatives(
                pos,
                n_users,
                config.negatives_per_positive * len(pos),
                (config.seed, 1, item),
            )
            rows = np.concatenate([pos, neg])
            X = combined_user[rows]
            y = np.zeros(len(rows))
            y[: len(pos)] = 1.0
            y -= user_const[rows]
            solved = _ridge_solve(X, y, config.ridge)
            for b, part in enumerate(_split_item_vector(solved, branches)):
                new_item_rows[b][item - n_items] = part

    full_item_branches = [
        np.vstack(
            [np.asarray(branch.item, dtype=np.float64), new_item_rows[b]]
        )
        if len(new_items)
        else np.asarray(branch.item, dtype=np.float64)
        for b, branch in enumerate(branches)
    ]
    combined_item_full = np.hstack(full_item_branches)
    item_const_full = _weighted_item_const(branches, total_items)

    # Users to (re)solve: every new user, plus existing users with new
    # interactions when refresh_users is on.
    solve_users = set(new_user_ids)
    if config.refresh_users:
        solve_users.update(u for u in per_user_new if u < n_users)
    stats.refreshed_users = len([u for u in solve_users if u < n_users])

    new_user_rows = {
        b: np.zeros((len(new_user_ids), branch.user.shape[1]), dtype=np.float64)
        for b, branch in enumerate(branches)
    }
    refreshed_rows: Dict[int, List[np.ndarray]] = {}
    for user in sorted(solve_users):
        pos = indices[indptr[user] : indptr[user + 1]]
        if len(pos) == 0:
            continue  # nothing to fold; keep zeros / training factors
        neg = _sample_negatives(
            pos,
            total_items,
            config.negatives_per_positive * len(pos),
            (config.seed, 0, user),
        )
        rows = np.concatenate([pos, neg])
        X = combined_item_full[rows]
        y = np.zeros(len(rows))
        y[: len(pos)] = 1.0
        y -= item_const_full[rows]
        solved = _ridge_solve(X, y, config.ridge)
        parts = _split_user_vector(solved, branches)
        if user >= n_users:
            for b, part in enumerate(parts):
                new_user_rows[b][user - n_users] = part
        else:
            refreshed_rows[user] = parts

    # ------------------------------------------------------------------
    # Assemble the new branches (old rows bit-identical unless refreshed).
    # ------------------------------------------------------------------
    new_branches: List[ScoreBranch] = []
    for b, branch in enumerate(branches):
        user = np.asarray(branch.user).copy()
        if refreshed_rows:
            for uid, parts in refreshed_rows.items():
                user[uid] = np.asarray(parts[b], dtype=user.dtype)
        if len(new_user_ids):
            user = np.vstack([user, new_user_rows[b].astype(user_dtype)])
        item = np.asarray(branch.item).copy()
        if len(new_items):
            item = np.vstack([item, new_item_rows[b].astype(item_dtype)])
        item_const = None
        if branch.item_const is not None:
            item_const = np.concatenate(
                [
                    np.asarray(branch.item_const).copy(),
                    np.zeros(len(new_items), dtype=branch.item_const.dtype),
                ]
            )
        user_const_b = None
        if branch.user_const is not None:
            user_const_b = np.concatenate(
                [
                    np.asarray(branch.user_const).copy(),
                    np.zeros(len(new_user_ids), dtype=branch.user_const.dtype),
                ]
            )
        new_branches.append(
            ScoreBranch(
                user=user,
                item=item,
                item_const=item_const,
                user_const=user_const_b,
                weight=branch.weight,
            )
        )

    extra = dict(index.extra)
    lifecycle_extra = dict(extra.get("lifecycle") or {})
    lifecycle_extra.update(
        {
            "folded_seq": stats.last_seq,
            "fold_generation": int(lifecycle_extra.get("fold_generation", 0)) + 1,
        }
    )
    extra["lifecycle"] = lifecycle_extra

    new_index = EmbeddingIndex(
        branches=new_branches,
        item_categories=categories,
        item_price_levels=price_levels,
        n_price_levels=index.n_price_levels,
        n_categories=n_categories,
        exclude_indptr=indptr,
        exclude_indices=indices,
        item_popularity=popularity,
        item_raw_prices=raw_prices if index.item_raw_prices is not None else None,
        model_name=index.model_name,
        extra=extra,
    )
    return new_index, stats
