"""Write-ahead interaction journal: append-only checksummed segments.

The journal is the lifecycle's durability root: every catalog mutation —
interactions, re-prices, new users, new items — is appended here *before*
any index build consumes it, so a crash anywhere downstream can always be
repaired by replaying the journal against the last-good version.

On-disk layout (one directory)::

    journal/
      segment-00000000.wal      sealed, immutable
      segment-00000001.wal      sealed, immutable
      segment-00000002.open     active segment, append-only

Each segment starts with a 10-byte magic and holds framed records::

    [ payload_len: uint32 | crc32(payload): uint32 | payload bytes ]

The payload is the event's compact JSON (sorted keys), so records are
inspectable with nothing but ``struct`` and ``json``; the CRC makes every
record independently verifiable.  Events carry a contiguous ``seq`` —
assigned by the writer, validated on replay — which is what makes replay
*resumable*: a version manifest records the last folded ``seq`` and a
rebuild replays strictly after it.

Durability and crash behavior:

* Appends are flushed (and optionally fsynced) per batch; a SIGKILL can
  lose at most the final in-flight record, leaving a **torn tail** —
  a record whose declared length exceeds the bytes on disk.
* **Sealed segments are immutable**: rotation fsyncs the open segment and
  atomically renames ``.open`` → ``.wal`` (the staging+rename pattern the
  archive layer uses).  Any damage inside a sealed segment is real
  corruption and replay raises :class:`JournalCorrupted` naming the
  segment and record.
* The **open segment** may legitimately end in a torn record.  Replay
  drops it; the writer truncates it on reopen and keeps appending into
  the same segment, so the post-recovery byte stream is identical to the
  stream an uncrashed writer would have produced — the property the
  lifecycle crash drill pins bit-for-bit.
* A CRC mismatch is *never* tolerated, tail or not: torn means short,
  corrupt means wrong, and the two get different treatment.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

SEGMENT_MAGIC = b"REPROWAL1\n"
RECORD_HEADER = struct.Struct("<II")  # payload_len, crc32(payload)

_SEALED_RE = re.compile(r"^segment-(\d{8})\.wal$")
_OPEN_RE = re.compile(r"^segment-(\d{8})\.open$")

#: event kinds the fold-in consumes (anything else is rejected at append)
EVENT_KINDS = ("interaction", "reprice", "add_user", "add_item")


class JournalCorrupted(RuntimeError):
    """A sealed record failed its checksum or framing — names the record."""

    def __init__(self, segment: str, record: int, reason: str) -> None:
        super().__init__(
            f"journal segment {segment!r} record {record} is corrupt: {reason}"
        )
        self.segment = segment
        self.record = record
        self.reason = reason


@dataclass(frozen=True)
class Event:
    """One journaled catalog mutation.

    ``seq`` is the journal-assigned global sequence number (contiguous
    from 0).  Field use by kind:

    ===============  ====================================================
    ``interaction``  ``user`` bought/clicked ``item``
    ``reprice``      ``item``'s raw price becomes ``price``
    ``add_user``     ``user`` is the new id (must equal the next user id)
    ``add_item``     ``item`` is the new id, with ``category``/``price``
    ===============  ====================================================
    """

    seq: int
    kind: str
    user: int = -1
    item: int = -1
    price: Optional[float] = None
    category: int = -1

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r} (have {EVENT_KINDS})")
        if self.seq < 0:
            raise ValueError(f"seq must be >= 0, got {self.seq}")

    def to_payload(self) -> bytes:
        """Canonical JSON bytes — the exact bytes the CRC covers."""
        fields: Dict = {"seq": self.seq, "kind": self.kind}
        if self.user >= 0:
            fields["user"] = self.user
        if self.item >= 0:
            fields["item"] = self.item
        if self.price is not None:
            fields["price"] = float(self.price)
        if self.category >= 0:
            fields["category"] = self.category
        return json.dumps(fields, sort_keys=True, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "Event":
        fields = json.loads(payload.decode("utf-8"))
        return cls(
            seq=int(fields["seq"]),
            kind=str(fields["kind"]),
            user=int(fields.get("user", -1)),
            item=int(fields.get("item", -1)),
            price=fields.get("price"),
            category=int(fields.get("category", -1)),
        )


def encode_record(payload: bytes) -> bytes:
    return RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_segment(
    path: str,
) -> Tuple[List[Tuple[int, int]], List[bytes], Optional[int]]:
    """Parse a segment file into raw records.

    Returns ``(offsets, payloads, torn_at)`` where ``offsets`` holds one
    ``(byte_offset, payload_len)`` per *complete* record, and ``torn_at``
    is the byte offset of an incomplete trailing record (``None`` when the
    file ends cleanly).  CRC validity is NOT checked here — framing only —
    so the corruption drill can locate records inside a damaged file.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise JournalCorrupted(path, -1, "bad segment magic")
    offsets: List[Tuple[int, int]] = []
    payloads: List[bytes] = []
    pos = len(SEGMENT_MAGIC)
    while pos < len(data):
        if pos + RECORD_HEADER.size > len(data):
            return offsets, payloads, pos  # torn header
        length, _crc = RECORD_HEADER.unpack_from(data, pos)
        if pos + RECORD_HEADER.size + length > len(data):
            return offsets, payloads, pos  # torn payload
        payloads.append(data[pos + RECORD_HEADER.size : pos + RECORD_HEADER.size + length])
        offsets.append((pos, length))
        pos += RECORD_HEADER.size + length
    return offsets, payloads, None


def segment_record_offsets(path: str) -> List[Tuple[int, int]]:
    """``(byte_offset, payload_len)`` of each complete record (drill helper)."""
    offsets, _payloads, _torn = _scan_segment(path)
    return offsets


def read_segment(path: str, tolerate_torn_tail: bool = False) -> List[Event]:
    """Decode a segment's events, verifying every record's CRC.

    A torn trailing record is dropped when ``tolerate_torn_tail`` (the open
    segment after a crash) and raises :class:`JournalCorrupted` otherwise
    (sealed segments end cleanly by construction).  A CRC mismatch always
    raises, naming the segment and 0-based record index.
    """
    offsets, payloads, torn_at = _scan_segment(path)
    if torn_at is not None and not tolerate_torn_tail:
        raise JournalCorrupted(
            path, len(offsets), f"truncated record at byte {torn_at}"
        )
    events: List[Event] = []
    with open(path, "rb") as fh:
        data = fh.read()
    for i, ((pos, length), payload) in enumerate(zip(offsets, payloads)):
        _len, crc = RECORD_HEADER.unpack_from(data, pos)
        if zlib.crc32(payload) != crc:
            raise JournalCorrupted(path, i, "payload checksum mismatch")
        try:
            events.append(Event.from_payload(payload))
        except (ValueError, KeyError, json.JSONDecodeError) as error:
            raise JournalCorrupted(path, i, f"undecodable payload: {error}") from error
    return events


def _segment_files(directory: str) -> Tuple[List[Tuple[int, str]], Optional[Tuple[int, str]]]:
    """Sorted sealed segments plus the open segment (at most one)."""
    sealed: List[Tuple[int, str]] = []
    open_segments: List[Tuple[int, str]] = []
    if not os.path.isdir(directory):
        return [], None
    for entry in sorted(os.listdir(directory)):
        match = _SEALED_RE.match(entry)
        if match:
            sealed.append((int(match.group(1)), os.path.join(directory, entry)))
            continue
        match = _OPEN_RE.match(entry)
        if match:
            open_segments.append((int(match.group(1)), os.path.join(directory, entry)))
    if len(open_segments) > 1:
        raise JournalCorrupted(
            open_segments[1][1], -1, "multiple open segments (rotation invariant broken)"
        )
    return sealed, (open_segments[0] if open_segments else None)


def replay(directory: str, after_seq: int = -1) -> List[Event]:
    """Every journaled event with ``seq > after_seq``, in order.

    Sealed segments must be pristine; the open segment may end torn (the
    tail is dropped).  Sequence numbers are validated to be contiguous
    across segment boundaries — a gap means a segment went missing and
    raises :class:`JournalCorrupted` rather than silently skipping data.
    """
    sealed, open_segment = _segment_files(directory)
    events: List[Event] = []
    expected: Optional[int] = None
    ordered = [(sid, path, False) for sid, path in sealed]
    if open_segment is not None:
        ordered.append((open_segment[0], open_segment[1], True))
    for _sid, path, is_open in ordered:
        segment_events = read_segment(path, tolerate_torn_tail=is_open)
        for i, event in enumerate(segment_events):
            if expected is not None and event.seq != expected:
                raise JournalCorrupted(
                    path, i, f"sequence gap: expected seq {expected}, found {event.seq}"
                )
            expected = event.seq + 1
            events.append(event)
    return [event for event in events if event.seq > after_seq]


def last_seq(directory: str) -> int:
    """Highest valid seq in the journal (``-1`` when empty)."""
    events = replay(directory)
    return events[-1].seq if events else -1


def journal_digest(directory: str) -> str:
    """SHA-256 over every valid record payload, in order.

    Two journals with the same digest hold bit-identical event streams —
    the equality the crash drill asserts between a crashed-and-recovered
    run and an uncrashed reference run.
    """
    digest = hashlib.sha256()
    for event in replay(directory):
        digest.update(event.to_payload())
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class JournalStats:
    """Writer-side accounting (scraped into ``lifecycle_journal_lag``)."""

    appended: int = 0
    rotations: int = 0
    recovered_torn_bytes: int = 0
    last_seq: int = -1


class JournalWriter:
    """Appender over a journal directory; one writer at a time.

    ``segment_records`` bounds records per segment (rotation is automatic,
    and — because it triggers at a fixed record count — segment boundaries
    are a pure function of ``seq``, which keeps crashed-and-recovered
    journals bit-identical to uncrashed ones).  ``fsync=True`` adds an
    ``os.fsync`` per append batch for machine-crash durability; the
    default flushes to the OS page cache, which survives process death.
    """

    def __init__(
        self,
        directory: str,
        segment_records: int = 4096,
        fsync: bool = False,
    ) -> None:
        if segment_records < 1:
            raise ValueError(f"segment_records must be >= 1, got {segment_records}")
        self.directory = directory
        self.segment_records = int(segment_records)
        self.fsync = bool(fsync)
        os.makedirs(directory, exist_ok=True)
        self.stats = JournalStats()
        self._fh = None
        self._open_records = 0
        self._open_id = 0
        self._recover()

    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Attach to the existing journal: validate, truncate a torn tail,
        reopen the open segment (or start the next one)."""
        sealed, open_segment = _segment_files(self.directory)
        for _sid, path in sealed:  # raises JournalCorrupted on real damage
            read_segment(path, tolerate_torn_tail=False)
        next_id = (sealed[-1][0] + 1) if sealed else 0
        if open_segment is not None:
            open_id, path = open_segment
            if open_id != next_id:
                raise JournalCorrupted(
                    path, -1, f"open segment id {open_id} does not follow sealed {next_id - 1}"
                )
            offsets, _payloads, torn_at = _scan_segment(path)
            events = read_segment(path, tolerate_torn_tail=True)
            if torn_at is not None:
                with open(path, "r+b") as fh:
                    size = fh.seek(0, os.SEEK_END)
                    fh.truncate(torn_at)
                self.stats.recovered_torn_bytes += size - torn_at
            self._open_id = open_id
            self._open_records = len(events)
            self._fh = open(path, "ab")
        else:
            self._open_id = next_id
            self._start_segment()
        self.stats.last_seq = last_seq(self.directory)

    def _open_path(self) -> str:
        return os.path.join(self.directory, f"segment-{self._open_id:08d}.open")

    def _sealed_path(self, segment_id: int) -> str:
        return os.path.join(self.directory, f"segment-{segment_id:08d}.wal")

    def _start_segment(self) -> None:
        self._fh = open(self._open_path(), "wb")
        self._fh.write(SEGMENT_MAGIC)
        self._fh.flush()
        self._open_records = 0

    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        return self.stats.last_seq + 1

    def append(self, event: Event) -> Event:
        """Durably append one event; its ``seq`` must be :attr:`next_seq`."""
        if self._fh is None:
            raise ValueError("journal writer is closed")
        if event.seq != self.next_seq:
            raise ValueError(
                f"event seq {event.seq} is not the journal's next seq {self.next_seq}"
            )
        self._fh.write(encode_record(event.to_payload()))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.stats.appended += 1
        self.stats.last_seq = event.seq
        self._open_records += 1
        if self._open_records >= self.segment_records:
            self.rotate()
        return event

    def append_fields(self, kind: str, **fields) -> Event:
        """Build an event with the next seq and append it."""
        return self.append(Event(seq=self.next_seq, kind=kind, **fields))

    def rotate(self) -> Optional[str]:
        """Seal the open segment (fsync + atomic rename) and start the next.

        No-op on an empty open segment.  Returns the sealed path.
        """
        if self._fh is None:
            raise ValueError("journal writer is closed")
        if self._open_records == 0:
            return None
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        sealed = self._sealed_path(self._open_id)
        os.replace(self._open_path(), sealed)
        self._open_id += 1
        self._start_segment()
        self.stats.rotations += 1
        return sealed

    def close(self) -> None:
        if self._fh is None:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
