"""Lifecycle controller: journal → fold-in → delta build → gated rollout.

One object owns the full index-production pipeline over a
:class:`~repro.lifecycle.store.VersionStore`:

* :meth:`ingest` appends catalog events to the write-ahead journal —
  exactly-once (events at or below the journal's last sequence number are
  skipped, so re-driving the same stream after a crash cannot duplicate),
* :meth:`build` replays everything past the live version's watermark,
  folds it into the live index (:mod:`.foldin`), extends the live ANN
  layout (:mod:`.delta`), and publishes a *candidate* version,
* :meth:`promote` runs the health gates (:mod:`.gates`) and — only on a
  clean pass — flips the store's CURRENT pointer and hot-swaps a running
  service via its existing ``swap_index()``,
* :meth:`rollback` flips CURRENT back to the live version's parent.

Crash safety is inherited, not re-implemented: the journal tolerates torn
tails, candidate dirs commit manifest-last, and the CURRENT flip is
atomic — so the controller's own recovery step is just
``VersionStore.recover()`` at construction.  The three named fault points
(``lifecycle.ingest_crash``, ``lifecycle.build_crash``,
``lifecycle.promote_crash``) are consulted at exactly the moments a real
crash is most damaging: mid-ingest, after a candidate's archives but
before its manifest, and after gates pass but before the pointer flip.

Observability: ``lifecycle_versions_total{outcome}`` counts terminal
outcomes (built/promoted/rejected/rolled_back), ``lifecycle_journal_lag``
gauges how many journaled events the live version has not absorbed, and
the expensive stages run under ``lifecycle.fold_in`` /
``lifecycle.delta_build`` / ``lifecycle.promote`` spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..faults import (
    LIFECYCLE_BUILD_CRASH,
    LIFECYCLE_INGEST_CRASH,
    LIFECYCLE_PROMOTE_CRASH,
    FaultPlan,
)
from ..obs.trace import maybe_span
from ..serving.ann.ivf import IVFIndex, build_ivf
from ..serving.index import EmbeddingIndex
from .delta import DeltaConfig, DeltaStats, DeltaUnsupported, delta_build
from .foldin import FoldInConfig, fold_in
from .gates import GateConfig, GateReport, run_gates
from .journal import Event, JournalWriter, last_seq, replay
from .store import StoreError, VersionStore

#: terminal outcomes the version counter is pre-seeded with (so a scrape
#: before the first build still shows every series at 0)
OUTCOMES = ("built", "promoted", "rejected", "rolled_back")


@dataclass(frozen=True)
class LifecycleConfig:
    foldin: FoldInConfig = field(default_factory=FoldInConfig)
    gates: GateConfig = field(default_factory=GateConfig)
    staleness_threshold: float = 0.25
    segment_records: int = 4096
    #: cap on re-priced/new item ids recorded per manifest for gate probes
    probe_items_cap: int = 64


class LifecycleController:
    """Drives one version store's journal → build → promote loop."""

    def __init__(
        self,
        root: str,
        config: Optional[LifecycleConfig] = None,
        metrics=None,
        tracer=None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config or LifecycleConfig()
        self.store = VersionStore(root)
        self.recovery = self.store.recover()  # startup = crash recovery
        self.tracer = tracer
        self.fault_plan = fault_plan
        self._versions_total = None
        self._journal_lag = None
        if metrics is not None:
            self._versions_total = metrics.counter(
                "lifecycle_versions_total",
                "lifecycle version outcomes",
                labels=("outcome",),
            )
            for outcome in OUTCOMES:
                self._versions_total.labels(outcome=outcome)
            self._journal_lag = metrics.gauge(
                "lifecycle_journal_lag",
                "journaled events not yet absorbed by the live version",
            )
            self._refresh_lag()

    # ------------------------------------------------------------------
    # Observability helpers
    # ------------------------------------------------------------------
    def _count(self, outcome: str) -> None:
        if self._versions_total is not None:
            self._versions_total.labels(outcome=outcome).inc()

    def journal_lag(self) -> int:
        """Events in the journal beyond the live version's watermark."""
        tail = last_seq(self.store.journal_dir)
        live = self.store.current()
        if live is None:
            return tail + 1
        watermark = int(self.store.read_manifest(live).get("journal_seq", -1))
        return max(0, tail - watermark)

    def _refresh_lag(self) -> None:
        if self._journal_lag is not None:
            self._journal_lag.set(float(self.journal_lag()))

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def bootstrap(self, index: EmbeddingIndex, ann: Optional[IVFIndex] = None) -> str:
        """Publish and promote the first version from a trained index.

        The baseline is promoted without gates — it *defines* the quality
        reference every later candidate is gated against.
        """
        if self.store.current() is not None:
            raise StoreError("store already has a live version; bootstrap is once")
        if ann is None:
            ann = build_ivf(index)
        name = self.store.write_candidate(
            index,
            ann,
            {
                "parent": None,
                "journal_seq": last_seq(self.store.journal_dir),
                "appended_since_recluster": 0,
                "reclustered": True,
                "probe_items": [],
            },
        )
        self.store.set_current(name)
        self._count("promoted")
        self._refresh_lag()
        return name

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, events: Iterable[Event]) -> Dict[str, int]:
        """Append events to the journal, exactly once.

        Events whose ``seq`` is at or below the journal's last durable
        sequence are skipped — re-driving the same deterministic stream
        after a crash resumes where the journal actually got to, which is
        what makes crashed and uncrashed runs converge byte-for-byte.
        The ingest fault point is consulted once per appended event.
        """
        appended = skipped = 0
        with JournalWriter(
            self.store.journal_dir, segment_records=self.config.segment_records
        ) as writer:
            start = writer.next_seq
            for event in events:
                if event.seq < start:
                    skipped += 1
                    continue
                if self.fault_plan is not None:
                    self.fault_plan.maybe_fail(LIFECYCLE_INGEST_CRASH)
                writer.append(event)
                appended += 1
        self._refresh_lag()
        return {"appended": appended, "skipped": skipped, "last_seq": start + appended - 1}

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> Optional[str]:
        """Fold journaled events into the live version; publish a candidate.

        Returns the candidate's name, or ``None`` when the journal holds
        nothing past the live watermark.  The build fault point fires
        between the candidate's archives and its manifest — the window
        where a crash leaves a torn dir for recovery to sweep.
        """
        live = self.store.current()
        if live is None:
            raise StoreError("no live version; bootstrap the store first")
        manifest = self.store.read_manifest(live)
        watermark = int(manifest.get("journal_seq", -1))
        events = replay(self.store.journal_dir, after_seq=watermark)
        if not events:
            return None
        index, ann = self.store.load_version(live)

        with maybe_span(
            self.tracer, "lifecycle.fold_in", cat="lifecycle",
            attrs={"events": len(events), "parent": live},
        ):
            new_index, fold_stats = fold_in(index, events, self.config.foldin)

        delta_cfg = DeltaConfig(
            staleness_threshold=self.config.staleness_threshold,
            appended_since_recluster=int(manifest.get("appended_since_recluster", 0)),
        )
        with maybe_span(
            self.tracer, "lifecycle.delta_build", cat="lifecycle",
            attrs={"new_items": fold_stats.new_items},
        ):
            try:
                new_ann, delta_stats = delta_build(ann, new_index, delta_cfg)
            except DeltaUnsupported:
                # Typed refusal (e.g. a PQ companion): fall back to a full
                # rebuild rather than degrade the layout silently.
                new_ann = build_ivf(new_index, seed=ann.seed)
                delta_stats = DeltaStats(
                    n_new_items=fold_stats.new_items,
                    appended_since_recluster=0,
                    reclustered=True,
                )

        probe_items = self._probe_items(events, index.n_items)
        crash_hook = None
        if self.fault_plan is not None:
            crash_hook = lambda: self.fault_plan.maybe_fail(LIFECYCLE_BUILD_CRASH)
        name = self.store.write_candidate(
            new_index,
            new_ann,
            {
                "parent": live,
                "journal_seq": fold_stats.last_seq,
                "appended_since_recluster": delta_stats.appended_since_recluster,
                "reclustered": delta_stats.reclustered,
                "staleness": delta_stats.staleness,
                "fold": {
                    "new_users": fold_stats.new_users,
                    "new_items": fold_stats.new_items,
                    "interactions": fold_stats.interactions,
                    "reprices": fold_stats.reprices,
                    "refreshed_users": fold_stats.refreshed_users,
                },
                "probe_items": probe_items,
            },
            crash_hook=crash_hook,
        )
        self._count("built")
        return name

    def _probe_items(self, events: Sequence[Event], n_items_before: int) -> List[int]:
        """Item ids the gates should probe: re-priced first, then new."""
        repriced = sorted({e.item for e in events if e.kind == "reprice"})
        added = sorted({e.item for e in events if e.kind == "add_item"})
        return (repriced + added)[: self.config.probe_items_cap]

    # ------------------------------------------------------------------
    # Promote / rollback
    # ------------------------------------------------------------------
    def promote(
        self, candidate: Optional[str] = None, service=None
    ) -> Tuple[Optional[str], GateReport]:
        """Gate a candidate; flip CURRENT (and hot-swap) only on a pass.

        ``candidate`` defaults to the newest committed non-live version.
        Returns ``(promoted_name_or_None, gate_report)``.  A gate failure
        stamps the candidate rejected and leaves the live version — and a
        running service — untouched.  The promote fault point fires after
        the gates pass and *before* the pointer flip: a crash there
        leaves the candidate committed and re-promotable, never a
        half-flipped pointer.
        """
        if candidate is None:
            candidate = self._newest_candidate()
        if candidate is None:
            raise StoreError("no candidate version to promote")
        manifest = self.store.read_manifest(candidate)
        index, ann = self.store.load_version(candidate)
        with maybe_span(
            self.tracer, "lifecycle.promote", cat="lifecycle",
            attrs={"candidate": candidate},
        ):
            report = run_gates(
                index, ann, self.config.gates,
                probe_items=manifest.get("probe_items") or None,
            )
            if not report.passed:
                self.store.reject(candidate, "; ".join(report.failures))
                self._count("rejected")
                return None, report
            if self.fault_plan is not None:
                self.fault_plan.maybe_fail(LIFECYCLE_PROMOTE_CRASH)
            self.store.set_current(candidate)
        if service is not None:
            service.swap_index(index, ann=ann)
        self._count("promoted")
        self._refresh_lag()
        return candidate, report

    def _newest_candidate(self) -> Optional[str]:
        for name in reversed(self.store.list_versions()):
            if self.store.read_manifest(name).get("status") == "candidate":
                return name
        return None

    def rollback(self, reason: str = "manual rollback", service=None) -> str:
        """Flip CURRENT back to the live version's parent (and hot-swap)."""
        name = self.store.rollback(reason)
        if service is not None:
            index, ann = self.store.load_version(name)
            service.swap_index(index, ann=ann)
        self._count("rolled_back")
        self._refresh_lag()
        return name

    # ------------------------------------------------------------------
    def status(self) -> Dict:
        """Store summary + journal watermarks (the CLI status payload)."""
        payload = self.store.status()
        payload["journal"] = {
            "last_seq": last_seq(self.store.journal_dir),
            "lag": self.journal_lag(),
        }
        payload["recovery"] = self.recovery
        self._refresh_lag()
        return payload


# ---------------------------------------------------------------------------
# Deterministic event synthesis (CLI --simulate, drills, benchmarks)
# ---------------------------------------------------------------------------
def simulate_events(
    n_users: int,
    n_items: int,
    count: int,
    seed: int = 0,
    start_seq: int = 0,
    new_user_rate: float = 0.05,
    new_item_rate: float = 0.05,
    reprice_rate: float = 0.10,
    price_range: Tuple[float, float] = (1.0, 60.0),
    n_categories: int = 1,
) -> List[Event]:
    """A reproducible catalog event stream.

    Pure function of its arguments (one seeded generator, consumed in a
    fixed order), so a crashed drill can regenerate the identical stream
    and lean on the journal's exactly-once ingest to converge with the
    uncrashed run.  New user/item ids are allocated contiguously above
    ``n_users``/``n_items``; interactions and reprices may reference
    entities added earlier in the same stream.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, start_seq]))
    events: List[Event] = []
    users, items = n_users, n_items
    lo, hi = price_range
    for offset in range(count):
        seq = start_seq + offset
        draw = rng.random()
        if draw < new_user_rate:
            events.append(Event(seq=seq, kind="add_user", user=users))
            users += 1
        elif draw < new_user_rate + new_item_rate:
            events.append(
                Event(
                    seq=seq,
                    kind="add_item",
                    item=items,
                    price=float(np.round(lo + (hi - lo) * rng.random(), 4)),
                    category=int(rng.integers(max(1, n_categories))),
                )
            )
            items += 1
        elif draw < new_user_rate + new_item_rate + reprice_rate:
            events.append(
                Event(
                    seq=seq,
                    kind="reprice",
                    item=int(rng.integers(items)),
                    price=float(np.round(lo + (hi - lo) * rng.random(), 4)),
                )
            )
        else:
            events.append(
                Event(
                    seq=seq,
                    kind="interaction",
                    user=int(rng.integers(users)),
                    item=int(rng.integers(items)),
                )
            )
    return events
