"""Delta IVF builds: append new items to a frozen list layout.

A steady-state catalog update adds a handful of items to a catalog of
thousands; re-running k-means over everything (the committed
``build_seconds`` in ``BENCH_ann.json``) to place them is the wrong cost
model.  :func:`delta_build` instead *assigns* each new item's combined
vector to the nearest existing centroid (one ``assign_labels`` call —
the same assignment step a full build ends with) and appends it to that
centroid's list.

Why this preserves the exact-search parity the test suite pins: the fine
stage requires item ids *ascending within each list* so its (score desc,
id asc) tie-breaking matches exact selection.  New item ids are strictly
larger than every existing id (the journal enforces contiguous id
allocation), so appending them after a list's existing run keeps every
list sorted — full-probe search over a delta-built index stays
bit-identical to exact search, with zero re-sorting.

The int8 companion is extended the same way: new rows are encoded with
the branch's **frozen** ``scale``/``zero`` (values outside the original
range saturate at ±127 — bounded, and measured by the recall gate), so
the codes of every pre-existing item are byte-identical to the previous
version.  A PQ companion has per-list residual codebooks whose anchors
(list means) would shift under appends, so delta builds refuse it with a
typed :class:`DeltaUnsupported` — the controller falls back to a full
rebuild rather than silently degrading ADC precision.

Appending without re-clustering degrades geometry over time: centroids
drift away from their lists' true means and list sizes skew.  Every
delta carries **staleness accounting** — ``appended_since_recluster /
n_items`` — and once it crosses ``staleness_threshold`` the build
escalates to a full :func:`~repro.serving.ann.ivf.build_ivf` re-cluster
(``reclustered=True`` in the stats, counter reset).  The threshold is the
knob that trades steady-state build cost against retrieval quality, and
the recall gate downstream is the backstop if a workload outruns it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..serving.ann.ivf import IVFIndex, build_ivf, combined_item_vectors
from ..serving.ann.kmeans import assign_labels
from ..serving.ann.quantize import QuantizedBranch, QuantizedIndex
from ..serving.index import EmbeddingIndex


class DeltaUnsupported(RuntimeError):
    """The previous index's layout cannot be extended incrementally."""


class DeltaMismatch(ValueError):
    """The new index is not a frozen extension of the previous catalog."""


@dataclass(frozen=True)
class DeltaConfig:
    """Delta-build policy.

    ``appended_since_recluster`` is carried by the caller (the version
    manifest) across builds; ``staleness_threshold`` is the fraction of
    the catalog allowed to be append-placed before a forced re-cluster.
    ``verify_frozen`` checks that the shared item rows really are
    unchanged (cheap at catalog scale, and the invariant everything else
    rests on).
    """

    staleness_threshold: float = 0.25
    appended_since_recluster: int = 0
    verify_frozen: bool = True
    recluster_iters: int = 25


@dataclass
class DeltaStats:
    n_new_items: int = 0
    appended_since_recluster: int = 0
    staleness: float = 0.0
    reclustered: bool = False
    lists_touched: int = 0


def _frozen_codes(item: np.ndarray, scale: float, zero: int) -> np.ndarray:
    """Encode new rows with a previously-fitted affine int8 quantizer."""
    return np.clip(np.rint(np.asarray(item) / scale) + zero, -127, 127).astype(np.int8)


def delta_build(
    prev: IVFIndex,
    new_index: EmbeddingIndex,
    config: Optional[DeltaConfig] = None,
) -> Tuple[IVFIndex, DeltaStats]:
    """Extend ``prev``'s list layout to cover ``new_index``'s catalog.

    ``new_index`` must be a frozen extension of ``prev.index`` — same
    branches with the first ``prev.n_items`` item rows unchanged (what
    :func:`~repro.lifecycle.foldin.fold_in` produces).  Returns a new
    :class:`IVFIndex` over ``new_index`` plus the staleness accounting;
    when accumulated appends cross ``staleness_threshold`` the result is
    a full re-cluster instead (``stats.reclustered``).  Deterministic
    either way.
    """
    config = config or DeltaConfig()
    stats = DeltaStats()

    if prev.pq is not None:
        raise DeltaUnsupported(
            "the previous index carries a residual-PQ companion; its per-list "
            "codebook anchors cannot absorb appended items — run a full rebuild"
        )
    n_old = prev.n_items
    n_new = new_index.n_items - n_old
    if n_new < 0:
        raise DeltaMismatch(
            f"new index has {new_index.n_items} items, fewer than the previous "
            f"index's {n_old} — delta builds only grow the catalog"
        )
    if len(new_index.branches) != len(prev.index.branches):
        raise DeltaMismatch("branch count changed; not a frozen extension")
    if config.verify_frozen:
        for b, (old_b, new_b) in enumerate(zip(prev.index.branches, new_index.branches)):
            if not np.array_equal(np.asarray(old_b.item), np.asarray(new_b.item)[:n_old]):
                raise DeltaMismatch(
                    f"branch {b} item factors of the shared catalog changed; "
                    "delta builds require the existing rows to stay frozen"
                )

    stats.n_new_items = n_new
    appended = config.appended_since_recluster + n_new
    staleness = appended / max(1, new_index.n_items)

    if staleness > config.staleness_threshold:
        # Escalate: the append-placed fraction is large enough that the
        # frozen centroids no longer describe the catalog.  Re-cluster
        # from scratch with the previous build's settings and reset the
        # staleness counter.
        rebuilt = build_ivf(
            new_index,
            n_lists=None,  # re-derive from the grown catalog size
            nprobe=None,
            seed=prev.seed,
            iters=config.recluster_iters,
            quantize=prev.quantized is not None,
        )
        stats.reclustered = True
        stats.appended_since_recluster = 0
        stats.staleness = 0.0
        stats.lists_touched = rebuilt.n_lists
        return rebuilt, stats

    stats.appended_since_recluster = appended
    stats.staleness = staleness

    # ------------------------------------------------------------------
    # Assign each new item's combined vector to its nearest centroid.
    # ------------------------------------------------------------------
    if n_new:
        vectors = combined_item_vectors(new_index.branches)[n_old:]
        if vectors.shape[1] != prev.centroids.shape[1]:
            raise DeltaMismatch(
                f"combined item dimension {vectors.shape[1]} disagrees with the "
                f"previous centroids' {prev.centroids.shape[1]}"
            )
        labels, _ = assign_labels(vectors, prev.centroids)
    else:
        labels = np.empty(0, dtype=np.int64)

    # Splice the new ids into the list-contiguous permutation.  Within a
    # list the old run keeps its order and the new ids (all larger than
    # every old id) append in ascending order — ids stay ascending per
    # list, the parity invariant.
    n_lists = prev.n_lists
    new_counts = np.bincount(labels, minlength=n_lists)
    old_counts = np.diff(prev.list_indptr)
    counts = old_counts + new_counts
    indptr = np.zeros(n_lists + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    list_items = np.empty(new_index.n_items, dtype=np.int64)
    new_ids = n_old + np.arange(n_new, dtype=np.int64)
    for lst in range(n_lists):
        lo = int(indptr[lst])
        old_lo, old_hi = int(prev.list_indptr[lst]), int(prev.list_indptr[lst + 1])
        width_old = old_hi - old_lo
        list_items[lo : lo + width_old] = prev.list_items[old_lo:old_hi]
        appended_here = new_ids[labels == lst]
        list_items[lo + width_old : lo + width_old + len(appended_here)] = appended_here
    stats.lists_touched = int((new_counts > 0).sum())

    # Int8 companion: frozen scale/zero, old codes byte-identical.
    quantized = None
    if prev.quantized is not None:
        branches = []
        for b, qb in enumerate(prev.quantized.quantized):
            new_rows = np.asarray(new_index.branches[b].item)[n_old:]
            codes = (
                np.vstack([qb.q_item, _frozen_codes(new_rows, qb.scale, qb.zero)])
                if n_new
                else qb.q_item
            )
            branches.append(QuantizedBranch(q_item=codes, scale=qb.scale, zero=qb.zero))
        quantized = QuantizedIndex(new_index, branches)

    nprobe = min(prev.nprobe, n_lists)
    rebuilt = IVFIndex(
        new_index,
        centroids=prev.centroids,
        list_indptr=indptr,
        list_items=list_items,
        nprobe=nprobe,
        quantized=quantized,
        seed=prev.seed,
        default_scorer=prev.default_scorer,
        rerank_factor=prev.rerank_factor,
    )
    return rebuilt, stats
