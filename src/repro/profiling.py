"""Lightweight training/serving/evaluation profiler: scoped timers + counters.

A :class:`Profiler` accumulates wall-time per named phase (``sampling``,
``forward``, ``backward``, ``step`` in the trainer; ``score``, ``topk``,
``merge``, ``metrics`` in the evaluator) plus arbitrary counters (triples
processed, batches, evaluated users), and renders a JSON-safe summary with
derived throughput.  It is cheap enough to leave on unconditionally —
overhead is two ``perf_counter`` calls per phase — and a disabled instance
degrades to no-ops so hot loops never need ``if profiler:`` guards.

Used by :class:`repro.train.trainer.Trainer` (surfaced on
:class:`~repro.train.trainer.TrainResult.profile` and the CLI), by
:func:`repro.eval.ranking.evaluate` (surfaced by ``repro evaluate`` and in
every artifact's ``metrics.json``), and by the benchmarks.  In parallel
evaluation the kernel phases are summed across workers, so they are CPU
seconds rather than wall time — shares still show where the work went.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class Profiler:
    """Accumulates per-phase wall time and named counters."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._counters: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scoped timer: ``with profiler.phase("forward"): ...``"""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1

    def add_seconds(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record externally-measured time under a phase."""
        if not self.enabled:
            return
        self._seconds[name] = self._seconds.get(name, 0.0) + float(seconds)
        self._calls[name] = self._calls.get(name, 0) + calls

    def seconds(self, name: str) -> float:
        """Total wall time accumulated under ``name`` (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    def total_seconds(self) -> float:
        """Sum over all phases."""
        return sum(self._seconds.values())

    def phase_seconds(self, names) -> float:
        """Sum over a subset of phases (absent phases count as 0)."""
        return sum(self._seconds.get(name, 0.0) for name in names)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a named counter (e.g. ``triples``, ``batches``)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def rate(self, counter: str, per: Optional[str] = None) -> float:
        """``counter / seconds`` — against one phase, or total time if ``per`` is None."""
        seconds = self.seconds(per) if per is not None else self.total_seconds()
        return self.counter(counter) / seconds if seconds > 0 else 0.0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        """JSON-safe snapshot: per-phase seconds/calls/share, counters, rates."""
        total = self.total_seconds()
        phases = {
            name: {
                "seconds": self._seconds[name],
                "calls": self._calls.get(name, 0),
                "share": (self._seconds[name] / total) if total > 0 else 0.0,
            }
            for name in sorted(self._seconds)
        }
        summary: Dict = {
            "total_seconds": total,
            "phases": phases,
            "counters": dict(self._counters),
        }
        if "triples" in self._counters and total > 0:
            summary["triples_per_sec"] = self._counters["triples"] / total
        # Parallel evaluation sums kernel phases across workers (CPU
        # seconds), so throughput is quoted over the wall-clock counter the
        # evaluator records, never over the phase sum.
        eval_wall = self._counters.get("eval_wall_seconds", 0.0)
        if "evaluated_users" in self._counters and eval_wall > 0:
            summary["users_per_sec"] = self._counters["evaluated_users"] / eval_wall
        return summary

    def format_phases(self) -> str:
        """Compact one-line phase breakdown, e.g. ``sample 12% fwd 41% ...``."""
        total = self.total_seconds()
        if total <= 0:
            return ""
        return " ".join(
            f"{name} {self._seconds[name] / total:.0%}" for name in sorted(self._seconds)
        )

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()
        self._counters.clear()
