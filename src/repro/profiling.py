"""Lightweight training/serving/evaluation profiler: scoped timers + counters.

A :class:`Profiler` accumulates wall-time per named phase (``sampling``,
``forward``, ``backward``, ``step`` in the trainer; ``score``, ``topk``,
``merge``, ``metrics`` in the evaluator) plus arbitrary counters (triples
processed, batches, evaluated users), and renders a JSON-safe summary with
derived throughput.  It is cheap enough to leave on unconditionally —
overhead is two ``perf_counter`` calls plus one locked add per phase — and
a disabled instance degrades to no-ops so hot loops never need
``if profiler:`` guards.

Since the observability layer landed, the profiler is a *thin view over a*
:class:`~repro.obs.metrics.MetricsRegistry`: phase seconds, call counts,
and counters are stored as labelled registry counters
(``profiler_phase_seconds_total{phase=...}`` etc.), so anything a profiler
measures is automatically visible on a ``/metrics`` endpoint sharing that
registry, merges across processes with the registry's snapshot/merge path,
and is safe under the thread-mode worker pool (every mutation happens
under the registry lock — the bare-dict read-modify-write race the old
implementation had is gone).  Pass ``registry=`` to aggregate several
profilers into one surface; the default is a private registry, preserving
the historical "each Profiler is isolated" behavior the tests pin.

Used by :class:`repro.train.trainer.Trainer` (surfaced on
:class:`~repro.train.trainer.TrainResult.profile` and the CLI), by
:func:`repro.eval.ranking.evaluate` (surfaced by ``repro evaluate`` and in
every artifact's ``metrics.json``), and by the benchmarks.  In parallel
evaluation the kernel phases are summed across workers, so they are CPU
seconds rather than wall time — shares still show where the work went.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .obs.metrics import MetricsRegistry

#: registry metric names the profiler writes (one labelled family each)
PHASE_SECONDS_METRIC = "profiler_phase_seconds_total"
PHASE_CALLS_METRIC = "profiler_phase_calls_total"
COUNTER_METRIC = "profiler_events_total"


class Profiler:
    """Accumulates per-phase wall time and named counters (thread-safe)."""

    def __init__(self, enabled: bool = True, registry: Optional[MetricsRegistry] = None) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self._phase_seconds = self.registry.counter(
            PHASE_SECONDS_METRIC, "Wall seconds accumulated per profiler phase.",
            labels=("phase",),
        )
        self._phase_calls = self.registry.counter(
            PHASE_CALLS_METRIC, "Times each profiler phase was entered.",
            labels=("phase",),
        )
        self._events = self.registry.counter(
            COUNTER_METRIC, "Profiler counters (triples, batches, evaluated users...).",
            labels=("event",),
        )

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scoped timer: ``with profiler.phase("forward"): ...``"""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._phase_seconds.labels_key((name,), elapsed)
            self._phase_calls.labels_key((name,), 1)

    def add_seconds(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record externally-measured time under a phase."""
        if not self.enabled:
            return
        self._phase_seconds.labels_key((name,), float(seconds))
        self._phase_calls.labels_key((name,), calls)

    def seconds(self, name: str) -> float:
        """Total wall time accumulated under ``name`` (0.0 if never entered)."""
        return self._phase_seconds.value_for((name,))

    def _phases(self) -> Dict[str, float]:
        return {labels["phase"]: series.value for labels, series in self._phase_seconds.items()}

    def total_seconds(self) -> float:
        """Sum over all phases."""
        return sum(self._phases().values())

    def phase_seconds(self, names) -> float:
        """Sum over a subset of phases (absent phases count as 0)."""
        return sum(self._phase_seconds.value_for((name,)) for name in names)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a named counter (e.g. ``triples``, ``batches``)."""
        if not self.enabled:
            return
        self._events.labels_key((name,), amount)

    def counter(self, name: str) -> float:
        return self._events.value_for((name,))

    def rate(self, counter: str, per: Optional[str] = None) -> float:
        """``counter / seconds`` — against one phase, or total time if ``per`` is None."""
        seconds = self.seconds(per) if per is not None else self.total_seconds()
        return self.counter(counter) / seconds if seconds > 0 else 0.0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        """JSON-safe snapshot: per-phase seconds/calls/share, counters, rates."""
        seconds = self._phases()
        calls = {labels["phase"]: series.value for labels, series in self._phase_calls.items()}
        counters = {labels["event"]: series.value for labels, series in self._events.items()}
        total = sum(seconds.values())
        phases = {
            name: {
                "seconds": seconds[name],
                "calls": int(calls.get(name, 0)),
                "share": (seconds[name] / total) if total > 0 else 0.0,
            }
            for name in sorted(seconds)
        }
        summary: Dict = {
            "total_seconds": total,
            "phases": phases,
            "counters": counters,
        }
        if "triples" in counters and total > 0:
            summary["triples_per_sec"] = counters["triples"] / total
        # Parallel evaluation sums kernel phases across workers (CPU
        # seconds), so throughput is quoted over the wall-clock counter the
        # evaluator records, never over the phase sum.
        eval_wall = counters.get("eval_wall_seconds", 0.0)
        if "evaluated_users" in counters and eval_wall > 0:
            summary["users_per_sec"] = counters["evaluated_users"] / eval_wall
        return summary

    def format_phases(self) -> str:
        """Compact one-line phase breakdown, e.g. ``sample 12% fwd 41% ...``."""
        seconds = self._phases()
        total = sum(seconds.values())
        if total <= 0:
            return ""
        return " ".join(f"{name} {seconds[name] / total:.0%}" for name in sorted(seconds))

    def reset(self) -> None:
        self._phase_seconds.clear()
        self._phase_calls.clear()
        self._events.clear()
