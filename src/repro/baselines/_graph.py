"""Bipartite user-item adjacency shared by the GC-MC and NGCF baselines."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..data.dataset import Dataset


def bipartite_normalized_adjacency(dataset: Dataset, dtype=None) -> sp.csr_matrix:
    """Row-normalized ``A + I`` over the (users + items) bipartite graph.

    Node layout: ``[0, n_users)`` users, ``[n_users, n_users + n_items)``
    items — the same convention GC-MC and NGCF use on the user-item graph.
    ``dtype`` casts the CSR values (pass the encoder's dtype so a float32
    model propagates in float32).
    """
    n = dataset.n_users + dataset.n_items
    rows = dataset.train.users
    cols = dataset.train.items + dataset.n_users
    data = np.ones(len(rows))
    upper = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    matrix = (upper + upper.T).tocsr()
    matrix.data[:] = 1.0
    matrix = (matrix + sp.identity(n, format="csr")).tocsr()
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    normalized = (sp.diags(1.0 / row_sums) @ matrix).tocsr()
    if dtype is not None:
        normalized = normalized.astype(np.dtype(dtype))
    return normalized
