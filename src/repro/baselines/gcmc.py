"""GC-MC [van den Berg et al. 2017] — graph convolutional matrix completion.

One graph-convolution layer over the bipartite user-item graph with one-hot
ID input features (as specified in the paper's baseline setup), a dense
transform after aggregation, and a dot-product decoder:

    H = tanh( Â · E · W ),    s(u, i) = h_u · h_i

No price or category information is used — GC-MC is the "graph CF without
attributes" reference point in Table II and Fig 6.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.base import Recommender, ScoreBranch
from ..experiments.registry import register_model
from ..data.dataset import Dataset
from ..nn import Dropout, Embedding, Linear, Tensor
from ._graph import bipartite_normalized_adjacency


@register_model("gcmc", aliases=("gc-mc",))
class GCMC(Recommender):
    """Bipartite GCN encoder + dot-product decoder."""

    name = "GC-MC"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 64,
        rng: Optional[np.random.Generator] = None,
        embedding_std: float = 0.1,
        dropout: float = 0.1,
    ) -> None:
        super().__init__(dataset)
        rng = rng or np.random.default_rng()
        self.embedding = Embedding(self.n_users + self.n_items, dim, rng=rng, std=embedding_std)
        self.transform = Linear(dim, dim, rng=rng, bias=False)
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None
        self._adjacency = bipartite_normalized_adjacency(
            dataset, dtype=self.embedding.weight.data.dtype
        )
        self._adjacency_t = self._adjacency.T.tocsr()

    def _propagate(self) -> Tensor:
        out = self.embedding.all().sparse_matmul(self._adjacency, transpose=self._adjacency_t)
        out = self.transform(out).tanh()
        if self.dropout is not None:
            out = self.dropout(out)
        return out

    def _propagate_inference(self) -> np.ndarray:
        out = self._adjacency @ self.embedding.weight.data
        return np.tanh(out @ self.transform.weight.data)

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users, items = self._check_pair_shapes(users, items)
        table = self._propagate()
        user_rows = table.gather_rows(users)
        item_rows = table.gather_rows(items + self.n_users)
        return (user_rows * item_rows).sum(axis=1)

    def bpr_forward(
        self, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> Tuple[Tensor, Tensor, List[Tensor]]:
        table = self._propagate()
        user_rows = table.gather_rows(users)
        pos_rows = table.gather_rows(pos_items + self.n_users)
        neg_rows = table.gather_rows(neg_items + self.n_users)
        pos = (user_rows * pos_rows).sum(axis=1)
        neg = (user_rows * neg_rows).sum(axis=1)
        return pos, neg, [user_rows, pos_rows, neg_rows]

    # predict_scores inherited: frozen branches + the shared scoring kernel.
    def export_embeddings(self) -> List[ScoreBranch]:
        table = self._propagate_inference()
        return [ScoreBranch(user=table[: self.n_users], item=table[self.n_users :])]
