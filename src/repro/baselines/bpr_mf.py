"""BPR-MF — matrix factorization trained with the BPR loss [Rendle 2009]."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.base import Recommender, ScoreBranch
from ..experiments.registry import register_model
from ..data.dataset import Dataset
from ..nn import Embedding, Tensor


@register_model("bpr-mf", aliases=("bprmf",))
class BPRMF(Recommender):
    """Pure collaborative filtering: ``s(u, i) = e_u · e_i``."""

    name = "BPR-MF"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 64,
        rng: Optional[np.random.Generator] = None,
        embedding_std: float = 0.1,
    ) -> None:
        super().__init__(dataset)
        rng = rng or np.random.default_rng()
        self.user_embedding = Embedding(self.n_users, dim, rng=rng, std=embedding_std)
        self.item_embedding = Embedding(self.n_items, dim, rng=rng, std=embedding_std)

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users, items = self._check_pair_shapes(users, items)
        return (self.user_embedding(users) * self.item_embedding(items)).sum(axis=1)

    def bpr_forward(
        self, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> Tuple[Tensor, Tensor, List[Tensor]]:
        user_emb = self.user_embedding(users)
        pos_emb = self.item_embedding(pos_items)
        neg_emb = self.item_embedding(neg_items)
        pos = (user_emb * pos_emb).sum(axis=1)
        neg = (user_emb * neg_emb).sum(axis=1)
        return pos, neg, [user_emb, pos_emb, neg_emb]

    # predict_scores inherited: frozen branches + the shared scoring kernel.
    def export_embeddings(self) -> List[ScoreBranch]:
        return [
            ScoreBranch(
                user=self.user_embedding.weight.data,
                item=self.item_embedding.weight.data,
            )
        ]
