"""DeepFM [Guo et al. 2017] — FM plus a deep tower on shared embeddings.

The FM component is identical to :class:`~repro.baselines.fm.FM`; the deep
component is an MLP over the concatenated feature embeddings.  Both share
the same embedding tables (the defining trait of DeepFM) and their outputs
are summed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import Recommender
from ..experiments.registry import register_model
from ..core.decoder import pairwise_interaction
from ..data.dataset import Dataset
from ..nn import MLP, Embedding, Parameter, Tensor, concat


@register_model("deepfm")
class DeepFM(Recommender):
    """FM + MLP over {user, item, category, price} embeddings."""

    name = "DeepFM"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 64,
        hidden: Sequence[int] = (64, 32),
        rng: Optional[np.random.Generator] = None,
        embedding_std: float = 0.1,
        dropout: float = 0.0,
    ) -> None:
        super().__init__(dataset)
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.user_embedding = Embedding(self.n_users, dim, rng=rng, std=embedding_std)
        self.item_embedding = Embedding(self.n_items, dim, rng=rng, std=embedding_std)
        self.category_embedding = Embedding(self.n_categories, dim, rng=rng, std=embedding_std)
        self.price_embedding = Embedding(self.n_price_levels, dim, rng=rng, std=embedding_std)
        self.user_bias = Parameter(np.zeros(self.n_users), name="user_bias")
        self.item_bias = Parameter(np.zeros(self.n_items), name="item_bias")
        self.mlp = MLP([4 * dim, *hidden, 1], rng=rng, dropout=dropout)

    # ------------------------------------------------------------------
    def _gather_features(self, users: np.ndarray, items: np.ndarray) -> List[Tensor]:
        return [
            self.user_embedding(users),
            self.item_embedding(items),
            self.category_embedding(self.item_categories[items]),
            self.price_embedding(self.item_price_levels[items]),
        ]

    def _score_from_features(
        self, users: np.ndarray, items: np.ndarray, features: List[Tensor]
    ) -> Tensor:
        fm_term = (
            self.user_bias.gather_rows(users)
            + self.item_bias.gather_rows(items)
            + pairwise_interaction(features)
        )
        deep_in = concat(features, axis=1)
        deep_term = self.mlp(deep_in).reshape(len(users))
        return fm_term + deep_term

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users, items = self._check_pair_shapes(users, items)
        return self._score_from_features(users, items, self._gather_features(users, items))

    def bpr_forward(
        self, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> Tuple[Tensor, Tensor, List[Tensor]]:
        pos_features = self._gather_features(users, pos_items)
        neg_features = self._gather_features(users, neg_items)
        pos = self._score_from_features(users, pos_items, pos_features)
        neg = self._score_from_features(users, neg_items, neg_features)
        return pos, neg, pos_features + neg_features

    # ------------------------------------------------------------------
    def predict_scores(self, users: np.ndarray, item_chunk: int = 128) -> np.ndarray:
        """Chunked evaluation: the MLP term is not factorizable over items."""
        users = np.asarray(users, dtype=np.int64)
        self.eval()
        n_users = len(users)
        scores = np.zeros((n_users, self.n_items))
        all_items = np.arange(self.n_items)
        for start in range(0, self.n_items, item_chunk):
            chunk = all_items[start : start + item_chunk]
            grid_users = np.repeat(users, len(chunk))
            grid_items = np.tile(chunk, n_users)
            chunk_scores = self.score_pairs(grid_users, grid_items).data
            scores[:, start : start + len(chunk)] = chunk_scores.reshape(n_users, len(chunk))
        return scores
