"""ItemPop — non-personalized popularity ranking (Table II baseline)."""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.base import Recommender, ScoreBranch
from ..experiments.registry import register_model
from ..data.dataset import Dataset


@register_model("itempop")
class ItemPop(Recommender):
    """Ranks items by their interaction count in the training set."""

    name = "ItemPop"
    trainable = False

    def __init__(self, dataset: Dataset) -> None:
        super().__init__(dataset)
        self._popularity = dataset.item_popularity()

    def score_pairs(self, users: np.ndarray, items: np.ndarray):
        raise NotImplementedError("ItemPop is not trainable; use predict_scores")

    def predict_scores(self, users: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        return np.tile(self._popularity, (len(users), 1))

    def export_embeddings(self) -> List[ScoreBranch]:
        # Non-personalized: every user shares a single popularity factor.
        return [
            ScoreBranch(
                user=np.ones((self.n_users, 1)),
                item=self._popularity[:, None],
            )
        ]
