"""FM — Factorization Machines [Rendle 2010] with price/category features.

As in the paper's experiments, each training example is the feature set
{user id, item id, item category, item price level}; the prediction is the
first-order terms plus the sum of pairwise inner products of the feature
embeddings (2-way FM).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.base import Recommender, ScoreBranch
from ..experiments.registry import register_model
from ..core.decoder import pairwise_interaction, pairwise_interaction_numpy
from ..data.dataset import Dataset
from ..nn import Embedding, Parameter, Tensor


@register_model("fm")
class FM(Recommender):
    """2-way FM over {user, item, category, price} one-hot features."""

    name = "FM"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 64,
        rng: Optional[np.random.Generator] = None,
        embedding_std: float = 0.1,
        use_price: bool = True,
        use_category: bool = True,
    ) -> None:
        super().__init__(dataset)
        rng = rng or np.random.default_rng()
        self.use_price = use_price
        self.use_category = use_category
        self.user_embedding = Embedding(self.n_users, dim, rng=rng, std=embedding_std)
        self.item_embedding = Embedding(self.n_items, dim, rng=rng, std=embedding_std)
        self.category_embedding = (
            Embedding(self.n_categories, dim, rng=rng, std=embedding_std) if use_category else None
        )
        self.price_embedding = (
            Embedding(self.n_price_levels, dim, rng=rng, std=embedding_std) if use_price else None
        )
        # First-order weights.
        self.user_bias = Parameter(np.zeros(self.n_users), name="user_bias")
        self.item_bias = Parameter(np.zeros(self.n_items), name="item_bias")
        self.category_bias = Parameter(np.zeros(self.n_categories), name="category_bias")
        self.price_bias = Parameter(np.zeros(self.n_price_levels), name="price_bias")

    # ------------------------------------------------------------------
    def _gather_features(self, users: np.ndarray, items: np.ndarray) -> List[Tensor]:
        features = [self.user_embedding(users), self.item_embedding(items)]
        if self.use_category:
            features.append(self.category_embedding(self.item_categories[items]))
        if self.use_price:
            features.append(self.price_embedding(self.item_price_levels[items]))
        return features

    def _first_order(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        linear = self.user_bias.gather_rows(users) + self.item_bias.gather_rows(items)
        if self.use_category:
            linear = linear + self.category_bias.gather_rows(self.item_categories[items])
        if self.use_price:
            linear = linear + self.price_bias.gather_rows(self.item_price_levels[items])
        return linear

    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users, items = self._check_pair_shapes(users, items)
        features = self._gather_features(users, items)
        return self._first_order(users, items) + pairwise_interaction(features)

    def bpr_forward(
        self, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> Tuple[Tensor, Tensor, List[Tensor]]:
        pos_features = self._gather_features(users, pos_items)
        neg_features = self._gather_features(users, neg_items)
        pos = self._first_order(users, pos_items) + pairwise_interaction(pos_features)
        neg = self._first_order(users, neg_items) + pairwise_interaction(neg_features)
        return pos, neg, pos_features + neg_features

    # ------------------------------------------------------------------
    def _item_side_numpy(self) -> Tuple[np.ndarray, np.ndarray]:
        """Item-side embedding sum and constant per item (vectorized eval)."""
        item_emb = self.item_embedding.weight.data
        parts = [item_emb]
        const = self.item_bias.data.copy()
        if self.use_category:
            cat = self.category_embedding.weight.data[self.item_categories]
            parts.append(cat)
            const = const + self.category_bias.data[self.item_categories]
        if self.use_price:
            price = self.price_embedding.weight.data[self.item_price_levels]
            parts.append(price)
            const = const + self.price_bias.data[self.item_price_levels]
        if len(parts) > 1:
            const = const + pairwise_interaction_numpy(parts)
        return np.add.reduce(parts), const

    def predict_scores(self, users: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        item_side, const = self._item_side_numpy()
        user_emb = self.user_embedding.weight.data[users]
        scores = user_emb @ item_side.T
        scores += const[None, :]
        scores += self.user_bias.data[users][:, None]
        return scores

    def export_embeddings(self) -> List[ScoreBranch]:
        item_side, const = self._item_side_numpy()
        return [
            ScoreBranch(
                user=self.user_embedding.weight.data,
                item=item_side,
                item_const=const,
                user_const=self.user_bias.data,
            )
        ]
