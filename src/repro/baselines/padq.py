"""PaDQ [Chen et al. 2014] — collective matrix factorization with price.

PaDQ treats price *generatively*: shared latent factors must simultaneously
reconstruct the user-item matrix, a user-price matrix (how often each user
bought at each price level) and an item-price matrix (each item's own
level), following CMF [Singh & Gordon 2008].

For comparability with the other methods the user-item part is trained with
BPR (the paper trains all baselines with BPR); the two price-reconstruction
terms enter through :meth:`auxiliary_loss`.  The paper's finding — that
"price should be an input rather than a target" — shows up as this model
underperforming plain BPR-MF.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.base import Recommender, ScoreBranch
from ..experiments.registry import register_model
from ..data.dataset import Dataset
from ..nn import Embedding, Tensor


@register_model("padq")
class PaDQ(Recommender):
    """CMF over user-item / user-price / item-price matrices."""

    name = "PaDQ"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 64,
        rng: Optional[np.random.Generator] = None,
        embedding_std: float = 0.1,
        price_weight: float = 0.5,
    ) -> None:
        super().__init__(dataset)
        if price_weight < 0:
            raise ValueError(f"price_weight must be >= 0, got {price_weight}")
        rng = rng or np.random.default_rng()
        self.price_weight = price_weight
        self.user_embedding = Embedding(self.n_users, dim, rng=rng, std=embedding_std)
        self.item_embedding = Embedding(self.n_items, dim, rng=rng, std=embedding_std)
        self.price_embedding = Embedding(self.n_price_levels, dim, rng=rng, std=embedding_std)

        # Target matrices for the generative reconstruction terms.
        self._user_price = self._build_user_price_matrix(dataset)
        self._item_price = np.zeros((self.n_items, self.n_price_levels))
        self._item_price[np.arange(self.n_items), self.item_price_levels] = 1.0

    @staticmethod
    def _build_user_price_matrix(dataset: Dataset) -> np.ndarray:
        """Row-normalized count of train purchases per (user, price level)."""
        matrix = np.zeros((dataset.n_users, dataset.n_price_levels))
        levels = dataset.item_price_levels[dataset.train.items]
        np.add.at(matrix, (dataset.train.users, levels), 1.0)
        row_sums = matrix.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1.0
        return matrix / row_sums

    # ------------------------------------------------------------------
    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users, items = self._check_pair_shapes(users, items)
        return (self.user_embedding(users) * self.item_embedding(items)).sum(axis=1)

    def bpr_forward(
        self, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> Tuple[Tensor, Tensor, List[Tensor]]:
        user_emb = self.user_embedding(users)
        pos_emb = self.item_embedding(pos_items)
        neg_emb = self.item_embedding(neg_items)
        pos = (user_emb * pos_emb).sum(axis=1)
        neg = (user_emb * neg_emb).sum(axis=1)
        return pos, neg, [user_emb, pos_emb, neg_emb]

    def auxiliary_loss(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        """Squared-error reconstruction of the user-price and item-price rows.

        Only the batch's user rows and the batch's positive-item rows are
        reconstructed per step, matching stochastic CMF training.
        """
        users = np.unique(np.asarray(users, dtype=np.int64))
        items = np.unique(np.asarray(items, dtype=np.int64))
        price_table = self.price_embedding.all()

        user_pred = self.user_embedding(users).matmul(price_table.T)
        user_diff = user_pred - Tensor(self._user_price[users])
        user_loss = (user_diff * user_diff).mean()

        item_pred = self.item_embedding(items).matmul(price_table.T)
        item_diff = item_pred - Tensor(self._item_price[items])
        item_loss = (item_diff * item_diff).mean()

        return (user_loss + item_loss) * self.price_weight

    def predict_scores(self, users: np.ndarray) -> np.ndarray:
        users = np.asarray(users, dtype=np.int64)
        return self.user_embedding.weight.data[users] @ self.item_embedding.weight.data.T

    def export_embeddings(self) -> List[ScoreBranch]:
        return [
            ScoreBranch(
                user=self.user_embedding.weight.data,
                item=self.item_embedding.weight.data,
            )
        ]
