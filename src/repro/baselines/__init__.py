"""The seven Table II baselines, all on the common Recommender interface."""

from .itempop import ItemPop
from .bpr_mf import BPRMF
from .fm import FM
from .deepfm import DeepFM
from .padq import PaDQ
from .gcmc import GCMC
from .ngcf import NGCF
from .lightgcn import LightGCN

__all__ = ["ItemPop", "BPRMF", "FM", "DeepFM", "PaDQ", "GCMC", "NGCF", "LightGCN"]
