"""NGCF [Wang et al. 2019] — neural graph collaborative filtering.

Embedding propagation over the bipartite user-item graph.  Per the paper's
baseline setup, the *input feature of item nodes includes the price*: we add
a price-level embedding to each item's ID embedding before propagation
(the paper concatenates one-hot features; summing the embeddings is the
equivalent dense form at equal dimensionality).

One propagation layer in NGCF style with both the linear aggregation term
and the element-wise affinity term:

    E1 = LeakyReLU( Â·E0·W1 + (Â·E0 ⊙ E0)·W2 )

and the final representation is the concatenation ``[E0 | E1]``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.base import Recommender, ScoreBranch
from ..experiments.registry import register_model
from ..data.dataset import Dataset
from ..nn import Dropout, Embedding, Linear, Tensor, concat
from ._graph import bipartite_normalized_adjacency

_LEAKY_SLOPE = 0.2


def _leaky_relu(tensor: Tensor) -> Tensor:
    """LeakyReLU built from existing primitives: max(x,0) - slope*max(-x,0)."""
    return tensor.relu() - (-tensor).relu() * _LEAKY_SLOPE


@register_model("ngcf")
class NGCF(Recommender):
    """One-layer NGCF with price-augmented item input features."""

    name = "NGCF"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        rng: Optional[np.random.Generator] = None,
        embedding_std: float = 0.1,
        dropout: float = 0.1,
        use_price_feature: bool = True,
    ) -> None:
        super().__init__(dataset)
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.use_price_feature = use_price_feature
        self.user_embedding = Embedding(self.n_users, dim, rng=rng, std=embedding_std)
        self.item_embedding = Embedding(self.n_items, dim, rng=rng, std=embedding_std)
        self.price_embedding = (
            Embedding(self.n_price_levels, dim, rng=rng, std=embedding_std)
            if use_price_feature
            else None
        )
        self.w_aggregate = Linear(dim, dim, rng=rng, bias=False)
        self.w_interact = Linear(dim, dim, rng=rng, bias=False)
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None
        self._adjacency = bipartite_normalized_adjacency(
            dataset, dtype=self.user_embedding.weight.data.dtype
        )
        self._adjacency_t = self._adjacency.T.tocsr()

    # ------------------------------------------------------------------
    def _input_table(self) -> Tensor:
        item_input = self.item_embedding.all()
        if self.use_price_feature:
            price_rows = self.price_embedding(self.item_price_levels)
            item_input = item_input + price_rows
        return concat([self.user_embedding.all(), item_input], axis=0)

    def _propagate(self) -> Tensor:
        e0 = self._input_table()
        aggregated = e0.sparse_matmul(self._adjacency, transpose=self._adjacency_t)
        interact = aggregated * e0
        e1 = _leaky_relu(self.w_aggregate(aggregated) + self.w_interact(interact))
        if self.dropout is not None:
            e1 = self.dropout(e1)
        return concat([e0, e1], axis=1)

    def _propagate_inference(self) -> np.ndarray:
        item_input = self.item_embedding.weight.data
        if self.use_price_feature:
            item_input = item_input + self.price_embedding.weight.data[self.item_price_levels]
        e0 = np.vstack([self.user_embedding.weight.data, item_input])
        aggregated = self._adjacency @ e0
        pre = aggregated @ self.w_aggregate.weight.data + (aggregated * e0) @ self.w_interact.weight.data
        e1 = np.where(pre > 0, pre, _LEAKY_SLOPE * pre)
        return np.hstack([e0, e1])

    # ------------------------------------------------------------------
    def score_pairs(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        users, items = self._check_pair_shapes(users, items)
        table = self._propagate()
        user_rows = table.gather_rows(users)
        item_rows = table.gather_rows(items + self.n_users)
        return (user_rows * item_rows).sum(axis=1)

    def bpr_forward(
        self, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray
    ) -> Tuple[Tensor, Tensor, List[Tensor]]:
        table = self._propagate()
        user_rows = table.gather_rows(users)
        pos_rows = table.gather_rows(pos_items + self.n_users)
        neg_rows = table.gather_rows(neg_items + self.n_users)
        pos = (user_rows * pos_rows).sum(axis=1)
        neg = (user_rows * neg_rows).sum(axis=1)
        return pos, neg, [user_rows, pos_rows, neg_rows]

    # predict_scores inherited: frozen branches + the shared scoring kernel.
    def export_embeddings(self) -> List[ScoreBranch]:
        table = self._propagate_inference()
        return [ScoreBranch(user=table[: self.n_users], item=table[self.n_users :])]
